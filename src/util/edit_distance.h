// Bounded Levenshtein distance, used by the unknown-element check to suggest
// the intended element for a mis-typed name (the paper's <BLOCKQOUTE> case).
#ifndef WEBLINT_UTIL_EDIT_DISTANCE_H_
#define WEBLINT_UTIL_EDIT_DISTANCE_H_

#include <string_view>

namespace weblint {

// Case-insensitive Levenshtein distance between `a` and `b`, cut off at
// `limit`: returns a value > limit (specifically limit + 1) as soon as the
// true distance is known to exceed it.
int BoundedEditDistance(std::string_view a, std::string_view b, int limit);

}  // namespace weblint

#endif  // WEBLINT_UTIL_EDIT_DISTANCE_H_
