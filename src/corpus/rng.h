// Deterministic PRNG for corpus generation (SplitMix64). Benches and tests
// must be reproducible run-to-run, so no std::random_device anywhere.
#ifndef WEBLINT_CORPUS_RNG_H_
#define WEBLINT_CORPUS_RNG_H_

#include <cstdint>

namespace weblint {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound); bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t Between(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  // True with probability `percent`/100.
  bool Chance(unsigned percent) { return Below(100) < percent; }

 private:
  std::uint64_t state_;
};

}  // namespace weblint

#endif  // WEBLINT_CORPUS_RNG_H_
