// Structure-aware HTML mutator for differential fuzzing of the tokenizer.
//
// Random byte flipping finds little in a scanner whose interesting states
// are reached through multi-byte sequences ("<!--", "</script", "&#x...;",
// CRLF). The mutator therefore injects exactly the shapes the tokenizer's
// state machine keys on — escape openers/closers, end-tag lookalikes,
// malformed UTF-8 sequences, quote damage — at random positions in a seed
// document, under a caller-supplied deterministic RNG. Same seed, same
// mutants, forever: a fuzz failure reproduces from the (seed, iteration)
// pair alone.
#ifndef WEBLINT_CORPUS_HTML_MUTATOR_H_
#define WEBLINT_CORPUS_HTML_MUTATOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "corpus/rng.h"

namespace weblint {

// Seed documents covering the tokenizer's state space: raw-text elements,
// escaped script data, comments, entities, attribute quoting, newline
// forms. Fuzzing mutates these rather than growing inputs from nothing.
const std::vector<std::string>& FuzzSeedDocuments();

// Produces one mutant: applies 1-3 random mutations (shape injection,
// truncation, quote damage, NUL / invalid-UTF-8 / lone-'<' injection, slice
// duplication, byte deletion, case flip) to `doc` using `rng`.
std::string MutateDocument(std::string_view doc, SplitMix64* rng);

}  // namespace weblint

#endif  // WEBLINT_CORPUS_HTML_MUTATOR_H_
