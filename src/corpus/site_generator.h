// Synthetic web-site generation for the robot / -R experiments (E8, E9).
//
// Generates a site with a known link topology: reachable pages, seeded
// broken links, orphan pages, redirects and a robots.txt — ground truth the
// benches compare the crawler's findings against. The same site can be
// served from a VirtualWeb (robot experiments) or written to disk
// (-R recursive checking experiments).
#ifndef WEBLINT_CORPUS_SITE_GENERATOR_H_
#define WEBLINT_CORPUS_SITE_GENERATOR_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "net/virtual_web.h"
#include "util/result.h"

namespace weblint {

struct SiteSpec {
  std::string host = "site.example";
  size_t pages = 32;           // Reachable pages (beyond the index).
  size_t links_per_page = 4;   // Internal links per page.
  size_t broken_links = 3;     // Links to paths that do not exist.
  size_t orphan_pages = 2;     // Pages generated but never linked.
  size_t redirects = 2;        // Links that go through a 302 hop.
  size_t paragraphs_per_page = 6;
  bool robots_disallow_private = true;  // Serve robots.txt disallowing /private/.
  size_t private_pages = 0;    // Pages under /private/ (robot must skip them).
  std::uint64_t seed = 42;
};

struct GeneratedSite {
  struct Page {
    std::string path;  // "/page3.html"
    std::string html;
  };
  std::string host;
  std::vector<Page> pages;                    // Includes index and orphans.
  std::set<std::string> orphan_paths;         // Ground truth for orphan-page.
  std::set<std::string> broken_targets;       // Paths linked to but absent.
  size_t broken_link_count = 0;               // Total broken link instances.
  std::vector<std::pair<std::string, std::string>> redirects;  // from -> to.
  std::string robots_txt;                     // Empty if none.
  std::set<std::string> private_paths;        // Disallowed by robots.txt.

  std::string UrlFor(const std::string& path) const { return "http://" + host + path; }
  std::string IndexUrl() const { return UrlFor("/index.html"); }
};

// Generates the site per `spec`. All pages are clean HTML (zero diagnostics
// from the default warning set) so robot/site benches measure traversal and
// link validation, not page defects.
GeneratedSite GenerateSite(const SiteSpec& spec);

// Installs the site's pages, redirects, and robots.txt into `web`.
void PopulateVirtualWeb(const GeneratedSite& site, VirtualWeb* web);

// Writes the site under `root` on disk (directories created as needed), for
// the -R recursive-checking experiments. Paths map /a/b.html -> root/a/b.html.
Status WriteSiteToDisk(const GeneratedSite& site, const std::string& root);

// --- Multi-host webs (sharded-frontier experiments) ---------------------

struct MultiHostSpec {
  size_t hosts = 3;              // host0.example .. host{N-1}.example
  size_t pages_per_host = 6;     // Reachable pages beyond each host's index.
  size_t links_per_page = 3;     // Same-host links per page.
  size_t cross_links_per_page = 1;  // Absolute links to other hosts per page.
  size_t mirrored_pages = 2;     // Per host: /mirror{i}.html, byte-identical
                                 // across every host (dedupe ground truth).
  size_t paragraphs_per_page = 4;
  std::uint64_t seed = 7;
};

struct MultiHostSite {
  std::vector<std::string> hosts;
  size_t total_pages = 0;            // Pages installed across all hosts.
  size_t mirror_groups = 0;          // Distinct mirrored bodies.
  std::set<std::string> mirrored_urls;  // Every URL serving a mirrored body.

  // Crawl entry point; host0's index links every other host's index, so the
  // whole web is reachable with stay_on_host disabled.
  std::string StartUrl() const { return "http://" + hosts.front() + "/index.html"; }
};

// Generates a deterministic multi-host web and installs it into `web`:
// per-host page chains, cross-host links, and mirrored (byte-identical)
// pages for content-digest dedupe tests. All pages are clean HTML.
MultiHostSite GenerateMultiHostWeb(const MultiHostSpec& spec, VirtualWeb* web);

}  // namespace weblint

#endif  // WEBLINT_CORPUS_SITE_GENERATOR_H_
