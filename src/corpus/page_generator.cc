#include "corpus/page_generator.h"

#include "util/strings.h"

namespace weblint {

namespace {

// Plain prose vocabulary: pure ASCII letters so clean pages stay clean.
constexpr const char* kWords[] = {
    "the",     "quick",   "research", "centre",  "canon",    "weblint", "checks",  "syntax",
    "style",   "pages",   "browser",  "markup",  "document", "quality", "testing", "analysis",
    "network", "server",  "anchor",   "element", "release",  "users",   "mailing", "list",
    "victims", "bazaar",  "model",    "perl",    "hack",     "module",  "robot",   "gateway",
    "link",    "index",   "search",   "engine",  "content",  "valid",   "helpful", "comment",
};
constexpr size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

}  // namespace

const char* DefectKindName(DefectKind kind) {
  switch (kind) {
    case DefectKind::kUnclosedElement:
      return "unclosed-element";
    case DefectKind::kHeadingMismatch:
      return "heading-mismatch";
    case DefectKind::kUnquotedAttr:
      return "unquoted-attr";
    case DefectKind::kIllegalAttrValue:
      return "illegal-attr-value";
    case DefectKind::kOddQuotes:
      return "odd-quotes";
    case DefectKind::kOverlap:
      return "overlap";
    case DefectKind::kUnknownElement:
      return "unknown-element";
    case DefectKind::kUnknownAttribute:
      return "unknown-attribute";
    case DefectKind::kMissingAlt:
      return "missing-alt";
    case DefectKind::kDeprecatedElement:
      return "deprecated-element";
    case DefectKind::kBadEntity:
      return "bad-entity";
    case DefectKind::kIllegalClosing:
      return "illegal-closing";
    case DefectKind::kCount:
      break;
  }
  return "?";
}

const char* DefectExpectedMessage(DefectKind kind) {
  switch (kind) {
    case DefectKind::kUnclosedElement:
      return "unclosed-element";
    case DefectKind::kHeadingMismatch:
      return "heading-mismatch";
    case DefectKind::kUnquotedAttr:
      return "quote-attribute-value";
    case DefectKind::kIllegalAttrValue:
      return "attribute-value";
    case DefectKind::kOddQuotes:
      return "odd-quotes";
    case DefectKind::kOverlap:
      return "element-overlap";
    case DefectKind::kUnknownElement:
      return "unknown-element";
    case DefectKind::kUnknownAttribute:
      return "unknown-attribute";
    case DefectKind::kMissingAlt:
      return "img-alt";
    case DefectKind::kDeprecatedElement:
      return "deprecated-element";
    case DefectKind::kBadEntity:
      return "unknown-entity";
    case DefectKind::kIllegalClosing:
      return "illegal-closing";
    case DefectKind::kCount:
      break;
  }
  return "?";
}

const char* ShapeName(PageGenerator::Shape shape) {
  switch (shape) {
    case PageGenerator::Shape::kTextHeavy:
      return "text-heavy";
    case PageGenerator::Shape::kTagHeavy:
      return "tag-heavy";
    case PageGenerator::Shape::kCommentHeavy:
      return "comment-heavy";
    case PageGenerator::Shape::kAttrHeavy:
      return "attr-heavy";
    case PageGenerator::Shape::kTableHeavy:
      return "table-heavy";
  }
  return "?";
}

std::string PageGenerator::Sentence(size_t words) {
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) {
      out.push_back(' ');
    }
    out += kWords[rng_.Below(kWordCount)];
  }
  out.push_back('.');
  return out;
}

std::string PageGenerator::Paragraph(size_t sentences) {
  std::string out = "<P>";
  for (size_t i = 0; i < sentences; ++i) {
    if (i > 0) {
      out.push_back(' ');
    }
    out += Sentence(rng_.Between(5, 12));
  }
  out += "</P>\n";
  return out;
}

std::string PageGenerator::DefectMarkup(DefectKind kind) {
  switch (kind) {
    case DefectKind::kUnclosedElement:
      return "<P><B>" + Sentence(4) + "\n";  // B never closed.
    case DefectKind::kHeadingMismatch:
      return "<H2>" + Sentence(3) + "</H3>\n";
    case DefectKind::kUnquotedAttr:
      return "<P><A HREF=page.html#top>" + Sentence(2) + "</A></P>\n";
    case DefectKind::kIllegalAttrValue:
      return "<FORM ACTION=\"query.cgi\" METHOD=\"teleport\">"
             "<INPUT TYPE=\"text\" NAME=\"q\"></FORM>\n";
    case DefectKind::kOddQuotes:
      return "<P><A HREF=\"broken.html>" + Sentence(2) + "</A></P>\n";
    case DefectKind::kOverlap:
      return "<P><B><I>" + Sentence(3) + "</B></I></P>\n";
    case DefectKind::kUnknownElement:
      return "<BLOCKQOUTE>" + Sentence(4) + "</BLOCKQOUTE>\n";
    case DefectKind::kUnknownAttribute:
      return "<P WIBBLE=\"on\">" + Sentence(4) + "</P>\n";
    case DefectKind::kMissingAlt:
      return "<P><IMG SRC=\"missing-alt.gif\" WIDTH=\"10\" HEIGHT=\"10\"></P>\n";
    case DefectKind::kDeprecatedElement:
      return "<LISTING>example output</LISTING>\n";
    case DefectKind::kBadEntity:
      return "<P>before &nonsense; after.</P>\n";
    case DefectKind::kIllegalClosing:
      return "<P>" + Sentence(3) + "</BR></P>\n";
    case DefectKind::kCount:
      break;
  }
  return "";
}

GeneratedPage PageGenerator::Generate(const PageSpec& spec,
                                      const std::vector<DefectKind>& defect_kinds) {
  GeneratedPage page;

  std::vector<std::string> chunks;
  chunks.push_back("<H1>" + Sentence(3) + "</H1>\n");
  for (size_t i = 0; i < spec.paragraphs; ++i) {
    chunks.push_back(Paragraph(rng_.Between(2, 5)));
  }
  for (size_t i = 0; i < spec.links; ++i) {
    const std::string target = StrFormat("page%d.html", rng_.Below(64));
    page.link_targets.push_back(target);
    chunks.push_back("<P>See <A HREF=\"" + target + "\">" + Sentence(2) + "</A> " +
                     Sentence(3) + "</P>\n");
  }
  for (size_t i = 0; i < spec.images; ++i) {
    chunks.push_back(StrFormat(
        "<P><IMG SRC=\"image%d.gif\" ALT=\"%s\" WIDTH=\"%d\" HEIGHT=\"%d\"></P>\n",
        rng_.Below(32), Sentence(2), rng_.Between(16, 320), rng_.Between(16, 200)));
  }
  if (spec.list_items > 0) {
    std::string list = "<UL>\n";
    for (size_t i = 0; i < spec.list_items; ++i) {
      list += "<LI>" + Sentence(4) + "</LI>\n";
    }
    list += "</UL>\n";
    chunks.push_back(std::move(list));
  }
  if (spec.table_rows > 0) {
    std::string table = "<TABLE SUMMARY=\"generated data\">\n";
    for (size_t i = 0; i < spec.table_rows; ++i) {
      table += "<TR><TD>" + Sentence(2) + "</TD><TD>" + Sentence(2) + "</TD></TR>\n";
    }
    table += "</TABLE>\n";
    chunks.push_back(std::move(table));
  }

  // Inject one instance of each requested defect at a deterministic spot.
  for (DefectKind kind : defect_kinds) {
    const size_t position = rng_.Below(chunks.size() + 1);
    chunks.insert(chunks.begin() + static_cast<std::ptrdiff_t>(position), DefectMarkup(kind));
    page.defects.push_back(SeededDefect{kind, position});
  }

  std::string html;
  if (spec.doctype) {
    html += "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0 Transitional//EN\">\n";
  }
  html += "<HTML>\n<HEAD>\n<TITLE>" + Sentence(3) + "</TITLE>\n</HEAD>\n<BODY>\n";
  for (const std::string& chunk : chunks) {
    html += chunk;
  }
  html += "</BODY>\n</HTML>\n";
  page.html = std::move(html);
  return page;
}

std::string PageGenerator::GenerateShaped(Shape shape, size_t target_bytes) {
  std::string body;
  body.reserve(target_bytes + 1024);
  size_t counter = 0;
  while (body.size() < target_bytes) {
    switch (shape) {
      case Shape::kTextHeavy:
        body += "<P>";
        for (int s = 0; s < 12; ++s) {
          body += Sentence(12) + " ";
        }
        body += "</P>\n";
        break;
      case Shape::kTagHeavy: {
        body += "<P>";
        for (int s = 0; s < 20; ++s) {
          static constexpr const char* kInline[] = {"EM", "STRONG", "CODE", "KBD", "VAR",
                                                    "CITE", "SAMP", "DFN"};
          const char* tag = kInline[rng_.Below(8)];
          body += StrFormat("<%s>%s</%s> ", tag, kWords[rng_.Below(kWordCount)], tag);
        }
        body += "</P>\n";
        break;
      }
      case Shape::kCommentHeavy:
        body += "<!-- " + Sentence(20) + " -->\n<P>" + Sentence(8) + "</P>\n";
        break;
      case Shape::kAttrHeavy:
        body += StrFormat(
            "<P ID=\"p%d\" CLASS=\"body text wide\" TITLE=\"%s\" LANG=\"en\" DIR=\"ltr\" "
            "ONCLICK=\"go()\" ONMOUSEOVER=\"hi()\" ONMOUSEOUT=\"lo()\" STYLE=\"margin: 1em\">"
            "%s</P>\n",
            counter, Sentence(3), Sentence(6));
        break;
      case Shape::kTableHeavy:
        body += "<TABLE SUMMARY=\"nested\"><TR><TD ALIGN=\"left\" VALIGN=\"top\">"
                "<TABLE SUMMARY=\"inner\"><TR><TD>" +
                Sentence(4) +
                "</TD><TD ALIGN=\"right\">" + Sentence(3) +
                "</TD></TR></TABLE></TD><TD>" + Sentence(2) + "</TD></TR></TABLE>\n";
        break;
    }
    ++counter;
  }
  std::string html = "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0 Transitional//EN\">\n";
  html += "<HTML>\n<HEAD>\n<TITLE>shaped corpus page</TITLE>\n</HEAD>\n<BODY>\n<H1>corpus</H1>\n";
  html += body;
  html += "</BODY>\n</HTML>\n";
  return html;
}

std::string PageGenerator::ProsePage(std::string_view title, size_t paragraphs,
                                     const std::vector<std::string>& hrefs) {
  std::string html = "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0 Transitional//EN\">\n";
  html += "<HTML>\n<HEAD>\n<TITLE>";
  html += title;
  html += "</TITLE>\n</HEAD>\n<BODY>\n<H1>";
  html += title;
  html += "</H1>\n";
  for (size_t i = 0; i < paragraphs; ++i) {
    html += Paragraph(rng_.Between(2, 4));
  }
  for (const std::string& href : hrefs) {
    html += "<P>See <A HREF=\"" + href + "\">" + Sentence(2) + "</A></P>\n";
  }
  html += "</BODY>\n</HTML>\n";
  return html;
}

GeneratedPage PageGenerator::GenerateDefective(size_t paragraphs, size_t defect_count) {
  std::vector<DefectKind> kinds;
  kinds.reserve(defect_count);
  for (size_t i = 0; i < defect_count; ++i) {
    kinds.push_back(static_cast<DefectKind>(i % kDefectKindCount));
  }
  PageSpec spec;
  spec.paragraphs = paragraphs;
  spec.links = 2;
  spec.images = 1;
  return Generate(spec, kinds);
}

}  // namespace weblint
