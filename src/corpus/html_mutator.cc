#include "corpus/html_mutator.h"

namespace weblint {

namespace {

// Multi-byte sequences the tokenizer's state machine keys on. Injecting
// one of these at a random offset reaches states that random bytes cannot.
constexpr std::string_view kShapes[] = {
    "<!--",
    "-->",
    "--!>",
    "-- >",
    "<script>",
    "</script>",
    "</script >",
    "</scriptx>",
    "</script",
    "<script type=a>",
    "<style>",
    "</style>",
    "<xmp>",
    "</xmp>",
    "<plaintext>",
    "&amp;",
    "&amp",
    "&nosuch;",
    "&#65;",
    "&#x41;",
    "&#xD800;",
    "&#x110000;",
    "&#0;",
    "&#x10FFFF;",
    "&#;",
    "&#",
    "\r\n",
    "\r",
    "\n",
    "=\"",
    "='",
    "\"",
    "'",
    "</",
    "<!",
    "<?",
    ">",
    "/>",
};

// Byte sequences that are not well-formed UTF-8: overlong, surrogate,
// out-of-range, bare lead, bare continuation — plus one valid multi-byte
// sequence so boundaries between good and bad are exercised too.
constexpr std::string_view kUtf8Snippets[] = {
    "\xC0\xAF",          // Overlong '/'.
    "\xE0\x80\x80",      // Overlong NUL.
    "\xED\xA0\x80",      // Surrogate D800.
    "\xF4\x90\x80\x80",  // U+110000: out of range.
    "\xFF",              // Never valid.
    "\xFE",              // Never valid.
    "\xC2",              // Truncated 2-byte lead.
    "\xE2\x82",          // Truncated 3-byte sequence.
    "\xF0\x9F",          // Truncated 4-byte sequence.
    "\x80",              // Bare continuation byte.
    "\xC2\xA9",          // Valid: U+00A9 (c).
    "\xE2\x82\xAC",      // Valid: U+20AC.
    "\xF0\x9F\x98\x80",  // Valid: U+1F600.
};

std::string InsertAt(std::string_view doc, size_t offset, std::string_view what) {
  std::string out(doc.substr(0, offset));
  out.append(what);
  out.append(doc.substr(offset));
  return out;
}

}  // namespace

const std::vector<std::string>& FuzzSeedDocuments() {
  static const std::vector<std::string> kSeeds = {
      // Plain structure with attributes in every quoting style.
      "<HTML><HEAD><TITLE>t</TITLE></HEAD>\n"
      "<BODY BGCOLOR=\"#ffffff\" TEXT='#000000' COMPACT>\n"
      "<A HREF=\"a.html\">link</A> text &amp; more &nbsp; &bogus; &#151;\n"
      "</BODY></HTML>\n",
      // Escaped script data: the inner close tag is content.
      "<script><!-- var x = \"</script>\"; --></script>after\n",
      // Double-escaped script data.
      "<script><!-- document.write(\"<script>a</script>\"); --></script>\n",
      // Raw text with end-tag lookalikes.
      "<style>p { content: \"</styl\" } </styleX> x</style>rest\n",
      "<xmp>literal <b> markup & entities &amp; </xmpfoo></xmp>done\n",
      // Comments: nested opens, whitespace closes, markup inside.
      "<!-- outer <!-- inner --> <P> tail\n<!-- closed -- >text<!---->\n",
      // Quote trouble (paper §4.2) and runaway values.
      "<A HREF=\"a.html>here</A> <IMG SRC='x.gif alt=y> <B attr=\">\">\n",
      // Entities at boundaries, numeric edge values.
      "&#x10FFFF; &#xD800; &#0; &#X41 &amp &quot;q&quot; &\n",
      // Newline forms: LF, CRLF, lone CR, CR at a token boundary.
      "line1\nline2\r\nline3\rline4\r<P>\r\n</P>\r",
      // Mixed valid/invalid UTF-8.
      "caf\xC3\xA9 <p>\xE2\x82\xAC</p> \xC3(\x80) <!-- \xED\xA0\x80 -->\n",
      // PLAINTEXT swallows everything.
      "<p>before<plaintext>rest < &amp; </plaintext> never ends",
      // Declarations, processing instructions, stray '<'.
      "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0//EN\">\n"
      "<?php echo '>'; ?> a < b <\n",
  };
  return kSeeds;
}

std::string MutateDocument(std::string_view doc, SplitMix64* rng) {
  std::string out(doc);
  const std::uint64_t mutations = rng->Between(1, 3);
  for (std::uint64_t m = 0; m < mutations; ++m) {
    // Offsets include out.size(): mutations at the very end are where
    // truncated-sequence handling lives.
    const size_t offset = out.empty() ? 0 : rng->Below(out.size() + 1);
    switch (rng->Below(9)) {
      case 0:  // Truncate.
        out.resize(offset);
        break;
      case 1: {  // Drop the nearest quote at-or-after offset, if any.
        const size_t q = out.find_first_of("\"'", offset);
        if (q != std::string::npos) {
          out.erase(q, 1);
        }
        break;
      }
      case 2:  // NUL injection.
        out = InsertAt(out, offset, std::string_view("\0", 1));
        break;
      case 3:  // UTF-8 damage.
        out = InsertAt(out, offset, kUtf8Snippets[rng->Below(std::size(kUtf8Snippets))]);
        break;
      case 4:  // Lone '<'.
        out = InsertAt(out, offset, "<");
        break;
      case 5:  // Structural shape.
        out = InsertAt(out, offset, kShapes[rng->Below(std::size(kShapes))]);
        break;
      case 6: {  // Duplicate a slice (amplifies repeated-state coverage).
        if (!out.empty()) {
          const size_t from = rng->Below(out.size());
          const size_t len = rng->Between(1, std::min<std::uint64_t>(16, out.size() - from));
          out = InsertAt(out, offset, std::string(out.substr(from, len)));
        }
        break;
      }
      case 7:  // Delete a byte.
        if (offset < out.size()) {
          out.erase(offset, 1);
        }
        break;
      case 8:  // Case-flip a byte (end-tag matching is case-insensitive).
        if (offset < out.size()) {
          const char c = out[offset];
          if (c >= 'a' && c <= 'z') {
            out[offset] = static_cast<char>(c - 32);
          } else if (c >= 'A' && c <= 'Z') {
            out[offset] = static_cast<char>(c + 32);
          }
        }
        break;
    }
  }
  return out;
}

}  // namespace weblint
