#include "corpus/site_generator.h"

#include <filesystem>

#include "corpus/page_generator.h"
#include "corpus/rng.h"
#include "util/file_io.h"
#include "util/strings.h"

namespace weblint {

GeneratedSite GenerateSite(const SiteSpec& spec) {
  GeneratedSite site;
  site.host = spec.host;

  SplitMix64 rng(spec.seed);
  PageGenerator pages(spec.seed ^ 0x5157ULL);

  // Page paths: index + page0..pageN-1 (+ orphans + private pages).
  std::vector<std::string> reachable;
  reachable.reserve(spec.pages);
  for (size_t i = 0; i < spec.pages; ++i) {
    reachable.push_back(StrFormat("/page%d.html", i));
  }

  // Per-page outbound links: a chain guarantees reachability from the
  // index; extra links are random internal references.
  std::vector<std::vector<std::string>> outbound(spec.pages);
  for (size_t i = 0; i < spec.pages; ++i) {
    if (i + 1 < spec.pages) {
      outbound[i].push_back(StrFormat("page%d.html", i + 1));
    }
    for (size_t k = 1; k < spec.links_per_page && spec.pages > 1; ++k) {
      outbound[i].push_back(StrFormat("page%d.html", rng.Below(spec.pages)));
    }
  }

  // Broken links: targets that will never exist.
  for (size_t i = 0; i < spec.broken_links && !outbound.empty(); ++i) {
    const std::string target = StrFormat("missing%d.html", i);
    site.broken_targets.insert("/" + target);
    outbound[rng.Below(outbound.size())].push_back(target);
    ++site.broken_link_count;
  }

  // Redirect hops: a link to /movedK.html that 302s to a real page.
  for (size_t i = 0; i < spec.redirects && spec.pages > 0; ++i) {
    const std::string from = StrFormat("/moved%d.html", i);
    const std::string to = site.UrlFor(reachable[rng.Below(reachable.size())]);
    site.redirects.emplace_back(from, to);
    outbound[rng.Below(outbound.size())].push_back(from.substr(1));
  }

  // Index page links to the chain head, a few random pages, and the private
  // section (which robots.txt forbids crawling).
  std::vector<std::string> index_links;
  if (spec.pages > 0) {
    index_links.push_back("page0.html");
    for (size_t i = 0; i < 3 && spec.pages > 1; ++i) {
      index_links.push_back(StrFormat("page%d.html", rng.Below(spec.pages)));
    }
  }
  for (size_t i = 0; i < spec.private_pages; ++i) {
    index_links.push_back(StrFormat("private/secret%d.html", i));
  }
  site.pages.push_back(
      {"/index.html", pages.ProsePage("site index", spec.paragraphs_per_page, index_links)});

  for (size_t i = 0; i < spec.pages; ++i) {
    site.pages.push_back({reachable[i], pages.ProsePage(StrFormat("page %d", i),
                                                        spec.paragraphs_per_page, outbound[i])});
  }

  for (size_t i = 0; i < spec.orphan_pages; ++i) {
    const std::string path = StrFormat("/orphan%d.html", i);
    site.orphan_paths.insert(path);
    site.pages.push_back(
        {path, pages.ProsePage(StrFormat("orphan %d", i), spec.paragraphs_per_page, {})});
  }

  for (size_t i = 0; i < spec.private_pages; ++i) {
    const std::string path = StrFormat("/private/secret%d.html", i);
    site.private_paths.insert(path);
    site.pages.push_back(
        {path, pages.ProsePage(StrFormat("secret %d", i), spec.paragraphs_per_page, {})});
  }

  if (spec.robots_disallow_private) {
    site.robots_txt = "User-agent: *\nDisallow: /private/\n";
  }
  return site;
}

void PopulateVirtualWeb(const GeneratedSite& site, VirtualWeb* web) {
  for (const GeneratedSite::Page& page : site.pages) {
    web->AddPage(site.UrlFor(page.path), page.html);
  }
  for (const auto& [from, to] : site.redirects) {
    web->AddRedirect(site.UrlFor(from), to);
  }
  if (!site.robots_txt.empty()) {
    web->SetRobotsTxt(site.host, site.robots_txt);
  }
}

Status WriteSiteToDisk(const GeneratedSite& site, const std::string& root) {
  std::error_code ec;
  for (const GeneratedSite::Page& page : site.pages) {
    const std::string path = root + page.path;
    std::filesystem::create_directories(std::string(Dirname(path)), ec);
    if (ec) {
      return Fail("cannot create directories for " + path + ": " + ec.message());
    }
    if (Status s = WriteFile(path, page.html); !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

MultiHostSite GenerateMultiHostWeb(const MultiHostSpec& spec, VirtualWeb* web) {
  MultiHostSite site;
  const size_t hosts = spec.hosts > 0 ? spec.hosts : 1;
  site.hosts.reserve(hosts);
  for (size_t h = 0; h < hosts; ++h) {
    site.hosts.push_back(StrFormat("host%d.example", h));
  }

  SplitMix64 rng(spec.seed);
  PageGenerator pages(spec.seed ^ 0x5157ULL);

  // Mirrored bodies are generated once and installed verbatim on every
  // host: N copies, one digest — the frontier must lint each exactly once.
  std::vector<std::string> mirror_bodies;
  for (size_t i = 0; i < spec.mirrored_pages; ++i) {
    mirror_bodies.push_back(
        pages.ProsePage(StrFormat("mirror %d", i), spec.paragraphs_per_page, {}));
  }
  site.mirror_groups = mirror_bodies.size();

  for (size_t h = 0; h < hosts; ++h) {
    const std::string& host = site.hosts[h];
    const auto url_for = [&](const std::string& path) { return "http://" + host + path; };

    // Index: chain head, the mirror pages, and (host0 only) every other
    // host's index, so one start URL reaches the whole web.
    std::vector<std::string> index_links;
    if (spec.pages_per_host > 0) {
      index_links.push_back("page0.html");
    }
    for (size_t i = 0; i < spec.mirrored_pages; ++i) {
      index_links.push_back(StrFormat("mirror%d.html", i));
    }
    if (h == 0) {
      for (size_t other = 1; other < hosts; ++other) {
        index_links.push_back("http://" + site.hosts[other] + "/index.html");
      }
    }
    web->AddPage(url_for("/index.html"),
                 pages.ProsePage(StrFormat("%s index", host), spec.paragraphs_per_page,
                                 index_links));
    ++site.total_pages;

    for (size_t i = 0; i < spec.pages_per_host; ++i) {
      std::vector<std::string> links;
      if (i + 1 < spec.pages_per_host) {
        links.push_back(StrFormat("page%d.html", i + 1));
      }
      for (size_t k = 1; k < spec.links_per_page && spec.pages_per_host > 1; ++k) {
        links.push_back(StrFormat("page%d.html", rng.Below(spec.pages_per_host)));
      }
      for (size_t k = 0; k < spec.cross_links_per_page && hosts > 1; ++k) {
        const std::string& other = site.hosts[(h + 1 + rng.Below(hosts - 1)) % hosts];
        links.push_back(StrFormat("http://%s/page%d.html", other,
                                  spec.pages_per_host > 0 ? rng.Below(spec.pages_per_host) : 0));
      }
      web->AddPage(url_for(StrFormat("/page%d.html", i)),
                   pages.ProsePage(StrFormat("%s page %d", host, i),
                                   spec.paragraphs_per_page, links));
      ++site.total_pages;
    }

    for (size_t i = 0; i < spec.mirrored_pages; ++i) {
      const std::string url = url_for(StrFormat("/mirror%d.html", i));
      web->AddPage(url, mirror_bodies[i]);
      site.mirrored_urls.insert(url);
      ++site.total_pages;
    }
  }
  return site;
}

}  // namespace weblint
