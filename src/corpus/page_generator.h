// Synthetic HTML page generation with labelled, seeded defects.
//
// The paper's corpus was the 1990s web; offline, the benches need pages
// whose ground truth is known exactly. Every defect a generated page
// contains is seeded deliberately and counted, so experiments can report
// "diagnostics per seeded defect" (E3/E4) precisely.
#ifndef WEBLINT_CORPUS_PAGE_GENERATOR_H_
#define WEBLINT_CORPUS_PAGE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/rng.h"

namespace weblint {

// Defect kinds the generator can seed. Each corresponds to a weblint
// message the defect should trigger (listed in the comment).
enum class DefectKind {
  kUnclosedElement,   // unclosed-element: container never closed
  kHeadingMismatch,   // heading-mismatch: <H2>..</H3>
  kUnquotedAttr,      // quote-attribute-value: BGCOLOR=#ff0000 unquoted
  kIllegalAttrValue,  // attribute-value: ALIGN=sideways
  kOddQuotes,         // odd-quotes: unterminated quoted attribute
  kOverlap,           // element-overlap: <B><I>..</B>..</I>
  kUnknownElement,    // unknown-element: <BLOCKQOUTE>
  kUnknownAttribute,  // unknown-attribute: made-up attribute
  kMissingAlt,        // img-alt: IMG without ALT
  kDeprecatedElement, // deprecated-element: <LISTING>
  kBadEntity,         // unknown-entity: &nonsense;
  kIllegalClosing,    // illegal-closing: </BR>
  kCount,             // Number of kinds (not a defect).
};

constexpr size_t kDefectKindCount = static_cast<size_t>(DefectKind::kCount);

const char* DefectKindName(DefectKind kind);
// The weblint message id the defect is expected to trigger.
const char* DefectExpectedMessage(DefectKind kind);

struct PageSpec {
  size_t paragraphs = 10;        // Body paragraphs of prose.
  size_t links = 3;              // <A HREF> links sprinkled through the body.
  size_t images = 1;             // Valid IMG elements (with ALT/WIDTH/HEIGHT).
  size_t list_items = 0;         // A UL with this many LIs.
  size_t table_rows = 0;         // A TABLE with this many rows (2 cells each).
  bool doctype = true;
  std::uint64_t seed = 1;
};

struct SeededDefect {
  DefectKind kind = DefectKind::kUnclosedElement;
  // Index of the body chunk the defect was injected into (diagnostic aid).
  size_t position = 0;
};

struct GeneratedPage {
  std::string html;
  std::vector<SeededDefect> defects;
  std::vector<std::string> link_targets;  // HREF values emitted.
};

class PageGenerator {
 public:
  explicit PageGenerator(std::uint64_t seed) : rng_(seed) {}

  // Generates a well-formed page per `spec` (zero diagnostics from the
  // default warning set, by construction), then injects `defect_kinds`, one
  // instance each, at deterministic positions.
  GeneratedPage Generate(const PageSpec& spec, const std::vector<DefectKind>& defect_kinds);

  // Generates a clean page of roughly `target_bytes` (for throughput
  // benches). Shape controls the markup mix.
  enum class Shape {
    kTextHeavy,     // Long prose, few tags.
    kTagHeavy,      // Dense inline markup.
    kCommentHeavy,  // Many comments.
    kAttrHeavy,     // Tags with many attributes.
    kTableHeavy,    // Deep table structure.
  };
  std::string GenerateShaped(Shape shape, size_t target_bytes);

  // A page with `defect_count` defects drawn round-robin from all kinds —
  // the defect-density workload for the cascade experiment (E3).
  GeneratedPage GenerateDefective(size_t paragraphs, size_t defect_count);

  // A clean page containing exactly the given links (in order) and nothing
  // else that references other documents — the site generator controls link
  // topology precisely with this.
  std::string ProsePage(std::string_view title, size_t paragraphs,
                        const std::vector<std::string>& hrefs);

 private:
  std::string Sentence(size_t words);
  std::string Paragraph(size_t sentences);
  std::string DefectMarkup(DefectKind kind);

  SplitMix64 rng_;
};

const char* ShapeName(PageGenerator::Shape shape);

}  // namespace weblint

#endif  // WEBLINT_CORPUS_PAGE_GENERATOR_H_
