#include "plugins/script_checker.h"

#include <vector>

#include "util/strings.h"

namespace weblint {

void ScriptChecker::Check(std::string_view content, SourceLocation start,
                          std::vector<PluginFinding>* findings) const {
  auto report = [&](size_t offset, Category category, std::string_view topic,
                    std::string message) {
    findings->push_back(PluginFinding{AdvanceLocation(content, offset, start), category,
                                      std::string(topic), std::move(message)});
  };

  struct Open {
    char bracket;
    size_t offset;
  };
  std::vector<Open> stack;
  const size_t n = content.size();
  size_t i = 0;
  while (i < n) {
    const char c = content[i];
    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      while (i < n && content[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const size_t end = content.find("*/", i + 2);
      if (end == std::string_view::npos) {
        report(i, Category::kWarning, "unterminated-comment",
               "'/*' comment never closed");
        return;
      }
      i = end + 2;
      continue;
    }
    // Strings: no multi-line strings in 1990s JavaScript.
    if (c == '"' || c == '\'') {
      const size_t open = i;
      ++i;
      bool closed = false;
      while (i < n) {
        if (content[i] == '\\') {
          i += 2;
          continue;
        }
        if (content[i] == c) {
          closed = true;
          ++i;
          break;
        }
        if (content[i] == '\n') {
          break;
        }
        ++i;
      }
      if (!closed) {
        report(open, Category::kError, "unterminated-string",
               StrFormat("string opened with %c never closed on its line", c));
      }
      continue;
    }
    if (c == '(' || c == '[' || c == '{') {
      stack.push_back(Open{c, i});
      ++i;
      continue;
    }
    if (c == ')' || c == ']' || c == '}') {
      const char expected = c == ')' ? '(' : c == ']' ? '[' : '{';
      if (stack.empty() || stack.back().bracket != expected) {
        report(i, Category::kError, "unbalanced-bracket",
               StrFormat("'%c' does not match any open '%c'", c, expected));
      } else {
        stack.pop_back();
      }
      ++i;
      continue;
    }
    ++i;
  }
  for (const Open& open : stack) {
    report(open.offset, Category::kError, "unbalanced-bracket",
           StrFormat("'%c' is never closed", open.bracket));
  }
}

}  // namespace weblint
