#include "plugins/plugin.h"

namespace weblint {

SourceLocation AdvanceLocation(std::string_view content, size_t offset, SourceLocation start) {
  SourceLocation location = start;
  for (size_t i = 0; i < offset && i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n' || (c == '\r' && (i + 1 >= content.size() || content[i + 1] != '\n'))) {
      ++location.line;
      location.column = 1;
    } else {
      ++location.column;
    }
  }
  return location;
}

}  // namespace weblint
