// The stylesheet-validation plugin the paper's §6.1 sketches: a CSS1-level
// checker for STYLE element content. In the weblint spirit it is a helpful
// problem identifier, not a grammar validator: unknown property names
// (usually typos), missing ':' in declarations, unbalanced braces, empty
// rules, and illegal colour values.
#ifndef WEBLINT_PLUGINS_CSS_CHECKER_H_
#define WEBLINT_PLUGINS_CSS_CHECKER_H_

#include "plugins/plugin.h"

namespace weblint {

class CssChecker : public ContentPlugin {
 public:
  std::string_view name() const override { return "css"; }
  std::string_view element() const override { return "style"; }
  void Check(std::string_view content, SourceLocation start,
             std::vector<PluginFinding>* findings) const override;

  // True if `property` is a CSS1 property name (case-insensitive).
  static bool IsKnownProperty(std::string_view property);
  // Closest known property within edit distance 2, or empty.
  static std::string SuggestProperty(std::string_view property);
};

}  // namespace weblint

#endif  // WEBLINT_PLUGINS_CSS_CHECKER_H_
