#include "plugins/css_checker.h"

#include <algorithm>

#include "util/edit_distance.h"
#include "util/strings.h"

namespace weblint {

namespace {

// The CSS1 property set (W3C REC-CSS1, Dec 1996).
constexpr std::string_view kCss1Properties[] = {
    "background",          "background-attachment", "background-color",
    "background-image",    "background-position",   "background-repeat",
    "border",              "border-bottom",         "border-bottom-width",
    "border-color",        "border-left",           "border-left-width",
    "border-right",        "border-right-width",    "border-style",
    "border-top",          "border-top-width",      "border-width",
    "clear",               "color",                 "display",
    "float",               "font",                  "font-family",
    "font-size",           "font-style",            "font-variant",
    "font-weight",         "height",                "letter-spacing",
    "line-height",         "list-style",            "list-style-image",
    "list-style-position", "list-style-type",       "margin",
    "margin-bottom",       "margin-left",           "margin-right",
    "margin-top",          "padding",               "padding-bottom",
    "padding-left",        "padding-right",         "padding-top",
    "text-align",          "text-decoration",       "text-indent",
    "text-transform",      "vertical-align",        "white-space",
    "width",               "word-spacing",
};

// Strips CSS comments, replacing them with spaces so positions survive.
std::string StripComments(std::string_view content) {
  std::string out(content);
  size_t i = 0;
  while (i + 1 < out.size()) {
    if (out[i] == '/' && out[i + 1] == '*') {
      const size_t end = out.find("*/", i + 2);
      const size_t stop = end == std::string::npos ? out.size() : end + 2;
      for (size_t j = i; j < stop; ++j) {
        if (out[j] != '\n' && out[j] != '\r') {
          out[j] = ' ';
        }
      }
      i = stop;
    } else {
      ++i;
    }
  }
  return out;
}

bool LooksLikeColorProperty(std::string_view property) {
  return IEquals(property, "color") || IEquals(property, "background-color");
}

bool IsValidCssColor(std::string_view value) {
  const std::string_view v = Trim(value);
  if (v.empty()) {
    return false;
  }
  if (v.front() == '#') {
    if (v.size() != 4 && v.size() != 7) {
      return false;
    }
    return std::all_of(v.begin() + 1, v.end(), [](char c) { return IsAsciiHexDigit(c); });
  }
  if (IStartsWith(v, "rgb(")) {
    return v.back() == ')';
  }
  // Keyword colours: letters only (CSS1 took the 16 HTML names plus more;
  // a linter accepts any identifier here).
  return std::all_of(v.begin(), v.end(), [](char c) { return IsAsciiAlpha(c); });
}

}  // namespace

bool CssChecker::IsKnownProperty(std::string_view property) {
  for (std::string_view known : kCss1Properties) {
    if (IEquals(known, property)) {
      return true;
    }
  }
  return false;
}

std::string CssChecker::SuggestProperty(std::string_view property) {
  std::string best;
  int best_distance = 3;
  for (std::string_view known : kCss1Properties) {
    const int d = BoundedEditDistance(property, known, best_distance - 1);
    if (d < best_distance) {
      best_distance = d;
      best = std::string(known);
    }
  }
  return best;
}

void CssChecker::Check(std::string_view raw_content, SourceLocation start,
                       std::vector<PluginFinding>* findings) const {
  const std::string stripped = StripComments(raw_content);
  const std::string_view content(stripped);
  auto report = [&](size_t offset, Category category, std::string_view topic,
                    std::string message) {
    findings->push_back(PluginFinding{AdvanceLocation(content, offset, start), category,
                                      std::string(topic), std::move(message)});
  };

  int depth = 0;
  size_t block_start = 0;
  size_t decl_count_in_block = 0;
  size_t i = 0;
  const size_t n = content.size();
  while (i < n) {
    const char c = content[i];
    if (c == '{') {
      ++depth;
      if (depth > 1) {
        report(i, Category::kError, "nested-block",
               "nested '{' -- CSS1 does not allow nested rule blocks");
      }
      block_start = i;
      decl_count_in_block = 0;
      ++i;
      continue;
    }
    if (c == '}') {
      if (depth == 0) {
        report(i, Category::kError, "unbalanced-brace", "'}' with no matching '{'");
      } else {
        --depth;
        if (decl_count_in_block == 0) {
          report(block_start, Category::kStyle, "empty-rule",
                 "rule block contains no declarations");
        }
      }
      ++i;
      continue;
    }
    if (depth == 0 || IsAsciiSpace(c) || c == ';') {
      ++i;
      continue;
    }

    // Inside a block, at the start of a declaration: property ':' value.
    const size_t decl_start = i;
    while (i < n && content[i] != ':' && content[i] != ';' && content[i] != '}' &&
           content[i] != '{') {
      ++i;
    }
    const std::string_view property = Trim(content.substr(decl_start, i - decl_start));
    if (i >= n || content[i] != ':') {
      if (!property.empty()) {
        report(decl_start, Category::kError, "missing-colon",
               StrFormat("declaration \"%s\" has no ':'", property));
      }
      continue;
    }
    ++i;  // ':'
    const size_t value_start = i;
    while (i < n && content[i] != ';' && content[i] != '}') {
      ++i;
    }
    const std::string_view value = Trim(content.substr(value_start, i - value_start));
    ++decl_count_in_block;

    if (!IsKnownProperty(property)) {
      const std::string suggestion = SuggestProperty(property);
      report(decl_start, Category::kWarning, "unknown-property",
             suggestion.empty()
                 ? StrFormat("unknown property \"%s\"", property)
                 : StrFormat("unknown property \"%s\" -- perhaps you meant \"%s\"?", property,
                             suggestion));
    } else if (value.empty()) {
      report(decl_start, Category::kWarning, "empty-value",
             StrFormat("property \"%s\" has no value", property));
    } else if (LooksLikeColorProperty(property) && !IsValidCssColor(value)) {
      report(value_start, Category::kError, "bad-color",
             StrFormat("illegal colour value \"%s\" for property \"%s\"", value, property));
    }
  }
  if (depth > 0) {
    report(n > 0 ? n - 1 : 0, Category::kError, "unbalanced-brace",
           "stylesheet ends inside a rule block ('}' missing)");
  }
}

}  // namespace weblint
