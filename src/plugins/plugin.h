// Content plugins (paper §6.1): "Support for 'plugins' which are used to
// validate non-HTML content (e.g. to validate stylesheets). This may
// require an outer framework, where weblint is just one such plugin, for
// HTML."
//
// A ContentPlugin claims one element name; the engine hands it that
// element's raw text content (SCRIPT, STYLE, ...). Plugin findings live
// outside the 50-message catalog — installing a plugin is the opt-in, and
// its findings are identified as "<plugin>/<topic>".
#ifndef WEBLINT_PLUGINS_PLUGIN_H_
#define WEBLINT_PLUGINS_PLUGIN_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/source_location.h"
#include "warnings/catalog.h"

namespace weblint {

struct PluginFinding {
  SourceLocation location;  // Absolute position within the checked document.
  Category category = Category::kWarning;
  std::string topic;    // Short slug: "unknown-property", "unbalanced-brace".
  std::string message;  // Human-readable text.
};

class ContentPlugin {
 public:
  virtual ~ContentPlugin() = default;

  // Plugin name, used as the finding-id prefix ("css", "script").
  virtual std::string_view name() const = 0;

  // Lowercase element whose raw content this plugin checks ("style").
  virtual std::string_view element() const = 0;

  // Checks `content`, whose first character sits at `start` in the document.
  virtual void Check(std::string_view content, SourceLocation start,
                     std::vector<PluginFinding>* findings) const = 0;
};

using PluginPtr = std::shared_ptr<const ContentPlugin>;

// Walks `content` to the position of content[offset], given that content[0]
// is at `start` — shared position arithmetic for plugin implementations.
SourceLocation AdvanceLocation(std::string_view content, size_t offset, SourceLocation start);

}  // namespace weblint

#endif  // WEBLINT_PLUGINS_PLUGIN_H_
