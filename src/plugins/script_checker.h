// A SCRIPT-content plugin: bracket/quote balance for inline JavaScript.
//
// Weblint-grade heuristics, not a JS parser: unbalanced ()/[]/{} (string-
// and comment-aware) and strings left open at end of line are the classic
// inline-script typos of the era.
#ifndef WEBLINT_PLUGINS_SCRIPT_CHECKER_H_
#define WEBLINT_PLUGINS_SCRIPT_CHECKER_H_

#include "plugins/plugin.h"

namespace weblint {

class ScriptChecker : public ContentPlugin {
 public:
  std::string_view name() const override { return "script"; }
  std::string_view element() const override { return "script"; }
  void Check(std::string_view content, SourceLocation start,
             std::vector<PluginFinding>* findings) const override;
};

}  // namespace weblint

#endif  // WEBLINT_PLUGINS_SCRIPT_CHECKER_H_
