#include "baseline/naive_checker.h"

#include <map>

#include "util/strings.h"

namespace weblint {

namespace {

// Crude tag scan: "<" [/] name ... ">" within a single line (htmlchek's
// line orientation: tags spanning lines are simply not seen properly).
struct CrudeTag {
  std::string name;
  bool closing = false;
};

std::vector<CrudeTag> TagsOnLine(std::string_view line) {
  std::vector<CrudeTag> tags;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '<') {
      continue;
    }
    size_t j = i + 1;
    CrudeTag tag;
    if (j < line.size() && line[j] == '/') {
      tag.closing = true;
      ++j;
    }
    while (j < line.size() && IsAsciiAlnum(line[j])) {
      tag.name.push_back(line[j]);
      ++j;
    }
    // Line orientation: the '>' must appear on the same line, or the tag is
    // simply not seen (htmlchek's classic blind spot).
    const size_t close = line.find('>', j);
    if (!tag.name.empty() && close != std::string_view::npos &&
        line.find('<', j) >= close) {
      tags.push_back(std::move(tag));
    }
    i = j > i ? j - 1 : i;
  }
  return tags;
}

}  // namespace

std::vector<NaiveFinding> NaiveChecker::Check(std::string_view html) const {
  std::vector<NaiveFinding> findings;
  std::map<std::string, long, ILess> balance;
  std::map<std::string, std::uint32_t, ILess> first_open_line;

  std::uint32_t line_number = 0;
  for (std::string_view line : Split(html, '\n')) {
    ++line_number;
    for (const CrudeTag& tag : TagsOnLine(line)) {
      const ElementInfo* info = spec_.Find(tag.name);
      if (info == nullptr) {
        findings.push_back(NaiveFinding{
            {line_number, 1}, StrFormat("unrecognized tag <%s>", AsciiUpper(tag.name))});
        continue;
      }
      if (info->end_tag != EndTag::kRequired) {
        continue;  // Cannot count optional/empty tags meaningfully.
      }
      balance[info->name] += tag.closing ? -1 : 1;
      if (!tag.closing) {
        first_open_line.emplace(info->name, line_number);
      }
    }
    // Quoting heuristic: an odd number of '"' on a line with a tag.
    if (line.find('<') != std::string_view::npos) {
      size_t quotes = 0;
      for (char c : line) {
        if (c == '"') {
          ++quotes;
        }
      }
      if (quotes % 2 != 0) {
        findings.push_back(
            NaiveFinding{{line_number, 1}, "possibly unbalanced quotes on this line"});
      }
    }
  }

  // Global imbalance report: no positions better than "first opened here".
  for (const auto& [name, count] : balance) {
    if (count > 0) {
      findings.push_back(NaiveFinding{
          {first_open_line[name], 1},
          StrFormat("%d <%s> tag(s) with no matching close", count, AsciiUpper(name))});
    } else if (count < 0) {
      findings.push_back(NaiveFinding{
          {first_open_line.contains(name) ? first_open_line[name] : 1u, 1},
          StrFormat("%d extra </%s> tag(s)", -count, AsciiUpper(name))});
    }
  }
  return findings;
}

}  // namespace weblint
