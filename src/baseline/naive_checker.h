// An htmlchek-style line-oriented checker (paper §3.3: "Htmlchek is a perl
// script (also available in awk) which performs syntax checking similar to
// weblint"). Second baseline for the quality comparison: it works with
// regex-grade tag extraction and global tag counting, with no stack and no
// context, so it catches global imbalance but mis-locates problems and
// misses overlap/context defects entirely.
#ifndef WEBLINT_BASELINE_NAIVE_CHECKER_H_
#define WEBLINT_BASELINE_NAIVE_CHECKER_H_

#include <string>
#include <string_view>
#include <vector>

#include "spec/spec.h"
#include "util/source_location.h"

namespace weblint {

struct NaiveFinding {
  SourceLocation location;  // Line-level only (column always 1).
  std::string message;
};

class NaiveChecker {
 public:
  explicit NaiveChecker(const HtmlSpec& spec) : spec_(spec) {}

  std::vector<NaiveFinding> Check(std::string_view html) const;

 private:
  const HtmlSpec& spec_;
};

}  // namespace weblint

#endif  // WEBLINT_BASELINE_NAIVE_CHECKER_H_
