// Strict DTD-driven validation — the baseline weblint defines itself
// against (paper §3.2): "Strict HTML validators are based on an SGML parser,
// and require a DTD to validate against. ... the warning and error messages
// are usually straight from the parser, and require a grounding in SGML to
// understand."
//
// This validator checks content models (which children each element may
// contain, whether character data is allowed), end-tag omissibility, and
// declared attributes — and, being strict, it does none of weblint's
// cascade-suppression: an unknown element errors at every occurrence, an
// unexpected end tag is reported and NOT recovered, omitted end tags error
// element-by-element. The benches (E3/E4) quantify the resulting contrast.
#ifndef WEBLINT_BASELINE_STRICT_VALIDATOR_H_
#define WEBLINT_BASELINE_STRICT_VALIDATOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "spec/spec.h"
#include "util/source_location.h"

namespace weblint {

struct ValidationError {
  SourceLocation location;
  std::string message;  // nsgmls-flavoured text.
};

struct ValidationResult {
  std::vector<ValidationError> errors;
  bool valid() const { return errors.empty(); }
};

class StrictValidator {
 public:
  // Validates against the given spec's element/attribute tables plus the
  // built-in HTML 4.0 content models.
  explicit StrictValidator(const HtmlSpec& spec);

  ValidationResult Validate(std::string_view html) const;

 private:
  const HtmlSpec& spec_;
};

}  // namespace weblint

#endif  // WEBLINT_BASELINE_STRICT_VALIDATOR_H_
