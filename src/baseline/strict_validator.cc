#include "baseline/strict_validator.h"

#include <map>
#include <set>

#include "html/tokenizer.h"
#include "util/strings.h"

namespace weblint {

namespace {

// Content model for one element: which children it admits.
struct ContentRule {
  bool pcdata = false;        // Character data allowed.
  bool inline_children = false;
  bool block_children = false;
  std::set<std::string, ILess> extra;  // Additional allowed child elements.
  bool exclusive = false;     // Only `extra` is allowed (ignore class flags).
};

const std::map<std::string, ContentRule, ILess>& ContentRules() {
  static const std::map<std::string, ContentRule, ILess> kRules = [] {
    std::map<std::string, ContentRule, ILess> rules;
    auto only = [&rules](std::string_view name, std::set<std::string, ILess> children,
                         bool pcdata = false) {
      ContentRule rule;
      rule.exclusive = true;
      rule.extra = std::move(children);
      rule.pcdata = pcdata;
      rules[std::string(name)] = std::move(rule);
    };
    auto inline_only = [&rules](std::string_view name) {
      ContentRule rule;
      rule.pcdata = true;
      rule.inline_children = true;
      rules[std::string(name)] = std::move(rule);
    };
    auto block_only = [&rules](std::string_view name,
                               std::set<std::string, ILess> extra = {}) {
      ContentRule rule;
      rule.block_children = true;
      rule.extra = std::move(extra);
      rules[std::string(name)] = std::move(rule);
    };
    auto flow = [&rules](std::string_view name) {
      ContentRule rule;
      rule.pcdata = true;
      rule.inline_children = true;
      rule.block_children = true;
      rules[std::string(name)] = std::move(rule);
    };

    only("html", {"head", "body", "frameset"});
    only("head",
         {"title", "base", "meta", "link", "style", "script", "isindex", "object"});
    block_only("body", {"script", "ins", "del", "isindex"});
    block_only("blockquote", {"script"});
    block_only("form", {"script"});
    only("ul", {"li"});
    only("ol", {"li"});
    only("dir", {"li"});
    only("menu", {"li"});
    only("dl", {"dt", "dd"});
    only("table", {"caption", "col", "colgroup", "thead", "tfoot", "tbody", "tr"});
    only("thead", {"tr"});
    only("tbody", {"tr"});
    only("tfoot", {"tr"});
    only("tr", {"td", "th"});
    only("colgroup", {"col"});
    only("select", {"optgroup", "option"});
    only("optgroup", {"option"});
    only("option", {}, /*pcdata=*/true);
    only("title", {}, /*pcdata=*/true);
    only("textarea", {}, /*pcdata=*/true);
    only("script", {}, /*pcdata=*/true);
    only("style", {}, /*pcdata=*/true);
    only("frameset", {"frameset", "frame", "noframes"});

    for (const char* name : {"p", "h1", "h2", "h3", "h4", "h5", "h6", "address", "legend",
                             "caption", "dt", "span", "a", "em", "strong", "dfn", "code",
                             "samp", "kbd", "var", "cite", "abbr", "acronym", "q", "sub",
                             "sup", "tt", "i", "b", "u", "s", "strike", "big", "small",
                             "font", "label", "pre", "bdo"}) {
      inline_only(name);
    }
    for (const char* name : {"div", "li", "dd", "td", "th", "object", "applet", "fieldset",
                             "noscript", "noframes", "iframe", "center", "ins", "del",
                             "button", "map"}) {
      flow(name);
    }
    return rules;
  }();
  return kRules;
}

// Default for elements without an explicit rule: flow content (lenient, so
// the strictness contrast comes from real rules, not gaps in the table).
const ContentRule& RuleFor(std::string_view lower_name) {
  static const ContentRule kFlowDefault = [] {
    ContentRule rule;
    rule.pcdata = true;
    rule.inline_children = true;
    rule.block_children = true;
    return rule;
  }();
  const auto& rules = ContentRules();
  const auto it = rules.find(std::string(lower_name));
  return it == rules.end() ? kFlowDefault : it->second;
}

struct OpenEntry {
  std::string lower;
  const ElementInfo* info;  // Null for unknown elements.
  SourceLocation location;
};

class Session {
 public:
  explicit Session(const HtmlSpec& spec) : spec_(spec) {}

  ValidationResult Run(std::string_view html) {
    Tokenizer tokenizer(html);
    Token token;
    bool first = true;
    while (tokenizer.Next(&token)) {
      if (first && token.kind != TokenKind::kText) {
        if (token.kind != TokenKind::kDoctype) {
          Error(token.location, "no document type declaration; validating against HTML 4.0");
        }
        first = false;
      }
      switch (token.kind) {
        case TokenKind::kStartTag:
          StartTag(token);
          break;
        case TokenKind::kEndTag:
          EndTag(token);
          break;
        case TokenKind::kText:
          Text(token);
          break;
        case TokenKind::kStrayLt:
          Error(token.location, "non-SGML character or markup delimiter in data");
          break;
        case TokenKind::kComment:
          if (token.unterminated_comment) {
            Error(token.location, "unterminated comment declaration");
          }
          break;
        default:
          break;
      }
    }
    const SourceLocation eof = tokenizer.location();
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->info == nullptr || it->info->end_tag == EndTag::kRequired) {
        Error(eof, StrFormat("end tag for \"%s\" omitted, but its declaration does not permit "
                             "this; document ended",
                             AsciiUpper(it->lower)));
      }
    }
    return std::move(result_);
  }

 private:
  void Error(SourceLocation location, std::string message) {
    result_.errors.push_back(ValidationError{location, std::move(message)});
  }

  bool Allowed(const OpenEntry& parent, const ElementInfo& child) const {
    if (parent.info == nullptr) {
      return true;  // Unknown parent: content model unknowable.
    }
    const ContentRule& rule = RuleFor(parent.lower);
    if (rule.extra.contains(child.name)) {
      return true;
    }
    if (rule.exclusive) {
      return false;
    }
    return (rule.inline_children && child.is_inline) || (rule.block_children && child.is_block);
  }

  void StartTag(const Token& token) {
    if (token.odd_quotes) {
      Error(token.location, "literal is missing closing delimiter");
    }
    const ElementInfo* info = spec_.Find(token.name);
    const std::string upper = AsciiUpper(token.name);
    if (info == nullptr) {
      // Strict: every occurrence is an error (no weblint-style dedup).
      Error(token.location, StrFormat("element \"%s\" undefined", upper));
      stack_.push_back(OpenEntry{AsciiLower(token.name), nullptr, token.location});
      return;
    }

    // Attribute declarations.
    for (const Attribute& attr : token.attributes) {
      if (attr.name.empty()) {
        continue;
      }
      const AttributeInfo* attr_info = info->FindAttribute(attr.name);
      if (attr_info == nullptr) {
        Error(attr.location, StrFormat("there is no attribute \"%s\" for element \"%s\"",
                                       AsciiUpper(attr.name), upper));
      } else if (attr.has_value && !attr.unterminated_quote && attr_info->HasPattern() &&
                 !attr_info->pattern.Matches(Trim(attr.value))) {
        Error(attr.location,
              StrFormat("value \"%s\" is not a member of a group specified for attribute "
                        "\"%s\" of element \"%s\"",
                        attr.value, AsciiUpper(attr.name), upper));
      }
    }
    for (const auto& [name, attr_info] : info->attributes) {
      if (!attr_info.required) {
        continue;
      }
      bool present = false;
      for (const Attribute& attr : token.attributes) {
        if (IEquals(attr.name, name)) {
          present = true;
          break;
        }
      }
      if (!present) {
        Error(token.location,
              StrFormat("required attribute \"%s\" not specified", AsciiUpper(name)));
      }
    }

    // Content model: omitted optional end tags are legitimate SGML — pop
    // them while that makes the child legal; anything else is an error.
    if (!stack_.empty()) {
      while (stack_.size() > 1 && !Allowed(stack_.back(), *info)) {
        const OpenEntry& top = stack_.back();
        if (top.info != nullptr && top.info->end_tag == EndTag::kOptional &&
            Allowed(stack_[stack_.size() - 2], *info)) {
          stack_.pop_back();
          continue;
        }
        break;
      }
      if (!stack_.empty() && !Allowed(stack_.back(), *info)) {
        Error(token.location,
              StrFormat("document type does not allow element \"%s\" here", upper));
      }
    }

    if (info->IsContainer()) {
      stack_.push_back(OpenEntry{info->name, info, token.location});
    }
  }

  void EndTag(const Token& token) {
    const std::string lower = AsciiLower(token.name);
    const std::string upper = AsciiUpper(token.name);
    const ElementInfo* info = spec_.Find(token.name);
    if (info != nullptr && info->end_tag == EndTag::kForbidden) {
      Error(token.location,
            StrFormat("end tag for \"%s\" which is declared EMPTY", upper));
      return;
    }
    for (size_t i = stack_.size(); i-- > 0;) {
      if (stack_[i].lower != lower) {
        continue;
      }
      // Pop everything above; required end tags error one by one — the
      // strict parser has no overlap heuristic.
      while (stack_.size() > i + 1) {
        const OpenEntry& top = stack_.back();
        if (top.info == nullptr || top.info->end_tag == EndTag::kRequired) {
          Error(token.location,
                StrFormat("end tag for \"%s\" omitted, but its declaration does not permit this",
                          AsciiUpper(top.lower)));
        }
        stack_.pop_back();
      }
      stack_.pop_back();
      return;
    }
    // Not open: error, no recovery — later structure keeps mismatching,
    // which is exactly the cascade weblint's secondary stack avoids.
    Error(token.location, StrFormat("end tag for \"%s\" which is not open", upper));
  }

  void Text(const Token& token) {
    if (token.raw_text || Trim(token.text).empty()) {
      return;
    }
    if (!stack_.empty() && !RuleFor(stack_.back().lower).pcdata &&
        stack_.back().info != nullptr) {
      Error(token.location, "character data is not allowed here");
    }
  }

  const HtmlSpec& spec_;
  std::vector<OpenEntry> stack_;
  ValidationResult result_;
};

}  // namespace

StrictValidator::StrictValidator(const HtmlSpec& spec) : spec_(spec) {}

ValidationResult StrictValidator::Validate(std::string_view html) const {
  Session session(spec_);
  return session.Run(html);
}

}  // namespace weblint
