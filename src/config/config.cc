#include "config/config.h"

#include <algorithm>

#include "plugins/css_checker.h"
#include "plugins/script_checker.h"
#include "spec/registry.h"
#include "util/digest.h"
#include "util/pattern.h"
#include "warnings/localization.h"
#include "util/file_io.h"
#include "util/strings.h"

namespace weblint {

namespace {

Result<Category> ParseCategory(std::string_view name) {
  if (IEquals(name, "error") || IEquals(name, "errors")) {
    return Category::kError;
  }
  if (IEquals(name, "warning") || IEquals(name, "warnings")) {
    return Category::kWarning;
  }
  if (IEquals(name, "style")) {
    return Category::kStyle;
  }
  return Fail("unknown category: " + std::string(name));
}

Status ApplyMessageList(std::string_view list, bool enable, Config* config) {
  for (std::string_view raw : Split(list, ',')) {
    const std::string_view id = Trim(raw);
    if (id.empty()) {
      continue;
    }
    const Status s = enable ? config->warnings.Enable(id) : config->warnings.Disable(id);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

Status ApplySet(std::string_view rest, Config* config) {
  const std::vector<std::string_view> parts = SplitWhitespace(rest);
  if (parts.empty()) {
    return Fail("'set' requires an option name");
  }
  const std::string_view option = parts[0];
  const std::string_view value =
      parts.size() > 1 ? Trim(rest.substr(rest.find(parts[1]))) : std::string_view();
  if (IEquals(option, "title-length")) {
    std::uint32_t n = 0;
    if (!ParseUint(value, &n) || n == 0) {
      return Fail("set title-length requires a positive integer");
    }
    config->max_title_length = n;
    return Status::Ok();
  }
  if (IEquals(option, "case")) {
    // Choosing a house style enables the matching style message and turns
    // the opposite one off.
    if (IEquals(value, "upper")) {
      config->case_style = CaseStyle::kUpper;
      config->warnings.Set("upper-case", true);
      config->warnings.Set("lower-case", false);
    } else if (IEquals(value, "lower")) {
      config->case_style = CaseStyle::kLower;
      config->warnings.Set("lower-case", true);
      config->warnings.Set("upper-case", false);
    } else if (IEquals(value, "any")) {
      config->case_style = CaseStyle::kAny;
      config->warnings.Set("upper-case", false);
      config->warnings.Set("lower-case", false);
    } else {
      return Fail("set case requires upper, lower, or any");
    }
    return Status::Ok();
  }
  if (IEquals(option, "index-files")) {
    config->index_files.clear();
    for (std::string_view name : Split(value, ',')) {
      const std::string_view trimmed = Trim(name);
      if (!trimmed.empty()) {
        config->index_files.emplace_back(trimmed);
      }
    }
    if (config->index_files.empty()) {
      return Fail("set index-files requires at least one file name");
    }
    return Status::Ok();
  }
  if (IEquals(option, "language")) {
    const std::string lang = AsciiLower(value);
    if (!IsKnownLanguage(lang)) {
      return Fail("unknown language: " + lang);
    }
    config->language = lang;
    return Status::Ok();
  }
  if (IEquals(option, "pragmas")) {
    if (IEquals(value, "on")) {
      config->enable_pragmas = true;
    } else if (IEquals(value, "off")) {
      config->enable_pragmas = false;
    } else {
      return Fail("set pragmas requires on or off");
    }
    return Status::Ok();
  }
  if (IEquals(option, "content-free")) {
    config->content_free_words.clear();
    for (std::string_view word : Split(value, ',')) {
      const std::string_view trimmed = Trim(word);
      if (!trimmed.empty()) {
        config->content_free_words.push_back(AsciiLower(trimmed));
      }
    }
    return Status::Ok();
  }
  return Fail("unknown option for 'set': " + std::string(option));
}

Status ApplyDirective(std::string_view line, Config* config) {
  const size_t space = line.find_first_of(" \t");
  const std::string_view keyword = space == std::string_view::npos ? line : line.substr(0, space);
  const std::string_view rest =
      space == std::string_view::npos ? std::string_view() : Trim(line.substr(space + 1));

  if (IEquals(keyword, "enable")) {
    return ApplyMessageList(rest, /*enable=*/true, config);
  }
  if (IEquals(keyword, "disable")) {
    return ApplyMessageList(rest, /*enable=*/false, config);
  }
  if (IEquals(keyword, "enable-category")) {
    auto category = ParseCategory(rest);
    if (!category.ok()) {
      return category.status();
    }
    config->warnings.EnableCategory(*category);
    return Status::Ok();
  }
  if (IEquals(keyword, "disable-category")) {
    auto category = ParseCategory(rest);
    if (!category.ok()) {
      return category.status();
    }
    config->warnings.DisableCategory(*category);
    return Status::Ok();
  }
  if (IEquals(keyword, "extension")) {
    const std::string name = AsciiLower(Trim(rest));
    if (name != "netscape" && name != "microsoft") {
      return Fail("unknown extension: " + name + " (expected netscape or microsoft)");
    }
    config->enabled_extensions.insert(name);
    return Status::Ok();
  }
  if (IEquals(keyword, "html-version")) {
    const std::string id = AsciiLower(Trim(rest));
    if (FindSpec(id) == nullptr) {
      return Fail("unknown HTML version: " + id);
    }
    config->spec_id = id;
    return Status::Ok();
  }
  if (IEquals(keyword, "set")) {
    return ApplySet(rest, config);
  }
  if (IEquals(keyword, "element")) {
    const auto parts = SplitWhitespace(rest);
    if (parts.size() < 2 ||
        (!IEquals(parts[1], "container") && !IEquals(parts[1], "empty"))) {
      return Fail("element requires: <name> container|empty [block|inline]");
    }
    Config::CustomElement element;
    element.name = AsciiLower(parts[0]);
    element.container = IEquals(parts[1], "container");
    if (parts.size() > 2) {
      if (IEquals(parts[2], "block")) {
        element.is_block = true;
      } else if (!IEquals(parts[2], "inline")) {
        return Fail("element placement must be block or inline");
      }
    }
    config->custom_elements.push_back(std::move(element));
    return Status::Ok();
  }
  if (IEquals(keyword, "plugin")) {
    const std::string name = AsciiLower(Trim(rest));
    for (const PluginPtr& plugin : config->plugins) {
      if (plugin->name() == name) {
        return Status::Ok();  // Already installed.
      }
    }
    if (name == "css") {
      config->plugins.push_back(std::make_shared<CssChecker>());
      return Status::Ok();
    }
    if (name == "script") {
      config->plugins.push_back(std::make_shared<ScriptChecker>());
      return Status::Ok();
    }
    return Fail("unknown plugin: " + name + " (expected css or script)");
  }
  if (IEquals(keyword, "attribute")) {
    const auto parts = SplitWhitespace(rest);
    if (parts.size() < 2) {
      return Fail("attribute requires: <element> <name> [pattern]");
    }
    Config::CustomAttribute attr;
    attr.element = AsciiLower(parts[0]);
    attr.name = AsciiLower(parts[1]);
    if (parts.size() > 2) {
      attr.pattern = std::string(parts[2]);
      if (!Pattern::Compile(attr.pattern).ok()) {
        return Fail("invalid pattern for attribute " + attr.name);
      }
    }
    config->custom_attributes.push_back(std::move(attr));
    return Status::Ok();
  }
  return Fail("unknown directive: " + std::string(keyword));
}

}  // namespace

std::uint64_t Config::Fingerprint() const {
  Digest64 d;

  // Message states in catalog order: the WarningSet's internal
  // representation (a set of flipped ids) never leaks into the digest, so
  // "disable X" layered over defaults and a set built any other way to the
  // same states fingerprint identically.
  d.Tag("warnings");
  for (const MessageInfo& info : AllMessages()) {
    d.AddBool(warnings.IsEnabled(info.id));
  }

  d.Tag("spec");
  d.AddString(spec_id);

  d.Tag("extensions");  // std::set: already sorted, order-stable.
  for (const std::string& extension : enabled_extensions) {
    d.AddString(extension);
  }

  d.Tag("title-length");
  d.AddUint32(max_title_length);

  d.Tag("content-free");
  for (const std::string& word : content_free_words) {
    d.AddString(word);
  }

  d.Tag("index-files");
  for (const std::string& file : index_files) {
    d.AddString(file);
  }

  d.Tag("link-base");
  d.AddString(link_base_directory);

  d.Tag("pragmas");
  d.AddBool(enable_pragmas);

  // Custom spec entries in declaration order — later directives can
  // override earlier ones, so order is semantic.
  d.Tag("elements");
  for (const CustomElement& element : custom_elements) {
    d.AddString(element.name);
    d.AddBool(element.container);
    d.AddBool(element.is_block);
  }
  d.Tag("attributes");
  for (const CustomAttribute& attribute : custom_attributes) {
    d.AddString(attribute.element);
    d.AddString(attribute.name);
    d.AddString(attribute.pattern);
  }

  // Plugins by name, sorted: installation order does not affect which
  // element each plugin claims.
  d.Tag("plugins");
  std::vector<std::string> plugin_names;
  plugin_names.reserve(plugins.size());
  for (const PluginPtr& plugin : plugins) {
    plugin_names.emplace_back(plugin->name());
  }
  std::sort(plugin_names.begin(), plugin_names.end());
  for (const std::string& name : plugin_names) {
    d.AddString(name);
  }

  d.Tag("case");
  d.AddUint32(static_cast<std::uint32_t>(case_style));

  d.Tag("language");
  d.AddString(language);

  return d.Finish();
}

Status ApplyRcText(std::string_view text, std::string_view source_name, Config* config) {
  size_t line_number = 0;
  for (std::string_view raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = raw_line;
    if (const size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    if (Status s = ApplyDirective(line, config); !s.ok()) {
      return Fail(StrFormat("%s:%d: %s", source_name, line_number, s.message()));
    }
  }
  return Status::Ok();
}

Status LoadRcFile(const std::string& path, Config* config) {
  if (!FileExists(path)) {
    return Status::Ok();
  }
  auto content = ReadFile(path);
  if (!content.ok()) {
    return content.status();
  }
  return ApplyRcText(*content, path, config);
}

Status LoadStandardConfig(const std::string& site_path, const std::string& user_path,
                          Config* config) {
  if (!site_path.empty()) {
    if (Status s = LoadRcFile(site_path, config); !s.ok()) {
      return s;
    }
  }
  if (!user_path.empty()) {
    if (Status s = LoadRcFile(user_path, config); !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

}  // namespace weblint
