// Weblint configuration (paper §4.4).
//
// "There are three ways to provide configuration information for weblint: a
// site configuration file ..., a user configuration file, .weblintrc on Unix
// systems ..., command-line switches, which over-ride both configuration
// files." Precedence is realised by application order: site file first, then
// user file, then switches — later directives override earlier ones.
#ifndef WEBLINT_CONFIG_CONFIG_H_
#define WEBLINT_CONFIG_CONFIG_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "plugins/plugin.h"
#include "util/result.h"
#include "warnings/emitter.h"
#include "warnings/warning_set.h"

namespace weblint {

// Case style enforced by the upper-case / lower-case style messages. The
// messages are both off by default; enabling one picks the house style.
enum class CaseStyle {
  kAny,
  kUpper,
  kLower,
};

struct Config {
  // Which messages are enabled (paper §4.3: identifiers, defaults).
  WarningSet warnings;

  // HTML version to check against ("By default ... HTML 4.0").
  std::string spec_id = "html40";

  // Vendor extension sets the user has opted into (weblint -x netscape):
  // extension elements/attributes from these origins no longer warn.
  std::set<std::string, std::less<>> enabled_extensions;

  // Output format for the CLI/gateway.
  OutputStyle output_style = OutputStyle::kTraditional;

  // Tunables ("Much greater configurability", paper §6.1).
  std::uint32_t max_title_length = 64;
  // Anchor texts considered content-free by here-anchor. Matched
  // case-insensitively after whitespace collapsing.
  std::vector<std::string> content_free_words = {"here", "click here", "this", "click",
                                                 "click here!"};
  // Index file names accepted by the -R directory-index check.
  std::vector<std::string> index_files = {"index.html", "index.htm"};

  // Base directory for resolving relative link targets (bad-link). Empty
  // means the directory of the file being checked.
  std::string link_base_directory;

  // Site checking (-R): recurse into directories, run site-level checks.
  bool recurse = false;

  // Parallel lint jobs for whole-site work (-j): the site checker and the
  // poacher robot fan per-page checks across this many workers. 0 = one per
  // hardware thread; 1 = the serial path. Reports and streamed output are
  // deterministic (submit order) for every value.
  std::uint32_t jobs = 0;

  // Honour `<!-- weblint: enable|disable|on|off ... -->` pragmas embedded in
  // the page (paper §6.1). Sites that cannot trust page authors turn this
  // off ("set pragmas off").
  bool enable_pragmas = true;

  // Custom elements and attributes (paper §6.1 "custom elements and
  // attributes"): merged into the HTML version tables before checking.
  struct CustomElement {
    std::string name;          // Lowercase.
    bool container = true;     // false: EMPTY element (no end tag).
    bool is_block = false;     // Default: inline.
  };
  struct CustomAttribute {
    std::string element;  // Lowercase element the attribute belongs to.
    std::string name;     // Lowercase.
    std::string pattern;  // Legal-value pattern; empty = any value.
  };
  std::vector<CustomElement> custom_elements;
  std::vector<CustomAttribute> custom_attributes;

  // Content plugins (paper §6.1): each claims one element's raw content
  // (STYLE -> CSS checker, SCRIPT -> script checker). Installed directly or
  // via the "plugin <name>" rc directive.
  std::vector<PluginPtr> plugins;

  // Case style for tag names; only meaningful when upper-case/lower-case
  // messages are enabled.
  CaseStyle case_style = CaseStyle::kAny;

  // Message language (paper §6.1 i18n). "en" is the catalog itself;
  // translated catalogs fall back to English for untranslated ids.
  std::string language = "en";

  // Content-addressed lint-result cache (src/cache). These shape where
  // results are remembered, never what is reported, so none of them is part
  // of Fingerprint().
  bool use_cache = true;               // --no-cache turns the cache off.
  std::uint32_t cache_capacity = 4096; // In-memory entries across all shards.
  std::string cache_dir;               // --cache-dir: persistent tier; "" = memory only.
  bool cache_stats = false;            // --cache-stats: print CacheStats after the run.

  // Fetch robustness (src/net FetchPolicy; see DESIGN.md "Robustness &
  // fault injection"). Like the cache settings these are execution-shape —
  // they bound what a retrieval may cost, never what a retrieved page
  // reports — so they are excluded from Fingerprint().
  std::uint32_t fetch_timeout_ms = 15000;     // --fetch-timeout: total deadline per page.
  std::uint32_t fetch_retries = 2;            // --fetch-retries: attempts beyond the first.
  std::uint64_t max_fetch_bytes = 8u << 20;   // --max-fetch-bytes: response body cap.
  std::uint32_t max_redirects = 5;            // --max-redirects: hop limit per retrieval.
  std::uint64_t fetch_jitter_seed = 1;        // Deterministic retry-backoff jitter.
  bool fetch_stats = false;                   // --fetch-stats: print FetchStats after a crawl.

  // A stable digest of every option that can change the diagnostics a
  // document produces: the per-message enable/disable states (in catalog
  // order), spec id, extensions, tunables, custom elements/attributes,
  // installed plugins (by name), case style, and language. Two configs with
  // the same fingerprint lint any document identically, however they were
  // built (defaults, rc file, or CLI switches). Execution-shape options
  // (output_style, jobs, recurse, cache settings) are deliberately
  // excluded: they do not affect what a LintReport contains.
  std::uint64_t Fingerprint() const;
};

// Applies rc-file directives from `text` to `config`, in order. Directive
// syntax (one per line, '#' comments):
//
//   enable <id>[, <id>...]          enable messages
//   disable <id>[, <id>...]         disable messages
//   enable-category <cat>           error | warning | style  (weblint 2)
//   disable-category <cat>
//   extension <name>                netscape | microsoft
//   html-version <id>               html40 | html32
//   set title-length <n>
//   set case <upper|lower|any>
//   set index-files <name>[,<name>...]
//   set content-free <word>[,<word>...]
//   set pragmas <on|off>            honour in-page weblint pragmas
//   set language <en|fr|de>         message language
//   element <name> <container|empty> [block|inline]
//   attribute <element> <name> [pattern]
//   plugin <css|script>             install a content plugin
//
// `source_name` is used in error messages. Unknown directives or message ids
// fail, naming the offending line.
Status ApplyRcText(std::string_view text, std::string_view source_name, Config* config);

// Reads and applies an rc file. A missing file is not an error (weblint
// silently skips absent config files); unreadable or invalid content fails.
Status LoadRcFile(const std::string& path, Config* config);

// Loads the standard layering: `site_path` (if non-empty), then `user_path`
// (if non-empty). Either may be absent on disk.
Status LoadStandardConfig(const std::string& site_path, const std::string& user_path,
                          Config* config);

}  // namespace weblint

#endif  // WEBLINT_CONFIG_CONFIG_H_
