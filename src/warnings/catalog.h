// The weblint message catalog (paper §4.3).
//
// "Weblint 1.020 supports 50 different output messages, 42 of which are
// enabled by default. ... There are three categories of output message:
// Errors, Warnings, and Style comments." This catalog reproduces those
// statistics plus one addition: 51 messages, 43 enabled by default, in the three
// categories. "All output messages have an identifier, which is used when
// enabling or disabling it."
#ifndef WEBLINT_WARNINGS_CATALOG_H_
#define WEBLINT_WARNINGS_CATALOG_H_

#include <cstddef>
#include <span>
#include <string_view>

namespace weblint {

// Paper §4.3: "Errors ... identify things you should fix. Warnings ...
// identify things you should think about fixing. Style comments ... can be
// configured to match your own guidelines."
enum class Category {
  kError,
  kWarning,
  kStyle,
};

std::string_view CategoryName(Category category);

struct MessageInfo {
  std::string_view id;        // Stable identifier (enable/disable key).
  Category category = Category::kWarning;
  bool default_enabled = true;
  std::string_view format;       // printf-lite template (util/strings.h Format).
  std::string_view description;  // One-line documentation.
};

// All catalog messages, ordered Error, Warning, Style; alphabetical within
// a category.
std::span<const MessageInfo> AllMessages();

// Looks up a message by identifier; nullptr when unknown.
const MessageInfo* FindMessage(std::string_view id);

// Catalog statistics (asserted by tests against the paper's figures).
size_t MessageCount();                       // 50
size_t DefaultEnabledCount();                // 42
size_t CategoryCount(Category category);

}  // namespace weblint

#endif  // WEBLINT_WARNINGS_CATALOG_H_
