#include "warnings/warning_set.h"

namespace weblint {

WarningSet::WarningSet() = default;

WarningSet::WarningSet(bool enable_all) {
  for (const MessageInfo& info : AllMessages()) {
    if (info.default_enabled != enable_all) {
      flipped_.emplace(info.id);
    }
  }
}

WarningSet WarningSet::AllEnabled() { return WarningSet(true); }

WarningSet WarningSet::NoneEnabled() { return WarningSet(false); }

Status WarningSet::Enable(std::string_view id) {
  const MessageInfo* info = FindMessage(id);
  if (info == nullptr) {
    return Fail("unknown warning identifier: " + std::string(id));
  }
  Set(id, true);
  return Status::Ok();
}

Status WarningSet::Disable(std::string_view id) {
  const MessageInfo* info = FindMessage(id);
  if (info == nullptr) {
    return Fail("unknown warning identifier: " + std::string(id));
  }
  Set(id, false);
  return Status::Ok();
}

void WarningSet::Set(std::string_view id, bool enabled) {
  const MessageInfo* info = FindMessage(id);
  if (info == nullptr) {
    return;
  }
  if (info->default_enabled == enabled) {
    if (const auto it = flipped_.find(id); it != flipped_.end()) {
      flipped_.erase(it);
    }
  } else {
    flipped_.emplace(id);
  }
}

void WarningSet::EnableCategory(Category category) {
  for (const MessageInfo& info : AllMessages()) {
    if (info.category == category) {
      Set(info.id, true);
    }
  }
}

void WarningSet::DisableCategory(Category category) {
  for (const MessageInfo& info : AllMessages()) {
    if (info.category == category) {
      Set(info.id, false);
    }
  }
}

bool WarningSet::IsEnabled(std::string_view id) const {
  const MessageInfo* info = FindMessage(id);
  if (info == nullptr) {
    return false;
  }
  const bool flipped = flipped_.find(id) != flipped_.end();
  return info->default_enabled != flipped;
}

size_t WarningSet::EnabledCount() const {
  size_t count = 0;
  for (const MessageInfo& info : AllMessages()) {
    if (IsEnabled(info.id)) {
      ++count;
    }
  }
  return count;
}

}  // namespace weblint
