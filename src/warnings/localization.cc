#include "warnings/localization.h"

#include "util/strings.h"

namespace weblint {

namespace {

struct Translation {
  std::string_view id;
  std::string_view format;
};

// French: complete (all 51 messages).
constexpr Translation kFrench[] = {
    {"attribute-value", "valeur illégale pour l'attribut %s de %s (%s)"},
    {"element-overlap",
     "</%s> à la ligne %s semble chevaucher <%s>, ouvert à la ligne %s."},
    {"head-element", "<%s> ne peut apparaître que dans l'élément HEAD"},
    {"heading-mismatch",
     "titre mal formé - la balise ouvrante est <%s>, mais la fermante est </%s>"},
    {"html-outer", "les balises extérieures devraient être <HTML> .. </HTML>"},
    {"illegal-closing", "</%s> n'est pas légal -- <%s> n'est pas un élément conteneur"},
    {"odd-quotes", "nombre impair de guillemets dans l'élément <%s>"},
    {"once-only",
     "la balise <%s> ne devrait apparaître qu'une seule fois ; vue d'abord à la ligne %s"},
    {"require-head", "aucun élément <HEAD> trouvé"},
    {"require-title", "pas de <TITLE> dans l'élément HEAD"},
    {"required-attribute", "l'attribut %s est obligatoire pour l'élément <%s>"},
    {"unclosed-element", "aucune balise fermante </%s> vue pour <%s> à la ligne %s"},
    {"unknown-attribute", "attribut \"%s\" inconnu pour l'élément <%s>"},
    {"unknown-element", "élément inconnu <%s>%s"},
    {"unmatched-close", "</%s> sans correspondance (aucun <%s> vu)"},
    {"attribute-delimiter",
     "l'emploi de ' comme délimiteur pour la valeur de l'attribut %s de l'élément %s n'est pas "
     "supporté par tous les navigateurs"},
    {"bad-link", "cible \"%s\" du lien introuvable"},
    {"body-colors",
     "BODY définit %s mais pas %s -- des couleurs partielles peuvent entrer en conflit avec les "
     "réglages de l'utilisateur"},
    {"closing-attribute", "la balise fermante </%s> ne devrait pas porter d'attributs"},
    {"deprecated-attribute", "l'attribut %s de l'élément %s est déconseillé"},
    {"deprecated-element", "<%s> est déconseillé%s"},
    {"empty-container", "élément conteneur <%s> vide"},
    {"extension-attribute", "l'attribut %s de l'élément %s est une extension (%s)"},
    {"extension-markup", "<%s> est du balisage étendu (%s), peu largement supporté"},
    {"img-alt", "IMG n'a pas de texte ALT défini"},
    {"img-size",
     "IMG n'a pas d'attributs WIDTH et HEIGHT -- les définir aide les navigateurs à mettre la "
     "page en place plus tôt"},
    {"implied-element", "<%s> ne peut apparaître que dans %s -- ouverture de <%s> implicite"},
    {"invalid-utf8",
     "le texte n'est pas de l'UTF-8 valide -- séquence d'octets mal formée"},
    {"malformed-comment", "commentaire mal formé : %s"},
    {"markup-in-comment", "du balisage dans un commentaire peut troubler certains navigateurs"},
    {"must-follow", "<%s> doit suivre immédiatement %s"},
    {"nested-comment",
     "les commentaires ne peuvent pas être imbriqués -- \"<!--\" vu dans un commentaire"},
    {"nested-element",
     "<%s> ne peut pas être imbriqué -- </%s> pas encore vu pour le <%s> de la ligne %s"},
    {"quote-attribute-value",
     "la valeur de l'attribut %s (%s) de l'élément %s devrait être entre guillemets "
     "(c.-à-d. %s=\"%s\")"},
    {"repeated-attribute", "l'attribut %s est répété dans l'élément <%s>"},
    {"require-doctype", "le premier élément n'était pas une spécification DOCTYPE"},
    {"required-context", "contexte illégal pour <%s> -- doit apparaître dans %s"},
    {"spurious-slash", "usage curieux de '/' dans l'élément <%s>"},
    {"table-summary",
     "TABLE n'a pas d'attribut SUMMARY -- les résumés aident les navigateurs non visuels"},
    {"title-length",
     "TITLE dépasse %s caractères -- beaucoup de navigateurs et moteurs de recherche tronquent "
     "les titres"},
    {"unexpected-open", "'<' inattendu dans le texte -- faut-il l'écrire &lt; ?"},
    {"unknown-entity", "référence d'entité inconnue &%s;"},
    {"unterminated-entity", "la référence d'entité &%s n'a pas le ';' final"},
    {"container-whitespace", "espace %s dans le contenu de l'élément conteneur <%s>"},
    {"directory-index", "le répertoire %s n'a pas de fichier d'index (%s)"},
    {"heading-in-anchor", "titre <%s> dans une ancre -- l'ancre devrait être placée dans le titre"},
    {"here-anchor", "texte d'ancre sans contenu \"%s\" -- utilisez un libellé parlant"},
    {"lower-case", "la balise <%s> n'est pas en minuscules"},
    {"orphan-page", "la page %s n'est référencée par aucune autre page vérifiée"},
    {"physical-font",
     "<%s> est du balisage de police physique -- préférez le balisage logique (p. ex. <%s>)"},
    {"upper-case", "la balise <%s> n'est pas en majuscules"},
};

// German: partial, demonstrating per-id fallback to English.
constexpr Translation kGerman[] = {
    {"empty-container", "leeres Container-Element <%s>"},
    {"heading-mismatch",
     "fehlerhafte Überschrift - öffnende Marke ist <%s>, schließende aber </%s>"},
    {"odd-quotes", "ungerade Anzahl von Anführungszeichen im Element <%s>"},
    {"require-doctype", "das erste Element war keine DOCTYPE-Angabe"},
    {"unclosed-element", "kein schließendes </%s> für <%s> aus Zeile %s gefunden"},
    {"unknown-attribute", "unbekanntes Attribut \"%s\" für Element <%s>"},
    {"unknown-element", "unbekanntes Element <%s>%s"},
};

struct LanguageTable {
  std::string_view language;
  const Translation* translations;
  size_t count;
};

constexpr LanguageTable kLanguages[] = {
    {"fr", kFrench, sizeof(kFrench) / sizeof(kFrench[0])},
    {"de", kGerman, sizeof(kGerman) / sizeof(kGerman[0])},
};

const LanguageTable* FindLanguage(std::string_view language) {
  for (const LanguageTable& table : kLanguages) {
    if (IEquals(table.language, language)) {
      return &table;
    }
  }
  return nullptr;
}

}  // namespace

std::string_view LocalizedFormat(std::string_view language, std::string_view id) {
  const LanguageTable* table = FindLanguage(language);
  if (table == nullptr) {
    return {};
  }
  for (size_t i = 0; i < table->count; ++i) {
    if (table->translations[i].id == id) {
      return table->translations[i].format;
    }
  }
  return {};
}

std::vector<std::string_view> AvailableLanguages() { return {"en", "fr", "de"}; }

bool IsKnownLanguage(std::string_view language) {
  return IEquals(language, "en") || FindLanguage(language) != nullptr;
}

size_t TranslationCount(std::string_view language) {
  const LanguageTable* table = FindLanguage(language);
  return table == nullptr ? 0 : table->count;
}

}  // namespace weblint
