#include "warnings/emitter.h"

#include "util/strings.h"

namespace weblint {

std::string FormatDiagnostic(const Diagnostic& diagnostic, OutputStyle style) {
  const bool located = diagnostic.location.valid();
  switch (style) {
    case OutputStyle::kShort:
      if (!located) {
        return diagnostic.message;
      }
      return StrFormat("line %d: %s", diagnostic.location.line, diagnostic.message);
    case OutputStyle::kVerbose: {
      std::string out = FormatDiagnostic(diagnostic, OutputStyle::kTraditional);
      const MessageInfo* info = FindMessage(diagnostic.message_id);
      out += StrFormat(" [%s/%s]", CategoryName(diagnostic.category), diagnostic.message_id);
      if (info != nullptr) {
        out += StrFormat("\n    %s", info->description);
      }
      return out;
    }
    case OutputStyle::kTraditional:
    default:
      if (!located) {
        return StrFormat("%s: %s", diagnostic.file, diagnostic.message);
      }
      return StrFormat("%s(%d): %s", diagnostic.file, diagnostic.location.line,
                       diagnostic.message);
  }
}

void StreamEmitter::Emit(const Diagnostic& diagnostic) {
  out_ << FormatDiagnostic(diagnostic, style_) << '\n';
  ++count_;
}

}  // namespace weblint
