// Localized message catalogs (paper §6.1: "Internationalisation and
// localisation. Masayasu Ishikawa has done a lot of work in this area,
// which is being folded into Weblint 2").
//
// Each language provides translated format templates keyed by message id.
// Lookup falls back to the English catalog text for untranslated ids, so a
// partial translation is usable immediately. Argument placeholders (%s)
// must match the English template one-for-one (enforced by tests).
#ifndef WEBLINT_WARNINGS_LOCALIZATION_H_
#define WEBLINT_WARNINGS_LOCALIZATION_H_

#include <string_view>
#include <vector>

namespace weblint {

// The translated format for (language, id); empty when the language is
// unknown or the id untranslated (caller falls back to the English format).
std::string_view LocalizedFormat(std::string_view language, std::string_view id);

// Languages with translations ("en" is the catalog itself).
std::vector<std::string_view> AvailableLanguages();
bool IsKnownLanguage(std::string_view language);

// Number of translated messages for a language (0 for unknown / "en").
size_t TranslationCount(std::string_view language);

}  // namespace weblint

#endif  // WEBLINT_WARNINGS_LOCALIZATION_H_
