// Enable/disable state over the message catalog (paper §4.3/§4.4).
//
// "everything in weblint can be turned off" — the set starts from the
// catalog defaults and is adjusted by the site config file, the user config
// file, and command-line switches, in that order. Weblint 2's category-level
// toggles ("Weblint 2 will let users enable and disable all messages of a
// given category") are provided too.
#ifndef WEBLINT_WARNINGS_WARNING_SET_H_
#define WEBLINT_WARNINGS_WARNING_SET_H_

#include <set>
#include <string>
#include <string_view>

#include "util/result.h"
#include "warnings/catalog.h"

namespace weblint {

class WarningSet {
 public:
  // Starts from the catalog's default_enabled flags (42 of 50 on).
  WarningSet();

  static WarningSet AllEnabled();
  static WarningSet NoneEnabled();

  // Enable/disable one message by identifier. Unknown ids fail (weblint
  // reports a bad -e/-d argument rather than ignoring it).
  Status Enable(std::string_view id);
  Status Disable(std::string_view id);
  // Sets a message without validity checking (used when merging configs
  // whose ids were validated at parse time).
  void Set(std::string_view id, bool enabled);

  // Weblint 2 feature: toggle a whole category.
  void EnableCategory(Category category);
  void DisableCategory(Category category);

  bool IsEnabled(std::string_view id) const;
  size_t EnabledCount() const;

 private:
  explicit WarningSet(bool enable_all);
  // Messages whose state differs from default_enabled. Everything else
  // follows the catalog default.
  std::set<std::string, std::less<>> flipped_;
};

}  // namespace weblint

#endif  // WEBLINT_WARNINGS_WARNING_SET_H_
