#include "warnings/catalog.h"

#include <algorithm>

namespace weblint {

namespace {

// 51 messages, 43 enabled by default (the weblint 1.020 figures from paper
// §4.3). Ordered by category (Error, Warning, Style), then by id. "If a
// message seems esoteric or overly pedantic (I love 'em!), it will be
// disabled by default" — the 8 disabled entries are the pedantic/expensive
// ones (bad-link, img-size, title-length, ...) and the mutually exclusive
// case-style pair.
constexpr MessageInfo kMessages[] = {
    // ----- Errors: things you should fix ---------------------------------
    {"attribute-value", Category::kError, true,
     "illegal value for %s attribute of %s (%s)",
     "An attribute has a value outside the legal set for this element."},
    {"element-overlap", Category::kError, true,
     "</%s> on line %s seems to overlap <%s>, opened on line %s.",
     "Elements overlap instead of nesting (e.g. <B><A>..</B>..</A>)."},
    {"head-element", Category::kError, true,
     "<%s> can only appear in the HEAD element",
     "A HEAD-only element (TITLE, BASE, META, ...) appeared in the BODY."},
    {"heading-mismatch", Category::kError, true,
     "malformed heading - open tag is <%s>, but closing is </%s>",
     "A heading was opened at one level and closed at another (<H1>..</H2>)."},
    {"html-outer", Category::kError, true,
     "outer tags should be <HTML> .. </HTML>",
     "The outermost element of the document is not HTML."},
    {"illegal-closing", Category::kError, true,
     "</%s> is not legal -- <%s> is not a container element",
     "A closing tag was given for an element with a forbidden end tag (IMG, BR, HR...)."},
    {"odd-quotes", Category::kError, true,
     "odd number of quotes in element <%s>",
     "A tag contains an unbalanced quote character, usually an unterminated attribute value."},
    {"once-only", Category::kError, true,
     "tag <%s> should only appear once; it was first seen on line %s",
     "An element that may appear only once (TITLE, HEAD, BODY, HTML) was repeated."},
    {"require-head", Category::kError, true,
     "no <HEAD> element found",
     "The document has no HEAD section."},
    {"require-title", Category::kError, true,
     "no <TITLE> in HEAD element",
     "The HEAD does not contain a TITLE element."},
    {"required-attribute", Category::kError, true,
     "the %s attribute is required for the <%s> element",
     "A required attribute is missing (e.g. ROWS and COLS for TEXTAREA)."},
    {"unclosed-element", Category::kError, true,
     "no closing </%s> seen for <%s> on line %s",
     "A container element requiring a close tag was never closed."},
    {"unknown-attribute", Category::kError, true,
     "unknown attribute \"%s\" for element <%s>",
     "An attribute is not defined for this element in the selected HTML version."},
    {"unknown-element", Category::kError, true,
     "unknown element <%s>%s",
     "An element is not defined in the selected HTML version (often a mis-typed name)."},
    {"unmatched-close", Category::kError, true,
     "unmatched </%s> (no matching <%s> seen)",
     "A closing tag appeared with no corresponding open element."},

    // ----- Warnings: things you should think about fixing ----------------
    {"attribute-delimiter", Category::kWarning, true,
     "use of ' as a delimiter for the value of attribute %s of element %s is not supported by "
     "all browsers",
     "Single-quoted attribute values are legal but poorly supported by older clients."},
    {"bad-link", Category::kWarning, false,
     "target \"%s\" for link not found",
     "A relative link target does not exist (local files only)."},
    {"body-colors", Category::kWarning, false,
     "BODY sets %s but not %s -- partial colour settings can clash with user defaults",
     "If any of BGCOLOR/TEXT/LINK/VLINK/ALINK is set on BODY, all should be."},
    {"closing-attribute", Category::kWarning, true,
     "closing tag </%s> should not have any attributes specified",
     "End tags must not carry attributes."},
    {"deprecated-attribute", Category::kWarning, true,
     "attribute %s of element %s is deprecated",
     "The attribute is deprecated in the selected HTML version."},
    {"deprecated-element", Category::kWarning, true,
     "<%s> is deprecated%s",
     "The element is deprecated (e.g. use <PRE> in place of <LISTING>)."},
    {"empty-container", Category::kWarning, true,
     "empty container element <%s>",
     "A container element has no content."},
    {"extension-attribute", Category::kWarning, true,
     "attribute %s of element %s is an extension (%s)",
     "The attribute is a vendor extension, not part of the base HTML version."},
    {"extension-markup", Category::kWarning, true,
     "<%s> is extended markup (%s), and is not widely supported",
     "The element is a vendor extension (Netscape / Microsoft)."},
    {"img-alt", Category::kWarning, true,
     "IMG does not have ALT text defined",
     "Images should carry ALT text for text-only browsers and robots."},
    {"img-size", Category::kWarning, false,
     "IMG does not have WIDTH and HEIGHT attributes -- setting them helps browsers lay out the "
     "page sooner",
     "WIDTH/HEIGHT on IMG let browsers lay out the page before the image loads."},
    {"implied-element", Category::kWarning, true,
     "<%s> can only appear inside %s -- opening <%s> implied",
     "An element appeared outside its container; the container was assumed (e.g. LI outside UL)."},
    {"invalid-utf8", Category::kWarning, true,
     "text is not valid UTF-8 -- malformed byte sequence",
     "A text or comment run contains bytes that do not form well-formed UTF-8 "
     "(overlong encoding, bare continuation byte, surrogate, or truncated sequence). "
     "Reported once per document, at the first malformed sequence."},
    {"malformed-comment", Category::kWarning, true,
     "malformed comment: %s",
     "A comment is syntactically malformed (unterminated, or odd close sequence)."},
    {"markup-in-comment", Category::kWarning, true,
     "markup embedded in a comment can confuse some browsers",
     "Commented-out markup is legal but mis-parsed by quick-and-dirty parsers."},
    {"must-follow", Category::kWarning, true,
     "<%s> must immediately follow %s",
     "Element ordering constraint violated (e.g. BODY before HEAD)."},
    {"nested-comment", Category::kWarning, true,
     "comments cannot be nested -- \"<!--\" seen inside a comment",
     "A comment open sequence appeared inside a comment."},
    {"nested-element", Category::kWarning, true,
     "<%s> cannot be nested -- </%s> not yet seen for the <%s> on line %s",
     "An element that may not contain itself was nested (e.g. <A> inside <A>)."},
    {"quote-attribute-value", Category::kWarning, true,
     "value for attribute %s (%s) of element %s should be quoted (i.e. %s=\"%s\")",
     "Attribute values containing non-name characters should be quoted."},
    {"repeated-attribute", Category::kWarning, true,
     "attribute %s is repeated in element <%s>",
     "The same attribute is given more than once in a single tag."},
    {"require-doctype", Category::kWarning, true,
     "first element was not DOCTYPE specification",
     "Documents should open with a <!DOCTYPE ...> specification."},
    {"required-context", Category::kWarning, true,
     "illegal context for <%s> -- must appear inside %s",
     "An element appeared outside its required context (e.g. INPUT outside FORM)."},
    {"spurious-slash", Category::kWarning, true,
     "odd use of '/' in element <%s>",
     "A '/' appeared in a tag where HTML does not allow one (XML-style empty tag, typo)."},
    {"table-summary", Category::kWarning, true,
     "TABLE does not have a SUMMARY attribute -- summaries help non-visual browsers",
     "Summary annotations make tables accessible to speech-generating clients."},
    {"title-length", Category::kWarning, false,
     "TITLE is longer than %s characters -- many browsers and search engines truncate titles",
     "Over-long titles are truncated by browsers and search engines."},
    {"unexpected-open", Category::kWarning, true,
     "unexpected '<' in text -- should it be escaped as &lt;?",
     "A literal '<' appeared in character data."},
    {"unknown-entity", Category::kWarning, true,
     "unknown entity reference &%s;",
     "An entity reference does not name an HTML 4.0 entity."},
    {"unterminated-entity", Category::kWarning, true,
     "entity reference &%s is missing the closing ';'",
     "An entity reference is not terminated by a semicolon."},

    // ----- Style comments: configure to match your guidelines ------------
    {"container-whitespace", Category::kStyle, true,
     "%s whitespace in content of container element <%s>",
     "Leading/trailing whitespace inside an anchor renders unpredictably."},
    {"directory-index", Category::kStyle, true,
     "directory %s does not have an index file (%s)",
     "With -R: each directory of a site should have an index page."},
    {"heading-in-anchor", Category::kStyle, true,
     "heading <%s> inside anchor -- the anchor should go inside the heading",
     "Prefer <H1><A>...</A></H1> over <A><H1>...</H1></A>."},
    {"here-anchor", Category::kStyle, false,
     "content-free anchor text \"%s\" -- use meaningful link text instead",
     "Anchor text like \"here\" carries no information; search engines use anchor text."},
    {"lower-case", Category::kStyle, false,
     "tag <%s> is not in lower case",
     "House style: element names should be lower case."},
    {"orphan-page", Category::kStyle, true,
     "page %s is not linked to by any other page checked",
     "With -R: the page is not referred to by any other page on the site."},
    {"physical-font", Category::kStyle, false,
     "<%s> is physical font markup -- use logical markup instead (e.g. <%s>)",
     "Prefer logical markup (STRONG, EM) to physical markup (B, I)."},
    {"upper-case", Category::kStyle, false,
     "tag <%s> is not in upper case",
     "House style: element names should be upper case."},
};

constexpr size_t kMessageCount = sizeof(kMessages) / sizeof(kMessages[0]);

}  // namespace

std::string_view CategoryName(Category category) {
  switch (category) {
    case Category::kError:
      return "error";
    case Category::kWarning:
      return "warning";
    case Category::kStyle:
      return "style";
  }
  return "unknown";
}

std::span<const MessageInfo> AllMessages() { return {kMessages, kMessageCount}; }

const MessageInfo* FindMessage(std::string_view id) {
  for (const MessageInfo& info : kMessages) {
    if (info.id == id) {
      return &info;
    }
  }
  return nullptr;
}

size_t MessageCount() { return kMessageCount; }

size_t DefaultEnabledCount() {
  return static_cast<size_t>(std::count_if(std::begin(kMessages), std::end(kMessages),
                                           [](const MessageInfo& m) { return m.default_enabled; }));
}

size_t CategoryCount(Category category) {
  return static_cast<size_t>(
      std::count_if(std::begin(kMessages), std::end(kMessages),
                    [category](const MessageInfo& m) { return m.category == category; }));
}

}  // namespace weblint
