#include "net/timer_wheel.h"

#include <algorithm>
#include <utility>

namespace weblint {

TimerWheel::TimerWheel(std::uint64_t tick_micros, std::size_t slots)
    : tick_micros_(tick_micros == 0 ? 1 : tick_micros),
      slots_(slots == 0 ? 1 : slots) {}

std::size_t TimerWheel::SlotFor(std::uint64_t deadline_micros) const {
  std::uint64_t tick = deadline_micros / tick_micros_;
  // A deadline behind the cursor would hash to a slot the scan may never
  // revisit; clamp it to the cursor tick so the next Advance() sees it.
  if (advanced_once_ && tick < cursor_tick_) tick = cursor_tick_;
  return static_cast<std::size_t>(tick % slots_.size());
}

std::uint64_t TimerWheel::Add(std::uint64_t deadline_micros,
                              std::function<void()> callback) {
  const std::uint64_t id = next_id_++;
  const std::size_t slot = SlotFor(deadline_micros);
  slots_[slot].push_back(Entry{id, deadline_micros, std::move(callback)});
  live_.emplace(id, slot);
  deadlines_.push(HeapItem{deadline_micros, id});
  return id;
}

bool TimerWheel::Cancel(std::uint64_t id) {
  const auto it = live_.find(id);
  if (it != live_.end()) {
    std::vector<Entry>& slot = slots_[it->second];
    for (std::size_t i = 0; i < slot.size(); ++i) {
      if (slot[i].id == id) {
        slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    live_.erase(it);
    return true;
  }
  // Not armed — but it may be sitting unfired in the batch Advance() is
  // mid-way through. Nulling the callback keeps "cancelled timers never
  // fire" true even for same-batch cancellation.
  if (firing_ != nullptr) {
    for (Entry& entry : *firing_) {
      if (entry.id == id && entry.callback) {
        entry.callback = nullptr;
        return true;
      }
    }
  }
  return false;
}

std::size_t TimerWheel::Advance(std::uint64_t now_micros) {
  const std::uint64_t target_tick = now_micros / tick_micros_;
  std::uint64_t start_tick = advanced_once_ ? cursor_tick_ : target_tick;
  if (target_tick < start_tick) start_tick = target_tick;

  // One full rotation visits every slot; a jump larger than that (or the
  // very first Advance, with no known baseline) cannot need more.
  std::uint64_t span = target_tick - start_tick + 1;
  if (!advanced_once_ || span > slots_.size()) span = slots_.size();

  std::vector<Entry> due;
  for (std::uint64_t step = 0; step < span; ++step) {
    std::vector<Entry>& slot =
        slots_[static_cast<std::size_t>((start_tick + step) % slots_.size())];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < slot.size(); ++i) {
      if (slot[i].deadline <= now_micros) {
        live_.erase(slot[i].id);
        due.push_back(std::move(slot[i]));
      } else {
        if (keep != i) slot[keep] = std::move(slot[i]);
        ++keep;
      }
    }
    slot.resize(keep);
  }

  // Commit the cursor before running callbacks: a callback re-arming an
  // already-due timer must land in a slot the *next* scan starts from.
  cursor_tick_ = target_tick;
  advanced_once_ = true;

  std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
    return a.deadline != b.deadline ? a.deadline < b.deadline : a.id < b.id;
  });

  std::size_t fired = 0;
  firing_ = &due;
  for (Entry& entry : due) {
    if (!entry.callback) continue;  // Cancelled by an earlier callback.
    std::function<void()> callback = std::move(entry.callback);
    entry.callback = nullptr;
    callback();
    ++fired;
  }
  firing_ = nullptr;
  return fired;
}

std::uint64_t TimerWheel::NextDeadlineMicros() const {
  auto& heap = const_cast<TimerWheel*>(this)->deadlines_;
  auto& live = const_cast<TimerWheel*>(this)->live_;
  while (!heap.empty() && live.find(heap.top().id) == live.end()) {
    heap.pop();  // Stale: fired or cancelled since it was pushed.
  }
  return heap.empty() ? UINT64_MAX : heap.top().deadline;
}

}  // namespace weblint
