// SocketFetcher: HTTP/1.0 over a real TCP socket, with per-attempt
// deadlines and size caps enforced at the syscall layer.
//
// This is the transport under check_url when the target is a live server
// (in practice: the fault-injection HttpServer on 127.0.0.1 — the test and
// bench harnesses never touch the open internet). Connect and read
// deadlines come from the FetchPolicy; failures map to TransportError so
// RobustFetcher can classify and retry. Only numeric IPv4 hosts and
// "localhost" are resolved — there is deliberately no DNS here.
#ifndef WEBLINT_NET_SOCKET_FETCHER_H_
#define WEBLINT_NET_SOCKET_FETCHER_H_

#include "net/fetch_policy.h"
#include "net/fetcher.h"

namespace weblint {

class SocketFetcher : public UrlFetcher {
 public:
  explicit SocketFetcher(FetchPolicy policy = {}) : policy_(policy) {}

  HttpResponse Get(const Url& url) override;
  HttpResponse Head(const Url& url) override;

 private:
  HttpResponse RoundTrip(const Url& url, std::string_view method);

  FetchPolicy policy_;
};

}  // namespace weblint

#endif  // WEBLINT_NET_SOCKET_FETCHER_H_
