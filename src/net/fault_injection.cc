#include "net/fault_injection.h"

#include <algorithm>
#include <memory>

#include "util/strings.h"

namespace weblint {

namespace {

constexpr std::uint64_t kDefaultDropBodyBytes = 16;
constexpr std::uint64_t kDefaultOversizeBytes = 16u << 20;

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool ParseKind(std::string_view word, FaultKind* out) {
  if (word == "refuse") {
    *out = FaultKind::kRefuse;
  } else if (word == "stall") {
    *out = FaultKind::kStall;
  } else if (word == "drop-body") {
    *out = FaultKind::kDropBody;
  } else if (word == "garbage") {
    *out = FaultKind::kGarbage;
  } else if (word == "redirect-loop") {
    *out = FaultKind::kRedirectLoop;
  } else if (word == "oversize") {
    *out = FaultKind::kOversize;
  } else if (word == "slow-drip") {
    *out = FaultKind::kSlowDrip;
  } else {
    return false;
  }
  return true;
}

// Parses "key=value" option words shared by the fault directive.
Status ApplyRuleOption(std::string_view word, FaultRule* rule) {
  const size_t eq = word.find('=');
  if (eq == std::string_view::npos) {
    return Fail("expected key=value, got " + std::string(word));
  }
  const std::string_view key = word.substr(0, eq);
  std::uint32_t value = 0;
  if (!ParseUint(word.substr(eq + 1), &value)) {
    return Fail("bad number in " + std::string(word));
  }
  if (key == "after") {
    rule->after = value;
  } else if (key == "times") {
    rule->times = value;
  } else if (key == "prob") {
    if (value > 100) {
      return Fail("prob must be 0-100, got " + std::string(word));
    }
    rule->prob_percent = value;
  } else {
    return Fail("unknown fault option " + std::string(word));
  }
  return Status::Ok();
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRefuse:
      return "refuse";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDropBody:
      return "drop-body";
    case FaultKind::kGarbage:
      return "garbage";
    case FaultKind::kRedirectLoop:
      return "redirect-loop";
    case FaultKind::kOversize:
      return "oversize";
    case FaultKind::kSlowDrip:
      return "slow-drip";
  }
  return "unknown";
}

std::string FaultScenario::Describe() const {
  std::string out = StrFormat("seed=%d rules=[", seed);
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) {
      out += " ";
    }
    out += StrFormat("%s:%s", FaultKindName(rules[i].kind), rules[i].pattern);
  }
  out += "]";
  return out;
}

const FaultRule* FaultScenario::Match(std::string_view path, std::uint64_t request_ordinal) {
  for (FaultRule& rule : rules) {
    const bool matches =
        rule.pattern == "*" || path.find(rule.pattern) != std::string_view::npos;
    if (!matches) {
      continue;
    }
    const std::uint32_t ordinal_for_rule = rule.seen++;
    if (ordinal_for_rule < rule.after) {
      continue;
    }
    if (rule.times != 0 && rule.fired >= rule.times) {
      continue;
    }
    if (rule.prob_percent < 100) {
      // Deterministic sampling: a pure function of (seed, global request
      // ordinal, rule identity) — replays bit-exactly.
      const std::uint64_t roll =
          Mix64(seed ^ Mix64(request_ordinal + 0x517Eull * (&rule - rules.data() + 1))) % 100;
      if (roll >= rule.prob_percent) {
        continue;
      }
    }
    ++rule.fired;
    return &rule;
  }
  return nullptr;
}

Result<FaultScenario> ParseFaultScenario(std::string_view text) {
  FaultScenario scenario;
  size_t line_no = 0;
  for (std::string_view raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw_line);
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = TrimRight(line.substr(0, hash));
    }
    if (line.empty()) {
      continue;
    }
    const auto words = SplitWhitespace(line);
    if (words[0] == "seed") {
      std::uint32_t seed = 0;
      if (words.size() != 2 || !ParseUint(words[1], &seed)) {
        return Fail(StrFormat("scenario line %d: seed expects one number", line_no));
      }
      scenario.seed = seed;
      continue;
    }
    if (words[0] != "fault") {
      return Fail(StrFormat("scenario line %d: unknown directive %s", line_no, words[0]));
    }
    if (words.size() < 3) {
      return Fail(StrFormat("scenario line %d: fault expects <pattern> <kind>", line_no));
    }
    FaultRule rule;
    rule.pattern = std::string(words[1]);
    if (!ParseKind(words[2], &rule.kind)) {
      return Fail(StrFormat("scenario line %d: unknown fault kind %s", line_no, words[2]));
    }
    size_t next = 3;
    if (next < words.size() && words[next].find('=') == std::string_view::npos) {
      std::uint32_t param = 0;
      if (!ParseUint(words[next], &param)) {
        return Fail(StrFormat("scenario line %d: bad fault parameter %s", line_no, words[next]));
      }
      rule.param = param;
      ++next;
    }
    for (; next < words.size(); ++next) {
      if (Status s = ApplyRuleOption(words[next], &rule); !s.ok()) {
        return Fail(StrFormat("scenario line %d: %s", line_no, s.message()));
      }
    }
    scenario.rules.push_back(std::move(rule));
  }
  return scenario;
}

HttpResponse FaultyWeb::Serve(const Url& url, bool head) {
  const std::uint64_t ordinal = request_ordinal_++;
  const FaultRule* rule = scenario_.Match(url.path, ordinal);
  if (rule == nullptr) {
    return head ? inner_.Head(url) : inner_.Get(url);
  }
  ++faults_injected_;

  HttpResponse response;
  switch (rule->kind) {
    case FaultKind::kRefuse:
      response.transport = TransportError::kRefused;
      response.reason = "connection refused (injected)";
      return response;

    case FaultKind::kStall:
    case FaultKind::kSlowDrip: {
      // The server never completes its reply; the client observes its read
      // deadline (stall_observed_ms_, set by the harness to the policy's
      // deadline), then gives up.
      const std::uint64_t server_stall_ms =
          rule->param != 0 ? rule->param : 2ull * stall_observed_ms_;
      clock_->SleepMicros(std::min<std::uint64_t>(server_stall_ms, stall_observed_ms_) * 1000);
      response.transport = TransportError::kTimeout;
      response.reason = "stalled (injected)";
      return response;
    }

    case FaultKind::kDropBody: {
      response = head ? inner_.Head(url) : inner_.Get(url);
      if (response.transport != TransportError::kNone || head) {
        return response;
      }
      // Keep the declared length honest and drop the tail: exactly what a
      // connection reset mid-body looks like to the client.
      const std::uint64_t keep = rule->param != 0 ? rule->param : kDefaultDropBodyBytes;
      if (response.body.size() > keep) {
        response.headers["content-length"] = std::to_string(response.body.size());
        response.body.resize(keep);
        response.body_truncated = true;
      }
      return response;
    }

    case FaultKind::kGarbage:
      response.transport = TransportError::kMalformed;
      response.reason = "garbage reply (injected)";
      return response;

    case FaultKind::kRedirectLoop: {
      // 302 back to the same path with an incrementing hop counter, so each
      // hop is a "new" URL and naive loop detection by exact URL fails —
      // only the hop limit stops it.
      std::uint32_t hop = 0;
      const size_t at = url.query.find("hop=");
      if (at != std::string::npos) {
        ParseUint(std::string_view(url.query).substr(at + 4), &hop);
      }
      response.status = 302;
      response.reason = "Found (injected loop)";
      Url next = url;
      next.query = "hop=" + std::to_string(hop + 1);
      response.headers["location"] = next.Serialize();
      return response;
    }

    case FaultKind::kOversize: {
      const std::uint64_t bytes = rule->param != 0 ? rule->param : kDefaultOversizeBytes;
      response.status = 200;
      response.reason = "OK";
      response.headers["content-type"] = "text/html";
      if (!head) {
        response.body.assign(bytes, 'x');
      }
      return response;
    }
  }
  return response;
}

HttpResponse FaultyWeb::Get(const Url& url) { return Serve(url, /*head=*/false); }

HttpResponse FaultyWeb::Head(const Url& url) { return Serve(url, /*head=*/true); }

HttpServer::WireShaper MakeWireShaper(FaultScenario scenario) {
  // The shaper captures its scenario by shared_ptr: std::function requires
  // copyability, and rule bookkeeping must be shared across copies.
  auto state = std::make_shared<FaultScenario>(std::move(scenario));
  auto ordinal = std::make_shared<std::uint64_t>(0);
  return [state, ordinal](const HttpRequest& request,
                          std::string serialized) -> HttpServer::WirePlan {
    HttpServer::WirePlan plan;
    const FaultRule* rule = state->Match(request.Path(), (*ordinal)++);
    if (rule == nullptr) {
      plan.bytes = std::move(serialized);
      return plan;
    }
    switch (rule->kind) {
      case FaultKind::kRefuse:
        plan.close_before_write = true;
        break;
      case FaultKind::kStall:
        // Real milliseconds on the wire — scenarios for socket tests keep
        // this just above the client's read deadline.
        plan.stall_ms = rule->param != 0 ? static_cast<std::uint32_t>(rule->param) : 300;
        plan.bytes = std::move(serialized);
        break;
      case FaultKind::kDropBody: {
        const std::uint64_t keep = rule->param != 0 ? rule->param : kDefaultDropBodyBytes;
        const size_t header_end = serialized.find("\r\n\r\n");
        const size_t cut = header_end == std::string::npos
                               ? serialized.size()
                               : std::min(serialized.size(), header_end + 4 + keep);
        plan.bytes = serialized.substr(0, cut);
        break;
      }
      case FaultKind::kGarbage:
        plan.bytes = "ZTTP/9.9 garbage reply\r\nthis is not http\r\n\r\n<noise>";
        break;
      case FaultKind::kRedirectLoop: {
        std::uint32_t hop = 0;
        const std::string_view query = request.Query();
        const size_t at = query.find("hop=");
        if (at != std::string_view::npos) {
          ParseUint(query.substr(at + 4), &hop);
        }
        HttpResponse redirect;
        redirect.status = 302;
        redirect.reason = "Found";
        redirect.headers["location"] =
            std::string(request.Path()) + "?hop=" + std::to_string(hop + 1);
        plan.bytes = SerializeHttpResponse(redirect);
        break;
      }
      case FaultKind::kOversize: {
        const std::uint64_t bytes = rule->param != 0 ? rule->param : kDefaultOversizeBytes;
        HttpResponse big;
        big.status = 200;
        big.reason = "OK";
        big.headers["content-type"] = "text/html";
        big.body.assign(bytes, 'x');
        plan.bytes = SerializeHttpResponse(big);
        break;
      }
      case FaultKind::kSlowDrip:
        plan.bytes = std::move(serialized);
        plan.chunk_bytes = rule->param != 0 ? static_cast<size_t>(rule->param) : 1;
        plan.chunk_delay_ms = 20;
        break;
    }
    return plan;
  };
}

}  // namespace weblint
