// Deterministic fault injection for the fetch/crawl layer.
//
// The robustness contract (every network failure degrades to a per-page
// diagnostic, never a crash or hang) is only worth having if it is
// provable. This header provides the chaos harness that proves it:
//
//  * FaultScenario — a seeded, scriptable description of which requests
//    fail and how. One scenario text drives all three harness layers.
//  * FaultyWeb — an in-process UrlFetcher decorator applying the scenario
//    to another fetcher (usually a VirtualWeb): refusals, stalls, mid-body
//    drops, garbage replies, infinite redirect chains, oversized bodies.
//  * MakeWireShaper — the same scenario lowered to the socket layer: an
//    HttpServer response hook producing partial writes, garbage status
//    lines, slow-drip ("slowloris") responses and pre-write stalls on a
//    real connection, for SocketFetcher/RobustFetcher integration tests.
//
// Everything is deterministic given (scenario seed, request sequence): a
// failing test reproduces from the printed seed.
//
// Scenario script format (one directive per line, '#' comments):
//
//   seed <n>                          # jitter/sampling seed (default 1)
//   fault <pattern> <kind> [param] [after=N] [times=N] [prob=P]
//
// `pattern` is matched as a substring of the URL path ('*' matches every
// request). `kind` is one of:
//
//   refuse          connection refused                      (param unused)
//   stall           server never answers; the client eats its read
//                   deadline. param = stall observed by the client, ms
//                   (in-process default: 2x a typical read deadline)
//   drop-body       deliver only param bytes of the body, Content-Length
//                   intact (mid-body drop / short read). param default 16
//   garbage         reply bytes are not HTTP (garbage status line)
//   redirect-loop   302 to itself with an incrementing ?hop= counter
//   oversize        serve a param-byte body (default 16 MiB)
//   slow-drip       deliver the body param bytes at a time with a stall
//                   between chunks (wire mode; in-process this costs one
//                   read deadline like `stall`). param default 1
//
// `after=N` skips the first N matching requests (fault the 3rd fetch);
// `times=N` stops faulting after N hits (transient faults, so retries can
// succeed); `prob=P` (0-100) faults that percentage of matching requests,
// sampled deterministically from the seed.
#ifndef WEBLINT_NET_FAULT_INJECTION_H_
#define WEBLINT_NET_FAULT_INJECTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/fetcher.h"
#include "net/http_server.h"
#include "util/clock.h"
#include "util/result.h"

namespace weblint {

enum class FaultKind {
  kRefuse,
  kStall,
  kDropBody,
  kGarbage,
  kRedirectLoop,
  kOversize,
  kSlowDrip,
};

std::string_view FaultKindName(FaultKind kind);

struct FaultRule {
  std::string pattern;  // Substring of the URL path; "*" = every request.
  FaultKind kind = FaultKind::kRefuse;
  std::uint64_t param = 0;      // Kind-specific; 0 = kind default.
  std::uint32_t after = 0;      // Skip the first `after` matching requests.
  std::uint32_t times = 0;      // 0 = unlimited; else fault at most N times.
  std::uint32_t prob_percent = 100;  // Deterministic sampling rate.

  // Mutable bookkeeping (the scenario is per-run state).
  std::uint32_t seen = 0;
  std::uint32_t fired = 0;
};

struct FaultScenario {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  // One-line summary ("seed=42 rules=[stall:/page3 ...]") for test traces,
  // so any failure reproduces from the printed seed.
  std::string Describe() const;

  // The first rule that elects to fault this request, advancing rule
  // bookkeeping. Returns nullptr when the request should pass through.
  // `request_ordinal` feeds the deterministic prob sampling.
  const FaultRule* Match(std::string_view path, std::uint64_t request_ordinal);
};

// Parses the scenario script format above. Unknown directives, kinds, or
// malformed parameters fail, naming the offending line.
Result<FaultScenario> ParseFaultScenario(std::string_view text);

// An in-process chaos proxy: serves from `inner`, mangled per `scenario`.
// Stalls and slow-drips advance `clock` (share the RobustFetcher's
// FakeClock in tests) instead of really sleeping.
class FaultyWeb : public UrlFetcher {
 public:
  FaultyWeb(UrlFetcher& inner, FaultScenario scenario, Clock* clock = nullptr)
      : inner_(inner), scenario_(std::move(scenario)),
        clock_(clock != nullptr ? clock : Clock::System()) {}

  HttpResponse Get(const Url& url) override;
  HttpResponse Head(const Url& url) override;

  // Cap on how long a client observes a `stall` / `slow-drip` before its
  // read deadline fires. Tests set this to the policy's read deadline so
  // fake-clock time mirrors what a socket client would measure.
  void set_stall_observed_ms(std::uint32_t ms) { stall_observed_ms_ = ms; }

  size_t faults_injected() const { return faults_injected_; }
  const FaultScenario& scenario() const { return scenario_; }

 private:
  HttpResponse Serve(const Url& url, bool head);

  UrlFetcher& inner_;
  FaultScenario scenario_;
  Clock* clock_;
  std::uint32_t stall_observed_ms_ = 10000;
  std::uint64_t request_ordinal_ = 0;
  size_t faults_injected_ = 0;
};

// Lowers `scenario` to HttpServer's wire hook: the returned shaper mangles
// serialized response bytes (garbage status line, partial write, slow drip,
// stall-before-write) per rule. Stalls here are real milliseconds — keep
// them short in tests. The shaper owns its scenario state and is called
// from the server's serving thread only.
HttpServer::WireShaper MakeWireShaper(FaultScenario scenario);

}  // namespace weblint

#endif  // WEBLINT_NET_FAULT_INJECTION_H_
