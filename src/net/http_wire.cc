#include "net/http_wire.h"

#include <cstdio>

namespace weblint {

namespace {

// Returns the offset just past the header/body separator, or npos.
size_t HeaderEnd(std::string_view raw) {
  const size_t crlf = raw.find("\r\n\r\n");
  const size_t lf = raw.find("\n\n");
  if (crlf == std::string_view::npos) {
    return lf == std::string_view::npos ? std::string_view::npos : lf + 2;
  }
  if (lf == std::string_view::npos) {
    return crlf + 4;
  }
  return std::min(crlf + 4, lf + 2);
}

// Splits the header section into lines, tolerating \r\n and \n.
std::vector<std::string_view> HeaderLines(std::string_view section) {
  std::vector<std::string_view> lines;
  for (std::string_view line : Split(section, '\n')) {
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

void ParseHeaderFields(const std::vector<std::string_view>& lines, size_t first,
                       std::map<std::string, std::string, ILess>* headers) {
  for (size_t i = first; i < lines.size(); ++i) {
    const size_t colon = lines[i].find(':');
    if (colon == std::string_view::npos) {
      continue;  // Lenient: skip malformed field lines.
    }
    (*headers)[std::string(Trim(lines[i].substr(0, colon)))] =
        std::string(Trim(lines[i].substr(colon + 1)));
  }
}

// Chunk-size lines longer than this without a terminator are hostile, not
// merely incomplete (a real size line is a few hex digits plus extensions).
constexpr size_t kMaxChunkLineBytes = 1024;
// Declared chunk sizes past this are rejected outright: no legitimate peer
// sends a single 1 GiB chunk, and accepting the declaration would make the
// scanner wait forever for bytes that will never come within any fetch cap.
constexpr std::uint64_t kMaxChunkBytes = 1ull << 30;

enum class ChunkScan { kComplete, kIncomplete, kMalformed };

// Consumes one line (terminated by \r\n or bare \n, matching the header
// parser's leniency) starting at *pos. Returns false while the terminator
// has not arrived; on success *line excludes the terminator.
bool TakeLine(std::string_view raw, size_t* pos, std::string_view* line) {
  const size_t nl = raw.find('\n', *pos);
  if (nl == std::string_view::npos) {
    return false;
  }
  *line = raw.substr(*pos, nl - *pos);
  if (!line->empty() && line->back() == '\r') {
    line->remove_suffix(1);
  }
  *pos = nl + 1;
  return true;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Scans chunked-body framing beginning at raw[0] (the byte after the header
// block's blank line). Decoded chunk data is appended to *decoded when
// non-null — including the partial prefix of an incomplete scan, so a
// truncated reply still surfaces the bytes that did arrive. On kComplete,
// *end_offset is the offset just past the trailer section's blank line.
ChunkScan ScanChunkedBody(std::string_view raw, std::string* decoded,
                          size_t* end_offset) {
  size_t pos = 0;
  for (;;) {
    std::string_view size_line;
    size_t line_start = pos;
    if (!TakeLine(raw, &pos, &size_line)) {
      // No terminator yet: incomplete, unless the "line" is already longer
      // than any honest size line could be.
      return raw.size() - line_start > kMaxChunkLineBytes ? ChunkScan::kMalformed
                                                          : ChunkScan::kIncomplete;
    }
    if (size_line.size() > kMaxChunkLineBytes) {
      return ChunkScan::kMalformed;
    }
    // Chunk extensions (";name=value") are legal noise: ignore them.
    std::string_view digits = Trim(size_line.substr(0, size_line.find(';')));
    if (digits.empty()) {
      return ChunkScan::kMalformed;
    }
    std::uint64_t size = 0;
    for (char c : digits) {
      const int v = HexDigit(c);
      if (v < 0 || size > kMaxChunkBytes) {
        return ChunkScan::kMalformed;
      }
      size = size * 16 + static_cast<std::uint64_t>(v);
    }
    if (size > kMaxChunkBytes) {
      return ChunkScan::kMalformed;
    }
    if (size == 0) {
      // Trailer section: header-style lines, terminated by an empty line.
      for (;;) {
        std::string_view trailer;
        if (!TakeLine(raw, &pos, &trailer)) {
          return ChunkScan::kIncomplete;
        }
        if (trailer.empty()) {
          if (end_offset != nullptr) {
            *end_offset = pos;
          }
          return ChunkScan::kComplete;
        }
      }
    }
    const size_t available = raw.size() - pos;
    if (available < size) {
      if (decoded != nullptr) {
        decoded->append(raw.substr(pos));
      }
      return ChunkScan::kIncomplete;
    }
    if (decoded != nullptr) {
      decoded->append(raw.substr(pos, size));
    }
    pos += size;
    // The chunk data must be followed by its own line terminator.
    if (pos == raw.size() || (raw[pos] == '\r' && pos + 1 == raw.size())) {
      return ChunkScan::kIncomplete;
    }
    if (raw[pos] == '\r' && raw[pos + 1] == '\n') {
      pos += 2;
    } else if (raw[pos] == '\n') {
      pos += 1;
    } else {
      return ChunkScan::kMalformed;
    }
  }
}

// Extracts the body. Transfer-Encoding: chunked wins over Content-Length
// (RFC 7230 §3.3.3); malformed chunk framing fails the parse rather than
// smuggling framing bytes through as content. Otherwise the Content-Length
// header is untrusted input: a negative, non-numeric, or absent value falls
// back to "everything after the blank line"; a value larger than the bytes
// actually present is a short read and sets `*truncated` — it must never be
// reported as a complete body (silent success hides mid-body drops).
Result<std::string> TakeBody(std::string_view raw, size_t body_start,
                             const std::map<std::string, std::string, ILess>& headers,
                             bool* truncated) {
  std::string_view body = raw.substr(std::min(body_start, raw.size()));
  if (UsesChunkedEncoding(headers)) {
    std::string decoded;
    switch (ScanChunkedBody(body, &decoded, nullptr)) {
      case ChunkScan::kMalformed:
        return Fail("malformed chunked body");
      case ChunkScan::kIncomplete:
        if (truncated != nullptr) {
          *truncated = true;
        }
        [[fallthrough]];
      case ChunkScan::kComplete:
        return decoded;
    }
  }
  const auto it = headers.find("content-length");
  if (it != headers.end()) {
    std::uint32_t length = 0;
    if (ParseUint(Trim(it->second), &length)) {
      if (length <= body.size()) {
        body = body.substr(0, length);
      } else if (truncated != nullptr) {
        *truncated = true;
      }
    }
  }
  return std::string(body);
}

}  // namespace

bool UsesChunkedEncoding(const std::map<std::string, std::string, ILess>& headers) {
  const auto it = headers.find("transfer-encoding");
  return it != headers.end() && IContains(it->second, "chunked");
}

std::string_view HttpRequest::Query() const {
  const size_t q = target.find('?');
  return q == std::string::npos ? std::string_view()
                                : std::string_view(target).substr(q + 1);
}

std::string_view HttpRequest::Path() const {
  const size_t q = target.find('?');
  return std::string_view(target).substr(0, q);
}

Result<HttpRequest> ParseHttpRequest(std::string_view raw) {
  const size_t body_start = HeaderEnd(raw);
  const std::string_view header_section =
      body_start == std::string_view::npos ? raw : raw.substr(0, body_start);
  const auto lines = HeaderLines(header_section);
  if (lines.empty()) {
    return Fail("empty HTTP request");
  }
  const auto parts = SplitWhitespace(lines[0]);
  if (parts.size() < 2) {
    return Fail("malformed request line: " + std::string(lines[0]));
  }
  HttpRequest request;
  request.method = AsciiUpper(parts[0]);
  request.target = std::string(parts[1]);
  request.version = parts.size() > 2 ? std::string(parts[2]) : "HTTP/0.9";
  ParseHeaderFields(lines, 1, &request.headers);
  if (body_start != std::string_view::npos) {
    Result<std::string> body = TakeBody(raw, body_start, request.headers, nullptr);
    if (!body.ok()) {
      return body.status();
    }
    request.body = std::move(body).value();
  }
  return request;
}

Result<HttpResponse> ParseHttpResponse(std::string_view raw, bool request_was_head) {
  const size_t body_start = HeaderEnd(raw);
  const std::string_view header_section =
      body_start == std::string_view::npos ? raw : raw.substr(0, body_start);
  const auto lines = HeaderLines(header_section);
  if (lines.empty()) {
    return Fail("empty HTTP response");
  }
  const auto parts = SplitWhitespace(lines[0]);
  if (parts.size() < 2 || !IStartsWith(parts[0], "HTTP/")) {
    return Fail("malformed status line: " + std::string(lines[0]));
  }
  HttpResponse response;
  std::uint32_t status = 0;
  if (!ParseUint(parts[1], &status)) {
    return Fail("malformed status code: " + std::string(parts[1]));
  }
  response.status = static_cast<int>(status);
  if (parts.size() > 2) {
    const size_t reason_at = lines[0].find(parts[2]);
    response.reason = std::string(lines[0].substr(reason_at));
  }
  ParseHeaderFields(lines, 1, &response.headers);
  if (request_was_head) {
    return response;  // HEAD replies have no body; headers are metadata only.
  }
  if (body_start != std::string_view::npos) {
    Result<std::string> body =
        TakeBody(raw, body_start, response.headers, &response.body_truncated);
    if (!body.ok()) {
      return body.status();
    }
    response.body = std::move(body).value();
  }
  return response;
}

std::string SerializeHttpRequest(const HttpRequest& request) {
  std::string out = request.method + " " + request.target + " " +
                    (request.version.empty() ? "HTTP/1.0" : request.version) + "\r\n";
  bool has_length = false;
  for (const auto& [name, value] : request.headers) {
    out += name + ": " + value + "\r\n";
    has_length = has_length || IEquals(name, "content-length");
  }
  if (!request.body.empty() && !has_length) {
    out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

std::string SerializeHttpResponseHead(const HttpResponse& response,
                                      std::string_view version,
                                      bool add_content_length) {
  const std::string reason = response.reason.empty()
                                 ? std::string(ReasonPhrase(response.status))
                                 : response.reason;
  std::string out;
  out += version;
  out += " " + std::to_string(response.status) + " " + reason + "\r\n";
  bool has_length = false;
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
    has_length = has_length || IEquals(name, "content-length");
  }
  if (add_content_length && !has_length) {
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string SerializeHttpResponse(const HttpResponse& response, std::string_view version) {
  return SerializeHttpResponseHead(response, version, /*add_content_length=*/true) +
         response.body;
}

std::string EncodeChunk(std::string_view data) {
  if (data.empty()) {
    return std::string();
  }
  char size_line[32];
  const int n = std::snprintf(size_line, sizeof size_line, "%zx\r\n", data.size());
  std::string out(size_line, static_cast<size_t>(n));
  out += data;
  out += "\r\n";
  return out;
}

std::string_view FinalChunk() { return "0\r\n\r\n"; }

void MaterializeBodyStream(HttpResponse* response) {
  if (!response->body_stream) {
    return;
  }
  auto producer = std::move(response->body_stream);
  response->body_stream = nullptr;
  producer([response](std::string_view data) { response->body += data; });
}

bool HttpMessageComplete(std::string_view buffer) {
  return HttpMessageLength(buffer) != std::string_view::npos;
}

bool HttpResponseComplete(std::string_view buffer, bool request_was_head) {
  if (request_was_head) {
    // A HEAD reply ends at the header block; its Content-Length (if any)
    // describes the body a GET would have carried.
    return HeaderEnd(buffer) != std::string_view::npos;
  }
  return HttpMessageComplete(buffer);
}

size_t HttpMessageLength(std::string_view buffer) {
  const size_t body_start = HeaderEnd(buffer);
  if (body_start == std::string_view::npos) {
    return std::string_view::npos;
  }
  const auto lines = HeaderLines(buffer.substr(0, body_start));
  std::map<std::string, std::string, ILess> headers;
  ParseHeaderFields(lines, 1, &headers);
  if (UsesChunkedEncoding(headers)) {
    size_t end = 0;
    switch (ScanChunkedBody(buffer.substr(body_start), nullptr, &end)) {
      case ChunkScan::kComplete:
        return body_start + end;
      case ChunkScan::kIncomplete:
        return std::string_view::npos;
      case ChunkScan::kMalformed:
        // Untrusted framing: frame the message at its header block so the
        // parser (handed exactly these bytes) sees no body, and a server
        // treats the garbage as the next — unparseable — request.
        return body_start;
    }
  }
  const auto it = headers.find("content-length");
  if (it == headers.end()) {
    return body_start;  // No declared body: the message ends at the blank line.
  }
  std::uint32_t length = 0;
  if (!ParseUint(Trim(it->second), &length)) {
    return body_start;  // Malformed length is untrusted: treat as no body.
  }
  return buffer.size() - body_start >= length ? body_start + length
                                              : std::string_view::npos;
}

}  // namespace weblint
