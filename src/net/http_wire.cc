#include "net/http_wire.h"

namespace weblint {

namespace {

// Returns the offset just past the header/body separator, or npos.
size_t HeaderEnd(std::string_view raw) {
  const size_t crlf = raw.find("\r\n\r\n");
  const size_t lf = raw.find("\n\n");
  if (crlf == std::string_view::npos) {
    return lf == std::string_view::npos ? std::string_view::npos : lf + 2;
  }
  if (lf == std::string_view::npos) {
    return crlf + 4;
  }
  return std::min(crlf + 4, lf + 2);
}

// Splits the header section into lines, tolerating \r\n and \n.
std::vector<std::string_view> HeaderLines(std::string_view section) {
  std::vector<std::string_view> lines;
  for (std::string_view line : Split(section, '\n')) {
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

void ParseHeaderFields(const std::vector<std::string_view>& lines, size_t first,
                       std::map<std::string, std::string, ILess>* headers) {
  for (size_t i = first; i < lines.size(); ++i) {
    const size_t colon = lines[i].find(':');
    if (colon == std::string_view::npos) {
      continue;  // Lenient: skip malformed field lines.
    }
    (*headers)[std::string(Trim(lines[i].substr(0, colon)))] =
        std::string(Trim(lines[i].substr(colon + 1)));
  }
}

// Extracts the body per Content-Length. The header is untrusted input: a
// negative, non-numeric, or absent value falls back to "everything after
// the blank line"; a value larger than the bytes actually present is a
// short read and sets `*truncated` — it must never be reported as a
// complete body (silent success hides mid-body drops).
std::string TakeBody(std::string_view raw, size_t body_start,
                     const std::map<std::string, std::string, ILess>& headers,
                     bool* truncated) {
  std::string_view body = raw.substr(std::min(body_start, raw.size()));
  const auto it = headers.find("content-length");
  if (it != headers.end()) {
    std::uint32_t length = 0;
    if (ParseUint(Trim(it->second), &length)) {
      if (length <= body.size()) {
        body = body.substr(0, length);
      } else if (truncated != nullptr) {
        *truncated = true;
      }
    }
  }
  return std::string(body);
}

}  // namespace

std::string_view HttpRequest::Query() const {
  const size_t q = target.find('?');
  return q == std::string::npos ? std::string_view()
                                : std::string_view(target).substr(q + 1);
}

std::string_view HttpRequest::Path() const {
  const size_t q = target.find('?');
  return std::string_view(target).substr(0, q);
}

Result<HttpRequest> ParseHttpRequest(std::string_view raw) {
  const size_t body_start = HeaderEnd(raw);
  const std::string_view header_section =
      body_start == std::string_view::npos ? raw : raw.substr(0, body_start);
  const auto lines = HeaderLines(header_section);
  if (lines.empty()) {
    return Fail("empty HTTP request");
  }
  const auto parts = SplitWhitespace(lines[0]);
  if (parts.size() < 2) {
    return Fail("malformed request line: " + std::string(lines[0]));
  }
  HttpRequest request;
  request.method = AsciiUpper(parts[0]);
  request.target = std::string(parts[1]);
  request.version = parts.size() > 2 ? std::string(parts[2]) : "HTTP/0.9";
  ParseHeaderFields(lines, 1, &request.headers);
  if (body_start != std::string_view::npos) {
    request.body = TakeBody(raw, body_start, request.headers, nullptr);
  }
  return request;
}

Result<HttpResponse> ParseHttpResponse(std::string_view raw) {
  const size_t body_start = HeaderEnd(raw);
  const std::string_view header_section =
      body_start == std::string_view::npos ? raw : raw.substr(0, body_start);
  const auto lines = HeaderLines(header_section);
  if (lines.empty()) {
    return Fail("empty HTTP response");
  }
  const auto parts = SplitWhitespace(lines[0]);
  if (parts.size() < 2 || !IStartsWith(parts[0], "HTTP/")) {
    return Fail("malformed status line: " + std::string(lines[0]));
  }
  HttpResponse response;
  std::uint32_t status = 0;
  if (!ParseUint(parts[1], &status)) {
    return Fail("malformed status code: " + std::string(parts[1]));
  }
  response.status = static_cast<int>(status);
  if (parts.size() > 2) {
    const size_t reason_at = lines[0].find(parts[2]);
    response.reason = std::string(lines[0].substr(reason_at));
  }
  ParseHeaderFields(lines, 1, &response.headers);
  if (body_start != std::string_view::npos) {
    response.body = TakeBody(raw, body_start, response.headers, &response.body_truncated);
  }
  return response;
}

std::string SerializeHttpRequest(const HttpRequest& request) {
  std::string out = request.method + " " + request.target + " " +
                    (request.version.empty() ? "HTTP/1.0" : request.version) + "\r\n";
  bool has_length = false;
  for (const auto& [name, value] : request.headers) {
    out += name + ": " + value + "\r\n";
    has_length = has_length || IEquals(name, "content-length");
  }
  if (!request.body.empty() && !has_length) {
    out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

std::string SerializeHttpResponse(const HttpResponse& response, std::string_view version) {
  const std::string reason = response.reason.empty()
                                 ? std::string(ReasonPhrase(response.status))
                                 : response.reason;
  std::string out;
  out += version;
  out += " " + std::to_string(response.status) + " " + reason + "\r\n";
  bool has_length = false;
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
    has_length = has_length || IEquals(name, "content-length");
  }
  if (!has_length) {
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

bool HttpMessageComplete(std::string_view buffer) {
  return HttpMessageLength(buffer) != std::string_view::npos;
}

size_t HttpMessageLength(std::string_view buffer) {
  const size_t body_start = HeaderEnd(buffer);
  if (body_start == std::string_view::npos) {
    return std::string_view::npos;
  }
  const auto lines = HeaderLines(buffer.substr(0, body_start));
  std::map<std::string, std::string, ILess> headers;
  ParseHeaderFields(lines, 1, &headers);
  const auto it = headers.find("content-length");
  if (it == headers.end()) {
    return body_start;  // No declared body: the message ends at the blank line.
  }
  std::uint32_t length = 0;
  if (!ParseUint(Trim(it->second), &length)) {
    return body_start;  // Malformed length is untrusted: treat as no body.
  }
  return buffer.size() - body_start >= length ? body_start + length
                                              : std::string_view::npos;
}

}  // namespace weblint
