// Hashed timer wheel: the reactor's deadline store.
//
// A reactor holding 10k keep-alive connections re-arms a deadline on every
// request; a priority queue pays O(log n) per arm/cancel and its heap order
// depends on arrival interleaving. The wheel instead hashes each deadline
// into one of `slots` coarse buckets (slot = (deadline / tick) % slots), so
// arm and cancel are O(1), and Advance() scans only the slots the clock has
// passed over since the previous call.
//
// Determinism contract (what the FakeClock tests pin down): timers due at
// the same Advance() fire in (deadline, insertion id) order, regardless of
// which slots they hashed to or how far the clock jumped — a fake clock
// advancing 10 s in one step fires the same sequence as one advancing
// millisecond by millisecond. Cancelled timers never fire, including a
// timer cancelled by an earlier callback in the same Advance() batch.
//
// Not thread-safe: the wheel belongs to the reactor thread.
#ifndef WEBLINT_NET_TIMER_WHEEL_H_
#define WEBLINT_NET_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace weblint {

class TimerWheel {
 public:
  // `tick_micros` is the wheel granularity: deadlines within one tick are
  // indistinguishable to slot hashing (but still fire in exact (deadline,
  // id) order). `slots` ticks make one rotation; timers further out than a
  // rotation simply survive extra slot scans, they are not lost.
  explicit TimerWheel(std::uint64_t tick_micros = 1000, std::size_t slots = 256);

  // Arms a timer at an absolute clock deadline (microseconds, same epoch as
  // Clock::NowMicros). Returns a never-reused id. A deadline already in the
  // past fires on the next Advance().
  std::uint64_t Add(std::uint64_t deadline_micros, std::function<void()> callback);

  // Disarms. Returns false if the id is unknown — never armed, already
  // fired, or already cancelled. Safe to call from inside a firing
  // callback, including against other timers due in the same batch.
  bool Cancel(std::uint64_t id);

  // Fires every live timer with deadline <= now, in (deadline, id) order.
  // Callbacks may Add and Cancel freely; timers they add fire no earlier
  // than the next Advance(), even if already due. Returns the fire count.
  std::size_t Advance(std::uint64_t now_micros);

  // The earliest live deadline, or UINT64_MAX when no timer is armed. Used
  // by the reactor to bound its poll timeout.
  std::uint64_t NextDeadlineMicros() const;

  std::size_t size() const { return live_.size(); }

 private:
  struct Entry {
    std::uint64_t id;
    std::uint64_t deadline;
    std::function<void()> callback;
  };
  struct HeapItem {
    std::uint64_t deadline;
    std::uint64_t id;
    bool operator>(const HeapItem& other) const {
      return deadline != other.deadline ? deadline > other.deadline : id > other.id;
    }
  };

  std::size_t SlotFor(std::uint64_t deadline_micros) const;

  const std::uint64_t tick_micros_;
  std::vector<std::vector<Entry>> slots_;
  // Live ids -> slot index, for O(1) cancel and liveness checks against the
  // lazy min-heap below (stale heap tops are popped on query).
  std::unordered_map<std::uint64_t, std::size_t> live_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>> deadlines_;
  std::uint64_t next_id_ = 1;
  // The last tick Advance() fully processed. Entries armed for earlier
  // ticks are clamped into the current slot so they cannot be skipped.
  std::uint64_t cursor_tick_ = 0;
  bool advanced_once_ = false;
  // The batch currently firing, exposed so Cancel() can null out a
  // not-yet-run callback mid-Advance.
  std::vector<Entry>* firing_ = nullptr;
};

}  // namespace weblint

#endif  // WEBLINT_NET_TIMER_WHEEL_H_
