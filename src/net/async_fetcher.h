// AsyncFetcher: hundreds of concurrent policy-governed HTTP retrievals
// multiplexed on one reactor thread.
//
// The blocking stack (SocketFetcher under RobustFetcher) pins a thread per
// in-flight fetch, so poacher's crawl throughput scales with thread count.
// This fetcher runs the same wire protocol (byte-identical HTTP/1.0
// requests), the same per-state deadlines from FetchPolicy, and the same
// retry/backoff/redirect machine as RobustFetcher — but as a per-fetch
// state machine on a Reactor, so one thread sustains `max_inflight`
// concurrent retrievals. Classification is shared code
// (ClassifyFetchAttempt / IsRetryableOutcome / RobustFetcher::BackoffMicros),
// so a given server behaviour produces the same FetchResult either way.
//
// Threading: the fetcher owns its loop thread. FetchPageAsync/FetchHeadAsync
// enqueue from any thread; completion callbacks run on the loop thread and
// must not block (poacher's crawl hands results across a queue). The
// blocking UrlFetcher bridge (Get/Head/FetchPage/FetchHead) waits on a
// condition variable and must not be called from the loop thread.
//
// Clock: deadlines and backoff come from the injected Clock. Backoff is a
// reactor timer, not a sleep — with a FakeClock, retries only proceed when
// the test advances it (the blocking RobustFetcher instead advances the
// fake clock itself by sleeping). In-memory determinism tests therefore
// pair FakeClock chaos webs with the robot's pipelined-but-synchronous
// crawl path; AsyncFetcher is the real-socket engine.
#ifndef WEBLINT_NET_ASYNC_FETCHER_H_
#define WEBLINT_NET_ASYNC_FETCHER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "net/fetch_policy.h"
#include "net/fetcher.h"
#include "net/reactor.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

namespace weblint {

// The async-capable fetcher capability. Robot probes for it with
// dynamic_cast to decide whether a prefetch crawl can overlap real fetches
// or must fall back to issuing them inline.
class AsyncUrlFetcher {
 public:
  virtual ~AsyncUrlFetcher() = default;

  // Enqueues one policy-governed retrieval of `url` (redirects followed,
  // retries applied). `done` runs on the fetcher's loop thread exactly
  // once. Thread-safe; retrievals beyond the in-flight cap queue FIFO.
  virtual void FetchPageAsync(const Url& url, std::function<void(FetchResult)> done) = 0;

  // Wire-counter snapshot (same semantics as RobustFetcher::stats()).
  virtual FetchStats SnapshotStats() const = 0;
};

class AsyncFetcher : public UrlFetcher, public AsyncUrlFetcher {
 public:
  struct Options {
    FetchPolicy policy;
    // Null = system clock. See the header comment before pairing with
    // FakeClock.
    Clock* clock = nullptr;
    // Optional registry: mirrors the weblint_fetch_* series (shared family
    // names with RobustFetcher) plus the weblint_async_fetch_inflight gauge.
    MetricsRegistry* metrics = nullptr;
    // Concurrent wire retrievals; further requests queue.
    std::size_t max_inflight = 256;
    bool force_poll_backend = false;
  };

  AsyncFetcher();  // Default options (delegates; a `= {}` default argument
                   // trips GCC's nested-NSDMI bug).
  explicit AsyncFetcher(Options options);
  ~AsyncFetcher() override;

  AsyncFetcher(const AsyncFetcher&) = delete;
  AsyncFetcher& operator=(const AsyncFetcher&) = delete;

  // --- Async interface -------------------------------------------------
  void FetchPageAsync(const Url& url, std::function<void(FetchResult)> done) override;
  void FetchHeadAsync(const Url& url, std::function<void(FetchResult)> done);

  // --- Blocking bridge (not callable from the loop thread) -------------
  FetchResult FetchPage(const Url& url);
  FetchResult FetchHead(const Url& url);
  // UrlFetcher: degraded outcomes surface exactly like RobustFetcher's
  // Get/Head (status-0 responses with the transport field mapped).
  HttpResponse Get(const Url& url) override;
  HttpResponse Head(const Url& url) override;

  FetchStats SnapshotStats() const override;
  const FetchPolicy& policy() const { return options_.policy; }

  // Racy observability snapshots.
  std::size_t inflight() const { return inflight_.load(); }
  std::size_t queued() const;
  // High-water mark of concurrent wire retrievals (the bench's "sustains
  // >= N in-flight" evidence).
  std::size_t max_inflight_seen() const { return max_inflight_seen_.load(); }

 private:
  struct Job;

  void Enqueue(const Url& url, bool head, std::function<void(FetchResult)> done);
  // Loop-thread only from here down.
  void PumpQueue();
  void StartJob(std::unique_ptr<Job> job);
  void TryAttempt(Job* job);
  void BeginWire(Job* job);
  void OnSocketEvent(Job* job, std::uint32_t events);
  void OnConnectReady(Job* job);
  void ContinueSend(Job* job);
  void ContinueReceive(Job* job);
  void FinishWire(Job* job, bool timed_out, bool peer_closed);
  void OnAttemptResponse(Job* job, HttpResponse response);
  void AttemptLoopDone(Job* job, FetchOutcome outcome, HttpResponse response);
  void FinishJob(Job* job);
  void ArmJobTimer(Job* job, std::uint64_t deadline_us, void (AsyncFetcher::*on_fire)(Job*));
  void CancelJobTimer(Job* job);
  void OnConnectTimeout(Job* job);
  void OnSendTimeout(Job* job);
  void OnReadTimeout(Job* job);
  void OnBackoffTimer(Job* job);
  void CloseJobSocket(Job* job);

  Options options_;
  Clock* clock_;
  Reactor reactor_;
  std::thread loop_thread_;

  // Cross-thread handoff: Enqueue posts into the reactor; the loop owns
  // everything below.
  std::deque<std::unique_ptr<Job>> pending_;
  std::unordered_set<Job*> active_;
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> max_inflight_seen_{0};

  mutable std::mutex stats_mu_;
  FetchStats stats_;

  // Registry mirror (all null without a registry).
  Counter* m_requests_ = nullptr;
  Counter* m_attempts_ = nullptr;
  Counter* m_retries_ = nullptr;
  Counter* m_redirects_ = nullptr;
  Counter* m_bytes_ = nullptr;
  std::array<Counter*, kFetchOutcomeCount> m_outcomes_{};
  Histogram* m_latency_ = nullptr;
  Gauge* m_inflight_gauge_ = nullptr;
};

}  // namespace weblint

#endif  // WEBLINT_NET_ASYNC_FETCHER_H_
