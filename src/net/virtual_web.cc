#include "net/virtual_web.h"

namespace weblint {

std::string VirtualWeb::KeyFor(const Url& url) {
  std::string key = url.Authority();
  key += url.path.empty() ? "/" : url.path;
  if (!key.empty() && key.back() == '/') {
    // Directory URLs serve their index page slot directly.
  }
  if (!url.query.empty()) {
    key += "?" + url.query;
  }
  return key;
}

void VirtualWeb::AddPage(std::string_view url, std::string body, std::string content_type) {
  Entry entry;
  entry.status = 200;
  entry.body = std::move(body);
  entry.content_type = std::move(content_type);
  entries_[KeyFor(ParseUrl(url))] = std::move(entry);
}

void VirtualWeb::AddRedirect(std::string_view from, std::string_view to, int status) {
  Entry entry;
  entry.status = status;
  entry.redirect_to = std::string(to);
  entries_[KeyFor(ParseUrl(from))] = std::move(entry);
}

void VirtualWeb::AddError(std::string_view url, int status) {
  Entry entry;
  entry.status = status;
  entries_[KeyFor(ParseUrl(url))] = std::move(entry);
}

void VirtualWeb::SetRobotsTxt(std::string_view host, std::string body) {
  AddPage("http://" + std::string(host) + "/robots.txt", std::move(body), "text/plain");
}

const VirtualWeb::Entry* VirtualWeb::Lookup(const Url& url) const {
  const auto it = entries_.find(KeyFor(url));
  return it == entries_.end() ? nullptr : &it->second;
}

size_t VirtualWeb::HostRequestCount(std::string_view host) const {
  size_t n = 0;
  for (const RequestLogEntry& entry : request_log_) {
    if (entry.host == host) {
      ++n;
    }
  }
  return n;
}

std::vector<std::uint64_t> VirtualWeb::RequestTimesForHost(std::string_view host) const {
  std::vector<std::uint64_t> times;
  for (const RequestLogEntry& entry : request_log_) {
    if (entry.host == host) {
      times.push_back(entry.at_us);
    }
  }
  return times;
}

HttpResponse VirtualWeb::Serve(const Url& url, bool include_body) {
  RequestLogEntry logged;
  logged.host = url.Authority();
  logged.key = KeyFor(url);
  logged.head = !include_body;
  logged.at_us = clock_ != nullptr ? clock_->NowMicros() : 0;
  request_log_.push_back(std::move(logged));
  simulated_latency_us_ += per_request_us_;
  HttpResponse response;
  const Entry* entry = Lookup(url);
  if (entry == nullptr) {
    ++miss_count_;
    response.status = 404;
    response.reason = std::string(ReasonPhrase(404));
    return response;
  }
  response.status = entry->status;
  response.reason = std::string(ReasonPhrase(entry->status));
  if (!entry->redirect_to.empty()) {
    response.headers["location"] = entry->redirect_to;
  }
  if (!entry->content_type.empty()) {
    response.headers["content-type"] = entry->content_type;
  }
  if (include_body && entry->status == 200) {
    response.body = entry->body;
    simulated_latency_us_ += per_kilobyte_us_ * (entry->body.size() / 1024);
  }
  return response;
}

HttpResponse VirtualWeb::Get(const Url& url) {
  ++get_count_;
  return Serve(url, /*include_body=*/true);
}

HttpResponse VirtualWeb::Head(const Url& url) {
  ++head_count_;
  return Serve(url, /*include_body=*/false);
}

}  // namespace weblint
