// HTTP/1.0 wire format: parsing requests and serializing responses, so the
// gateway can sit behind a real socket (paper §3.4 gateways ran behind CGI;
// §4.6: "I regularly receive requests for a standard gateway distribution,
// particularly for installation behind firewalls, e.g. for intranet use").
#ifndef WEBLINT_NET_HTTP_WIRE_H_
#define WEBLINT_NET_HTTP_WIRE_H_

#include <map>
#include <string>
#include <string_view>

#include "net/response.h"
#include "util/result.h"
#include "util/strings.h"

namespace weblint {

struct HttpRequest {
  std::string method;   // "GET", "POST", "HEAD" (uppercased on parse).
  std::string target;   // Request target, e.g. "/check?url=x".
  std::string version;  // "HTTP/1.0" / "HTTP/1.1".
  std::map<std::string, std::string, ILess> headers;
  std::string body;

  std::string_view Header(std::string_view name) const {
    const auto it = headers.find(std::string(name));
    return it == headers.end() ? std::string_view() : std::string_view(it->second);
  }
  // The query string portion of the target ("" when none).
  std::string_view Query() const;
  // The path portion of the target.
  std::string_view Path() const;
};

// Parses a complete request message (header section + body). Tolerates bare
// LF line endings. The body is taken from Content-Length when present,
// otherwise everything after the blank line.
Result<HttpRequest> ParseHttpRequest(std::string_view raw);

// Parses a complete response message. Content-Length is untrusted: a
// malformed or negative value is ignored (body = everything after the blank
// line); a declared length longer than the bytes present marks the result
// body_truncated — short reads are surfaced, never silently accepted.
Result<HttpResponse> ParseHttpResponse(std::string_view raw);

// Serializes with CRLF line endings; Content-Length is set from the body.
std::string SerializeHttpRequest(const HttpRequest& request);
std::string SerializeHttpResponse(const HttpResponse& response,
                                  std::string_view version = "HTTP/1.0");

// True once `buffer` holds a complete message: the header section plus, if
// Content-Length is declared, that many body bytes. Drives the server's
// read loop.
bool HttpMessageComplete(std::string_view buffer);

// The byte length of the first complete message in `buffer` (header section
// plus the declared Content-Length body; no Content-Length means no body),
// or npos while the message is still incomplete. This is the keep-alive
// framing primitive: a connection buffer may hold several pipelined
// requests, and each must be parsed from exactly its own bytes — handing
// ParseHttpRequest the whole buffer would swallow the next request as the
// previous one's body.
size_t HttpMessageLength(std::string_view buffer);

}  // namespace weblint

#endif  // WEBLINT_NET_HTTP_WIRE_H_
