// HTTP/1.0 wire format: parsing requests and serializing responses, so the
// gateway can sit behind a real socket (paper §3.4 gateways ran behind CGI;
// §4.6: "I regularly receive requests for a standard gateway distribution,
// particularly for installation behind firewalls, e.g. for intranet use").
#ifndef WEBLINT_NET_HTTP_WIRE_H_
#define WEBLINT_NET_HTTP_WIRE_H_

#include <map>
#include <string>
#include <string_view>

#include "net/response.h"
#include "util/result.h"
#include "util/strings.h"

namespace weblint {

struct HttpRequest {
  std::string method;   // "GET", "POST", "HEAD" (uppercased on parse).
  std::string target;   // Request target, e.g. "/check?url=x".
  std::string version;  // "HTTP/1.0" / "HTTP/1.1".
  std::map<std::string, std::string, ILess> headers;
  std::string body;

  std::string_view Header(std::string_view name) const {
    const auto it = headers.find(std::string(name));
    return it == headers.end() ? std::string_view() : std::string_view(it->second);
  }
  // The query string portion of the target ("" when none).
  std::string_view Query() const;
  // The path portion of the target.
  std::string_view Path() const;
};

// Parses a complete request message (header section + body). Tolerates bare
// LF line endings. The body is taken from Content-Length when present,
// otherwise everything after the blank line.
Result<HttpRequest> ParseHttpRequest(std::string_view raw);

// Parses a complete response message. Content-Length is untrusted: a
// malformed or negative value is ignored (body = everything after the blank
// line); a declared length longer than the bytes present marks the result
// body_truncated — short reads are surfaced, never silently accepted.
// Transfer-Encoding: chunked takes precedence over Content-Length
// (RFC 7230 §3.3.3): the body is de-chunked, malformed chunk framing fails
// the parse, and a reply cut off before the final chunk is body_truncated.
// When `request_was_head` the response has no body by definition —
// Content-Length is metadata about the would-be GET body, never a
// truncation signal.
Result<HttpResponse> ParseHttpResponse(std::string_view raw,
                                       bool request_was_head = false);

// Serializes with CRLF line endings; Content-Length is set from the body.
std::string SerializeHttpRequest(const HttpRequest& request);
std::string SerializeHttpResponse(const HttpResponse& response,
                                  std::string_view version = "HTTP/1.0");

// Status line + header block + blank line, no body bytes. With
// `add_content_length` a Content-Length derived from `response.body` is
// added when the headers don't carry one. The chunked streaming path uses
// this with add_content_length=false after setting Transfer-Encoding.
std::string SerializeHttpResponseHead(const HttpResponse& response,
                                      std::string_view version,
                                      bool add_content_length);

// Frames one chunk of a chunked transfer-encoding body: lowercase hex size,
// CRLF, the data, CRLF. Empty data encodes to "" (a zero-size chunk would
// terminate the body early).
std::string EncodeChunk(std::string_view data);

// The body terminator: zero-size chunk plus the empty trailer section.
std::string_view FinalChunk();

// True when the header block declares Transfer-Encoding: chunked.
bool UsesChunkedEncoding(const std::map<std::string, std::string, ILess>& headers);

// Runs a streamed response's body producer to completion, appending into
// `body`, and clears the producer. Serving paths that must send a
// Content-Length body (legacy blocking loop, HTTP/1.0 clients, HEAD) call
// this; the bytes are identical to what the chunked path would have sent.
void MaterializeBodyStream(HttpResponse* response);

// True once `buffer` holds a complete message: the header section plus, if
// Content-Length is declared, that many body bytes (or, for chunked
// messages, framing through the final chunk and trailer). Drives the
// server's read loop.
bool HttpMessageComplete(std::string_view buffer);

// Response completeness as seen by a client: identical to
// HttpMessageComplete except that a reply to HEAD ends at the header block
// no matter what body length the headers advertise.
bool HttpResponseComplete(std::string_view buffer, bool request_was_head);

// The byte length of the first complete message in `buffer` (header section
// plus the declared Content-Length body; no Content-Length means no body;
// chunked framing is scanned through its final chunk), or npos while the
// message is still incomplete. This is the keep-alive framing primitive: a
// connection buffer may hold several pipelined requests, and each must be
// parsed from exactly its own bytes — handing ParseHttpRequest the whole
// buffer would swallow the next request as the previous one's body.
size_t HttpMessageLength(std::string_view buffer);

}  // namespace weblint

#endif  // WEBLINT_NET_HTTP_WIRE_H_
