// An in-memory web: the deterministic, offline substitute for live HTTP
// (see DESIGN.md "Substitutions"). Hosts, pages, redirects, 404s and
// robots.txt are all served from memory; a virtual latency model stands in
// for network time so robot benches can report meaningful "fetch cost"
// without touching a real network.
#ifndef WEBLINT_NET_VIRTUAL_WEB_H_
#define WEBLINT_NET_VIRTUAL_WEB_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/fetcher.h"
#include "util/clock.h"

namespace weblint {

class VirtualWeb : public UrlFetcher {
 public:
  VirtualWeb() = default;

  // Registers a page. `url` must be absolute (http://host/path). Replaces
  // any existing page at that URL.
  void AddPage(std::string_view url, std::string body,
               std::string content_type = "text/html");

  // Registers a redirect from one absolute URL to another (302 by default).
  void AddRedirect(std::string_view from, std::string_view to, int status = 302);

  // Registers an error response (e.g. 500) at a URL.
  void AddError(std::string_view url, int status);

  // Convenience: serves `body` as http://<host>/robots.txt.
  void SetRobotsTxt(std::string_view host, std::string body);

  size_t page_count() const { return entries_.size(); }

  // --- UrlFetcher -----------------------------------------------------
  HttpResponse Get(const Url& url) override;
  HttpResponse Head(const Url& url) override;

  // --- instrumentation --------------------------------------------------
  size_t get_count() const { return get_count_; }
  size_t head_count() const { return head_count_; }
  size_t miss_count() const { return miss_count_; }

  // One line per request, in arrival order. `at_us` samples the clock set
  // via SetClock (0 without one), so politeness tests can assert per-host
  // fetch spacing against a shared FakeClock.
  struct RequestLogEntry {
    std::string host;  // authority (host[:port])
    std::string key;   // full lookup key (host + path [+ query])
    bool head = false;
    std::uint64_t at_us = 0;
  };
  const std::vector<RequestLogEntry>& request_log() const { return request_log_; }

  // Timestamp source for the request log; null disables timestamps.
  void SetClock(Clock* clock) { clock_ = clock; }

  // Request count for one authority, across GET and HEAD.
  size_t HostRequestCount(std::string_view host) const;
  // Arrival-order timestamps of every request to one authority.
  std::vector<std::uint64_t> RequestTimesForHost(std::string_view host) const;

  // Virtual clock: each request costs `per_request_us` plus
  // `per_kilobyte_us` per KiB of body transferred (GET only).
  void SetLatencyModel(std::uint64_t per_request_us, std::uint64_t per_kilobyte_us) {
    per_request_us_ = per_request_us;
    per_kilobyte_us_ = per_kilobyte_us;
  }
  std::uint64_t simulated_latency_us() const { return simulated_latency_us_; }

  void ResetCounters() {
    get_count_ = head_count_ = miss_count_ = 0;
    simulated_latency_us_ = 0;
    request_log_.clear();
  }

 private:
  struct Entry {
    int status = 200;
    std::string content_type = "text/html";
    std::string body;
    std::string redirect_to;
  };

  // Canonical key for a URL: host[:port]path (query included, no fragment).
  static std::string KeyFor(const Url& url);
  const Entry* Lookup(const Url& url) const;
  HttpResponse Serve(const Url& url, bool include_body);

  std::map<std::string, Entry> entries_;
  std::vector<RequestLogEntry> request_log_;
  Clock* clock_ = nullptr;
  size_t get_count_ = 0;
  size_t head_count_ = 0;
  size_t miss_count_ = 0;
  std::uint64_t per_request_us_ = 0;
  std::uint64_t per_kilobyte_us_ = 0;
  std::uint64_t simulated_latency_us_ = 0;
};

}  // namespace weblint

#endif  // WEBLINT_NET_VIRTUAL_WEB_H_
