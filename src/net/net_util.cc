#include "net/net_util.h"

#include <cerrno>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace weblint {

bool SetNonBlocking(int fd, bool non_blocking) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int wanted = non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted == flags) return true;
  return fcntl(fd, F_SETFL, wanted) == 0;
}

int PollRetry(pollfd* fds, nfds_t count, int timeout_ms) {
  for (;;) {
    const int rc = ::poll(fds, count, timeout_ms);
    if (rc >= 0 || errno != EINTR) return rc;
  }
}

long ReadRetry(int fd, void* buf, size_t count) {
  for (;;) {
    const long rc = ::read(fd, buf, count);
    if (rc >= 0 || errno != EINTR) return rc;
  }
}

long SendRetry(int fd, const void* buf, size_t count, int flags) {
  for (;;) {
    const long rc = ::send(fd, buf, count, flags | MSG_NOSIGNAL);
    if (rc >= 0 || errno != EINTR) return rc;
  }
}

bool WriteAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const long rc = SendRetry(fd, data.data() + sent, data.size() - sent);
    if (rc <= 0) return false;
    sent += static_cast<size_t>(rc);
  }
  return true;
}

bool SendBestEffortNonBlocking(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const long rc =
        SendRetry(fd, data.data() + sent, data.size() - sent, MSG_DONTWAIT);
    if (rc <= 0) return false;  // EAGAIN or error: drop the rest.
    sent += static_cast<size_t>(rc);
  }
  return true;
}

}  // namespace weblint
