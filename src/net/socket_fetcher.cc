#include "net/socket_fetcher.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/http_wire.h"
#include "net/net_util.h"

namespace weblint {

namespace {

HttpResponse TransportFail(TransportError error, std::string reason) {
  HttpResponse response;
  response.status = 0;
  response.transport = error;
  response.reason = std::move(reason);
  return response;
}

// Connects with a deadline: non-blocking connect + poll for writability.
// Returns the fd, or -1 with `*error` set.
int ConnectWithDeadline(const sockaddr_in& addr, std::uint32_t deadline_ms,
                        TransportError* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = TransportError::kRefused;
    return -1;
  }
  if (!SetNonBlocking(fd, true)) {
    ::close(fd);
    *error = TransportError::kRefused;
    return -1;
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = PollRetry(&pfd, 1, static_cast<int>(deadline_ms));
    if (rc == 0) {
      ::close(fd);
      *error = TransportError::kTimeout;
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (rc < 0 || so_error != 0) {
      ::close(fd);
      *error = TransportError::kRefused;
      return -1;
    }
  } else if (rc < 0) {
    ::close(fd);
    *error = TransportError::kRefused;
    return -1;
  }
  // Back to blocking; reads use SO_RCVTIMEO. A socket stuck nonblocking
  // would turn every read into a spurious instant timeout, so this failing
  // is a connect failure, not something to shrug off.
  if (!SetNonBlocking(fd, false)) {
    ::close(fd);
    *error = TransportError::kRefused;
    return -1;
  }
  return fd;
}

}  // namespace

HttpResponse SocketFetcher::RoundTrip(const Url& url, std::string_view method) {
  if (!url.scheme.empty() && url.scheme != "http") {
    return TransportFail(TransportError::kRefused,
                         "SocketFetcher only serves http URLs");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  const std::string host = url.host == "localhost" || url.host.empty() ? "127.0.0.1" : url.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return TransportFail(TransportError::kRefused, "unresolvable host " + url.host);
  }
  std::uint32_t port = 80;
  if (!url.port.empty()) {
    ParseUint(url.port, &port);
  }
  addr.sin_port = htons(static_cast<std::uint16_t>(port));

  TransportError connect_error = TransportError::kRefused;
  const int fd = ConnectWithDeadline(addr, policy_.connect_deadline_ms, &connect_error);
  if (fd < 0) {
    return TransportFail(connect_error, "connect failed");
  }

  // Per-read deadline at the socket layer: a stalled server surfaces as
  // EAGAIN after read_deadline_ms, never as a hang.
  timeval tv{};
  tv.tv_sec = policy_.read_deadline_ms / 1000;
  tv.tv_usec = static_cast<long>(policy_.read_deadline_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  HttpRequest request;
  request.method = std::string(method);
  request.target = url.path.empty() ? "/" : url.path;
  if (!url.query.empty()) {
    request.target += "?" + url.query;
  }
  request.version = "HTTP/1.0";
  request.headers["host"] = url.Authority();
  const std::string wire = SerializeHttpRequest(request);
  size_t written = 0;
  while (written < wire.size()) {
    const long n = SendRetry(fd, wire.data() + written, wire.size() - written);
    if (n <= 0) {
      ::close(fd);
      return TransportFail(TransportError::kReset, "send failed");
    }
    written += static_cast<size_t>(n);
  }

  // Read until the message is complete, the peer closes, a cap is hit, or
  // the read deadline fires. The cap leaves one byte of headroom past
  // max_response_bytes so RobustFetcher can tell "too large" from "exactly
  // at the limit".
  const size_t cap = policy_.max_header_bytes + policy_.max_response_bytes + 1;
  // A reply to HEAD is framed at its header block: the server sends
  // Content-Length metadata but no body, so waiting for declared bytes
  // would misread every compliant HEAD reply as truncated.
  const bool is_head = IEquals(method, "HEAD");
  std::string buffer;
  char chunk[4096];
  bool timed_out = false;
  bool peer_closed = false;
  while (!HttpResponseComplete(buffer, is_head) && buffer.size() < cap) {
    const long n = ReadRetry(fd, chunk, sizeof(chunk));
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      timed_out = true;
      break;
    }
    if (n <= 0) {
      peer_closed = true;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  if (buffer.empty()) {
    return TransportFail(timed_out ? TransportError::kTimeout : TransportError::kReset,
                         timed_out ? "read timed out" : "connection closed before reply");
  }
  if (timed_out && !HttpResponseComplete(buffer, is_head)) {
    return TransportFail(TransportError::kTimeout, "read timed out mid-reply");
  }

  auto parsed = ParseHttpResponse(buffer, is_head);
  if (!parsed.ok()) {
    return TransportFail(TransportError::kMalformed, parsed.error());
  }
  HttpResponse response = std::move(parsed).value();
  // A peer that closed before delivering its declared Content-Length
  // produced a short read; ParseHttpResponse marks it. Nothing else to do —
  // body_truncated is the signal RobustFetcher classifies.
  (void)peer_closed;
  return response;
}

HttpResponse SocketFetcher::Get(const Url& url) { return RoundTrip(url, "GET"); }

HttpResponse SocketFetcher::Head(const Url& url) {
  HttpResponse response = RoundTrip(url, "HEAD");
  response.body.clear();
  return response;
}

}  // namespace weblint
