// HTTP response model for the LWP-substitute layer (paper §5.7: "All
// retrieving of pages and similar operations are performed using Gisle Aas'
// excellent LWP package").
#ifndef WEBLINT_NET_RESPONSE_H_
#define WEBLINT_NET_RESPONSE_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "util/strings.h"

namespace weblint {

// Transport-level failure classification, set by fetchers (and fault
// injectors) when no usable HTTP reply was obtained. A response carrying a
// transport error has status 0 and must never be treated as page content.
enum class TransportError {
  kNone,      // A complete HTTP reply (any status) was received.
  kRefused,   // Connection refused / could not connect.
  kTimeout,   // Connect or read deadline expired.
  kReset,     // Peer closed or reset the connection mid-message.
  kMalformed, // Reply bytes did not parse as HTTP.
};

std::string_view TransportErrorName(TransportError error);

struct HttpResponse {
  int status = 0;  // 200, 301, 404, ...
  std::string reason;
  std::map<std::string, std::string, ILess> headers;
  std::string body;
  // Transport verdict: anything but kNone means the exchange failed below
  // the HTTP layer and `status`/`body` are not meaningful.
  TransportError transport = TransportError::kNone;
  // The body is shorter than its declared Content-Length (short read /
  // mid-body drop). The truncated prefix is retained in `body`.
  bool body_truncated = false;
  // Optional incremental body producer. A handler that wants progressive
  // delivery sets this instead of (or in addition to) `body`; each sink()
  // call becomes one chunk on the wire when the serving path speaks
  // HTTP/1.1 chunked transfer-encoding. Paths that cannot stream (legacy
  // blocking loop, HTTP/1.0 clients, HEAD, fault-shaped connections)
  // materialize the producer into `body` first — the delivered bytes are
  // identical either way.
  using BodySink = std::function<void(std::string_view)>;
  std::function<void(const BodySink&)> body_stream;

  bool ok() const { return status >= 200 && status < 300; }
  bool IsRedirect() const { return status == 301 || status == 302 || status == 303 ||
                                   status == 307; }
  bool NotFound() const { return status == 404 || status == 410; }

  std::string_view Header(std::string_view name) const {
    const auto it = headers.find(std::string(name));
    return it == headers.end() ? std::string_view() : std::string_view(it->second);
  }
};

// Standard reason phrase for a status code ("OK", "Not Found", ...).
std::string_view ReasonPhrase(int status);

}  // namespace weblint

#endif  // WEBLINT_NET_RESPONSE_H_
