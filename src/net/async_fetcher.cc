#include "net/async_fetcher.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <utility>

#include "net/http_wire.h"
#include "net/net_util.h"
#include "net/robust_fetcher.h"
#include "util/strings.h"

namespace weblint {

namespace {

HttpResponse TransportFail(TransportError error, std::string reason) {
  HttpResponse response;
  response.status = 0;
  response.transport = error;
  response.reason = std::move(reason);
  return response;
}

}  // namespace

// One retrieval's full state: the RobustFetcher::FetchInner loop variables
// (hop, attempt, deadlines) plus the wire state the blocking stack keeps on
// its call stack (fd, buffers, which deadline is armed).
struct AsyncFetcher::Job {
  enum class State { kIdle, kBackoff, kConnecting, kSending, kReceiving };

  Url url;
  bool head = false;
  std::function<void(FetchResult)> done;

  FetchResult result;
  Url current;                    // Where the present hop points.
  std::uint32_t hop = 0;          // Redirect hops taken.
  std::uint32_t attempt = 0;      // 0-based attempt within this hop.
  std::uint64_t start_us = 0;     // Retrieval start (total deadline base).
  std::uint64_t attempt_start_us = 0;

  State state = State::kIdle;
  int fd = -1;
  std::uint64_t timer_id = 0;     // 0 = none armed.
  std::string out;                // Serialized request bytes.
  std::size_t out_sent = 0;
  std::string in;                 // Reply bytes so far.
  bool counted_wire = false;      // This attempt reached the wire.
};

AsyncFetcher::AsyncFetcher() : AsyncFetcher(Options{}) {}

AsyncFetcher::AsyncFetcher(Options options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::System()),
      reactor_(ReactorOptions{clock_, 1000, 256, options.force_poll_backend,
                              options.metrics}) {
  if (options_.max_inflight == 0) options_.max_inflight = 1;
  if (options_.metrics != nullptr) {
    MetricsRegistry* metrics = options_.metrics;
    m_requests_ = metrics->GetCounter("weblint_fetch_requests_total");
    m_attempts_ = metrics->GetCounter("weblint_fetch_attempts_total");
    m_retries_ = metrics->GetCounter("weblint_fetch_retries_total");
    m_redirects_ = metrics->GetCounter("weblint_fetch_redirects_total");
    m_bytes_ = metrics->GetCounter("weblint_fetch_bytes_total");
    for (size_t i = 0; i < kFetchOutcomeCount; ++i) {
      m_outcomes_[i] = metrics->GetCounter("weblint_fetch_outcomes_total", "outcome",
                                           FetchOutcomeName(static_cast<FetchOutcome>(i)));
    }
    m_latency_ = metrics->GetHistogram("weblint_fetch_micros");
    m_inflight_gauge_ = metrics->GetGauge("weblint_async_fetch_inflight");
  }
  loop_thread_ = std::thread([this] { reactor_.Run(); });
}

AsyncFetcher::~AsyncFetcher() {
  reactor_.Stop();
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  // The loop is gone: abandon whatever was still in flight. Callbacks are
  // not invoked — destroying the fetcher with work outstanding is a caller
  // bug everywhere except process teardown.
  for (Job* job : active_) {
    if (job->fd >= 0) ::close(job->fd);
    delete job;
  }
  active_.clear();
}

void AsyncFetcher::FetchPageAsync(const Url& url, std::function<void(FetchResult)> done) {
  Enqueue(url, /*head=*/false, std::move(done));
}

void AsyncFetcher::FetchHeadAsync(const Url& url, std::function<void(FetchResult)> done) {
  Enqueue(url, /*head=*/true, std::move(done));
}

void AsyncFetcher::Enqueue(const Url& url, bool head,
                           std::function<void(FetchResult)> done) {
  auto job = std::make_unique<Job>();
  job->url = url;
  job->head = head;
  job->done = std::move(done);
  // Hand the job to the loop thread; all state from here on is loop-owned.
  Job* raw = job.release();
  reactor_.Post([this, raw] {
    pending_.emplace_back(raw);
    PumpQueue();
  });
}

std::size_t AsyncFetcher::queued() const {
  // Loop-owned deque; off-thread readers get a racy but harmless size.
  return pending_.size();
}

FetchResult AsyncFetcher::FetchPage(const Url& url) {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  FetchResult out;
  FetchPageAsync(url, [&](FetchResult result) {
    std::lock_guard<std::mutex> lock(mu);
    out = std::move(result);
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  return out;
}

FetchResult AsyncFetcher::FetchHead(const Url& url) {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  FetchResult out;
  FetchHeadAsync(url, [&](FetchResult result) {
    std::lock_guard<std::mutex> lock(mu);
    out = std::move(result);
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  return out;
}

HttpResponse AsyncFetcher::Get(const Url& url) {
  FetchResult result = FetchPage(url);
  if (result.ok()) {
    return std::move(result.response);
  }
  // Same degraded mapping as RobustFetcher::Get, so callers (the robot's
  // robots.txt path, check_url) see identical shapes either way.
  HttpResponse degraded;
  degraded.status = 0;
  degraded.reason = std::string(FetchOutcomeName(result.outcome));
  degraded.transport = result.outcome == FetchOutcome::kRefused ? TransportError::kRefused
                       : result.outcome == FetchOutcome::kTimeout ? TransportError::kTimeout
                                                                  : TransportError::kReset;
  return degraded;
}

HttpResponse AsyncFetcher::Head(const Url& url) {
  FetchResult result = FetchHead(url);
  if (result.ok()) {
    return std::move(result.response);
  }
  HttpResponse degraded;
  degraded.status = 0;
  degraded.reason = std::string(FetchOutcomeName(result.outcome));
  return degraded;
}

FetchStats AsyncFetcher::SnapshotStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void AsyncFetcher::PumpQueue() {
  while (!pending_.empty() && active_.size() < options_.max_inflight) {
    std::unique_ptr<Job> job = std::move(pending_.front());
    pending_.pop_front();
    StartJob(std::move(job));
  }
  inflight_.store(active_.size());
  std::size_t seen = max_inflight_seen_.load();
  while (active_.size() > seen &&
         !max_inflight_seen_.compare_exchange_weak(seen, active_.size())) {
  }
  if (m_inflight_gauge_ != nullptr) {
    m_inflight_gauge_->Set(static_cast<std::int64_t>(active_.size()));
  }
}

void AsyncFetcher::StartJob(std::unique_ptr<Job> owned) {
  Job* job = owned.release();
  active_.insert(job);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  if (m_requests_ != nullptr) m_requests_->Increment();
  job->start_us = clock_->NowMicros();
  job->current = job->url;
  job->result.final_url = job->url;
  TryAttempt(job);
}

// The FetchInner attempt loop, unrolled into continuations: deadline check,
// backoff-before-retry, then the wire.
void AsyncFetcher::TryAttempt(Job* job) {
  const std::uint64_t total_us =
      static_cast<std::uint64_t>(options_.policy.total_deadline_ms) * 1000;
  if (clock_->NowMicros() - job->start_us > total_us) {
    AttemptLoopDone(job, FetchOutcome::kTimeout, HttpResponse{});
    return;
  }
  if (job->attempt > 0) {
    job->state = Job::State::kBackoff;
    const std::uint64_t delay =
        RobustFetcher::BackoffMicros(options_.policy, job->current, job->attempt);
    ArmJobTimer(job, clock_->NowMicros() + delay, &AsyncFetcher::OnBackoffTimer);
    return;
  }
  BeginWire(job);
}

void AsyncFetcher::OnBackoffTimer(Job* job) {
  job->timer_id = 0;
  const std::uint64_t total_us =
      static_cast<std::uint64_t>(options_.policy.total_deadline_ms) * 1000;
  if (clock_->NowMicros() - job->start_us > total_us) {
    // The backoff ate the total deadline: this retry never reached the
    // wire, so it counts as neither an attempt nor a retry (the same
    // identity RobustFetcher keeps).
    AttemptLoopDone(job, FetchOutcome::kTimeout, HttpResponse{});
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.retries;
  }
  if (m_retries_ != nullptr) m_retries_->Increment();
  BeginWire(job);
}

void AsyncFetcher::BeginWire(Job* job) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.attempts;
  }
  if (m_attempts_ != nullptr) m_attempts_->Increment();
  ++job->result.attempts;
  job->attempt_start_us = clock_->NowMicros();
  job->in.clear();
  job->out.clear();
  job->out_sent = 0;

  const Url& url = job->current;
  if (!url.scheme.empty() && url.scheme != "http") {
    OnAttemptResponse(job, TransportFail(TransportError::kRefused,
                                         "AsyncFetcher only serves http URLs"));
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  const std::string host =
      url.host == "localhost" || url.host.empty() ? "127.0.0.1" : url.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    OnAttemptResponse(job, TransportFail(TransportError::kRefused,
                                         "unresolvable host " + url.host));
    return;
  }
  std::uint32_t port = 80;
  if (!url.port.empty()) {
    ParseUint(url.port, &port);
  }
  addr.sin_port = htons(static_cast<std::uint16_t>(port));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 || !SetNonBlocking(fd, true)) {
    if (fd >= 0) ::close(fd);
    OnAttemptResponse(job, TransportFail(TransportError::kRefused, "connect failed"));
    return;
  }
  job->fd = fd;

  // Identical request bytes to SocketFetcher::RoundTrip — byte-identity of
  // what goes on the wire is part of the swap-in contract.
  HttpRequest request;
  request.method = job->head ? "HEAD" : "GET";
  request.target = url.path.empty() ? "/" : url.path;
  if (!url.query.empty()) {
    request.target += "?" + url.query;
  }
  request.version = "HTTP/1.0";
  request.headers["host"] = url.Authority();
  job->out = SerializeHttpRequest(request);

  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    OnConnectReady(job);
    return;
  }
  if (errno != EINPROGRESS) {
    CloseJobSocket(job);
    OnAttemptResponse(job, TransportFail(TransportError::kRefused, "connect failed"));
    return;
  }
  job->state = Job::State::kConnecting;
  reactor_.Watch(fd, Reactor::kWritable,
                 [this, job](std::uint32_t events) { OnSocketEvent(job, events); });
  ArmJobTimer(job,
              clock_->NowMicros() +
                  static_cast<std::uint64_t>(options_.policy.connect_deadline_ms) * 1000,
              &AsyncFetcher::OnConnectTimeout);
}

void AsyncFetcher::OnSocketEvent(Job* job, std::uint32_t events) {
  switch (job->state) {
    case Job::State::kConnecting:
      OnConnectReady(job);
      return;
    case Job::State::kSending:
      ContinueSend(job);
      return;
    case Job::State::kReceiving:
      (void)events;  // Level-triggered: any wake means "try to read".
      ContinueReceive(job);
      return;
    default:
      return;
  }
}

void AsyncFetcher::OnConnectReady(Job* job) {
  CancelJobTimer(job);
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (::getsockopt(job->fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 || so_error != 0) {
    CloseJobSocket(job);
    OnAttemptResponse(job, TransportFail(TransportError::kRefused, "connect failed"));
    return;
  }
  job->state = Job::State::kSending;
  // The blocking fetcher's SO_SNDTIMEO: the whole send gets one read
  // deadline of budget; expiry surfaces as a failed send (kReset).
  ArmJobTimer(job,
              clock_->NowMicros() +
                  static_cast<std::uint64_t>(options_.policy.read_deadline_ms) * 1000,
              &AsyncFetcher::OnSendTimeout);
  if (job->fd >= 0) {
    reactor_.Watch(job->fd, Reactor::kWritable,
                   [this, job](std::uint32_t events) { OnSocketEvent(job, events); });
  }
  ContinueSend(job);
}

void AsyncFetcher::ContinueSend(Job* job) {
  while (job->out_sent < job->out.size()) {
    const long n = SendRetry(job->fd, job->out.data() + job->out_sent,
                             job->out.size() - job->out_sent);
    if (n > 0) {
      job->out_sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // Stay watched for writability; the send timer is armed.
    }
    CancelJobTimer(job);
    CloseJobSocket(job);
    OnAttemptResponse(job, TransportFail(TransportError::kReset, "send failed"));
    return;
  }
  // Request fully on the wire: switch to receiving with a fresh read
  // deadline per arriving chunk (the SO_RCVTIMEO analog).
  CancelJobTimer(job);
  job->state = Job::State::kReceiving;
  reactor_.SetEvents(job->fd, Reactor::kReadable);
  ArmJobTimer(job,
              clock_->NowMicros() +
                  static_cast<std::uint64_t>(options_.policy.read_deadline_ms) * 1000,
              &AsyncFetcher::OnReadTimeout);
  ContinueReceive(job);
}

void AsyncFetcher::ContinueReceive(Job* job) {
  const std::size_t cap =
      options_.policy.max_header_bytes + options_.policy.max_response_bytes + 1;
  char chunk[4096];
  bool progressed = false;
  while (!HttpResponseComplete(job->in, job->head) && job->in.size() < cap) {
    const long n = ReadRetry(job->fd, chunk, sizeof(chunk));
    if (n > 0) {
      job->in.append(chunk, static_cast<std::size_t>(n));
      progressed = true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (progressed) {
        // Bytes arrived: the per-read deadline starts over, exactly like
        // each blocking read() call getting a full SO_RCVTIMEO budget.
        CancelJobTimer(job);
        ArmJobTimer(job,
                    clock_->NowMicros() +
                        static_cast<std::uint64_t>(options_.policy.read_deadline_ms) * 1000,
                    &AsyncFetcher::OnReadTimeout);
      }
      return;
    }
    FinishWire(job, /*timed_out=*/false, /*peer_closed=*/true);
    return;
  }
  FinishWire(job, /*timed_out=*/false, /*peer_closed=*/false);
}

void AsyncFetcher::OnConnectTimeout(Job* job) {
  job->timer_id = 0;
  CloseJobSocket(job);
  OnAttemptResponse(job, TransportFail(TransportError::kTimeout, "connect failed"));
}

void AsyncFetcher::OnSendTimeout(Job* job) {
  job->timer_id = 0;
  CloseJobSocket(job);
  OnAttemptResponse(job, TransportFail(TransportError::kReset, "send failed"));
}

void AsyncFetcher::OnReadTimeout(Job* job) {
  job->timer_id = 0;
  FinishWire(job, /*timed_out=*/true, /*peer_closed=*/false);
}

// The tail of SocketFetcher::RoundTrip: map (buffer, timed_out, complete)
// to a response or a TransportError, byte-compatibly.
void AsyncFetcher::FinishWire(Job* job, bool timed_out, bool peer_closed) {
  (void)peer_closed;
  CancelJobTimer(job);
  CloseJobSocket(job);
  std::string& buffer = job->in;

  if (buffer.empty()) {
    OnAttemptResponse(job,
                      TransportFail(timed_out ? TransportError::kTimeout : TransportError::kReset,
                                    timed_out ? "read timed out" : "connection closed before reply"));
    return;
  }
  if (timed_out && !HttpResponseComplete(buffer, job->head)) {
    OnAttemptResponse(job, TransportFail(TransportError::kTimeout, "read timed out mid-reply"));
    return;
  }
  auto parsed = ParseHttpResponse(buffer, job->head);
  if (!parsed.ok()) {
    OnAttemptResponse(job, TransportFail(TransportError::kMalformed, parsed.error()));
    return;
  }
  HttpResponse response = std::move(parsed).value();
  if (job->head) {
    response.body.clear();
  }
  OnAttemptResponse(job, std::move(response));
}

void AsyncFetcher::OnAttemptResponse(Job* job, HttpResponse response) {
  const FetchOutcome outcome = ClassifyFetchAttempt(
      options_.policy, response, clock_->NowMicros() - job->attempt_start_us);
  if (IsRetryableOutcome(outcome) && job->attempt < options_.policy.retries) {
    ++job->attempt;
    TryAttempt(job);
    return;
  }
  AttemptLoopDone(job, outcome, std::move(response));
}

// The per-hop tail of RobustFetcher::FetchInner: classify the hop's final
// outcome, follow a redirect, or finish.
void AsyncFetcher::AttemptLoopDone(Job* job, FetchOutcome outcome, HttpResponse response) {
  FetchResult& result = job->result;
  if (outcome != FetchOutcome::kOk) {
    result.outcome = outcome;
    result.final_url = job->current;
    result.detail = StrFormat("%s after %d attempt(s): %s", FetchOutcomeName(outcome),
                              result.attempts, job->current.Serialize());
    FinishJob(job);
    return;
  }

  if (response.IsRedirect()) {
    const std::string_view location = response.Header("location");
    if (!location.empty()) {
      if (job->hop >= options_.policy.max_redirects) {
        result.outcome = FetchOutcome::kRedirectLoop;
        result.final_url = job->current;
        result.detail = StrFormat("redirect_loop after %d hop(s): %s", job->hop,
                                  job->current.Serialize());
        FinishJob(job);
        return;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.redirects_followed;
      }
      if (m_redirects_ != nullptr) m_redirects_->Increment();
      ++result.redirect_hops;
      job->current = ResolveUrl(job->current, location);
      ++job->hop;
      job->attempt = 0;
      TryAttempt(job);
      return;
    }
    // A redirect without a Location is a complete (if useless) reply.
  }

  result.outcome = FetchOutcome::kOk;
  result.final_url = job->current;
  result.response = std::move(response);
  FinishJob(job);
}

void AsyncFetcher::FinishJob(Job* job) {
  CancelJobTimer(job);
  CloseJobSocket(job);
  // The single outcome-counting site, mirroring RobustFetcher::Fetch.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.by_outcome[static_cast<std::size_t>(job->result.outcome)];
    if (job->result.ok()) {
      stats_.bytes_fetched += job->result.response.body.size();
    }
  }
  if (m_outcomes_[static_cast<std::size_t>(job->result.outcome)] != nullptr) {
    m_outcomes_[static_cast<std::size_t>(job->result.outcome)]->Increment();
    if (job->result.ok()) {
      m_bytes_->Increment(job->result.response.body.size());
    }
    m_latency_->Record(clock_->NowMicros() - job->start_us);
  }
  std::function<void(FetchResult)> done = std::move(job->done);
  FetchResult result = std::move(job->result);
  active_.erase(job);
  delete job;
  // Pump before signalling completion so the inflight gauge already reflects
  // this job's retirement when a blocked caller observes the result.
  PumpQueue();
  if (done) {
    done(std::move(result));
  }
}

void AsyncFetcher::ArmJobTimer(Job* job, std::uint64_t deadline_us,
                               void (AsyncFetcher::*on_fire)(Job*)) {
  CancelJobTimer(job);
  job->timer_id = reactor_.AddTimer(deadline_us, [this, job, on_fire] {
    (this->*on_fire)(job);
  });
}

void AsyncFetcher::CancelJobTimer(Job* job) {
  if (job->timer_id != 0) {
    reactor_.CancelTimer(job->timer_id);
    job->timer_id = 0;
  }
}

void AsyncFetcher::CloseJobSocket(Job* job) {
  if (job->fd >= 0) {
    reactor_.Unwatch(job->fd);
    ::close(job->fd);
    job->fd = -1;
  }
}

}  // namespace weblint
