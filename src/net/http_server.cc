#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "util/strings.h"

namespace weblint {

namespace {

// Hard ceiling on request size: the gateway caps submissions at 1 MiB; give
// headers some headroom.
constexpr size_t kMaxRequestBytes = 2u << 20;

// Writes all of `data` to `fd`, retrying on short writes. Uses send() with
// MSG_NOSIGNAL so a client that hung up mid-response surfaces as EPIPE
// instead of a process-killing SIGPIPE.
bool WriteAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpServer::~HttpServer() { Close(); }

void HttpServer::EnableMetrics(MetricsRegistry* registry, Clock* clock) {
  metrics_ = registry;
  if (registry == nullptr) {
    requests_total_ = nullptr;
    request_micros_ = nullptr;
    responses_by_class_ = {};
    return;
  }
  metrics_clock_ = clock != nullptr ? clock : Clock::System();
  requests_total_ = registry->GetCounter("weblint_http_requests_total");
  request_micros_ = registry->GetHistogram("weblint_http_request_micros");
  static constexpr const char* kClasses[] = {"1xx", "2xx", "3xx", "4xx", "5xx"};
  for (size_t i = 0; i < responses_by_class_.size(); ++i) {
    responses_by_class_[i] =
        registry->GetCounter("weblint_http_responses_total", "class", kClasses[i]);
  }
}

Status HttpServer::Listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Fail(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    Close();
    return Fail("bind: " + error);
  }
  if (::listen(listen_fd_, 16) < 0) {
    const std::string error = std::strerror(errno);
    Close();
    return Fail("listen: " + error);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  return Status::Ok();
}

Status HttpServer::ServeOne() {
  const int fd = listen_fd_.load();
  if (fd < 0) {
    return Fail("server is not listening");
  }
  const int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) {
    return Fail(std::string("accept: ") + std::strerror(errno));
  }

  std::string buffer;
  char chunk[4096];
  while (!HttpMessageComplete(buffer) && buffer.size() < kMaxRequestBytes) {
    const ssize_t n = ::read(client, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // Peer closed (or error): parse what we have.
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  HttpResponse response;
  auto request = ParseHttpRequest(buffer);
  if (!request.ok()) {
    response.status = 400;
    response.reason = "Bad Request";
    response.headers["content-type"] = "text/plain";
    response.body = request.error() + "\n";
  } else if (metrics_ != nullptr && request->method == "GET" &&
             (request->target == "/metrics" || IStartsWith(request->target, "/metrics?"))) {
    // The scrape endpoint answers from the registry directly; it is not a
    // gateway request and does not count into the request series (scraping
    // every 15s must not dominate the numbers it reports).
    response.status = 200;
    response.reason = "OK";
    response.headers["content-type"] = "text/plain; version=0.0.4";
    response.body = metrics_->RenderPrometheus();
  } else {
    const std::uint64_t begin_us = metrics_ != nullptr ? metrics_clock_->NowMicros() : 0;
    response = handler_(*request);
    if (metrics_ != nullptr) {
      requests_total_->Increment();
      request_micros_->Record(metrics_clock_->NowMicros() - begin_us);
      const int status_class = response.status / 100;
      if (status_class >= 1 && status_class <= 5) {
        responses_by_class_[static_cast<size_t>(status_class - 1)]->Increment();
      }
    }
  }
  // A failed write means the peer went away (early disconnect, reset): a
  // fact about that one client, not about the server. Count it, drop the
  // connection, and keep serving — a public gateway must survive browsers
  // that close the tab mid-response.
  std::string serialized = SerializeHttpResponse(response);
  if (wire_shaper_ == nullptr) {
    if (!WriteAll(client, serialized)) {
      ++write_failures_;
    }
    ::close(client);
    return Status::Ok();
  }

  // Fault-injection path: deliver whatever the shaper dictates — possibly
  // late, in slow chunks, truncated, or nothing at all.
  const WirePlan plan =
      request.ok() ? wire_shaper_(*request, std::move(serialized))
                   : WirePlan{std::move(serialized), 0, 0, 0, false};
  if (plan.stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(plan.stall_ms));
  }
  if (!plan.close_before_write) {
    bool write_ok = true;
    if (plan.chunk_bytes == 0) {
      write_ok = WriteAll(client, plan.bytes);
    } else {
      for (size_t at = 0; write_ok && at < plan.bytes.size(); at += plan.chunk_bytes) {
        write_ok = WriteAll(client, std::string_view(plan.bytes).substr(at, plan.chunk_bytes));
        if (write_ok && plan.chunk_delay_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(plan.chunk_delay_ms));
        }
      }
    }
    if (!write_ok) {
      ++write_failures_;
    }
  }
  ::close(client);
  return Status::Ok();
}

Status HttpServer::Serve(size_t max_requests) {
  size_t handled = 0;
  while (max_requests == 0 || handled < max_requests) {
    if (Status s = ServeOne(); !s.ok()) {
      return s;  // Accept-side errors only: the listening socket is gone.
    }
    ++handled;
  }
  return Status::Ok();
}

void HttpServer::Close() {
  // exchange() so concurrent Close() calls can't double-close the fd.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::close(fd);
  }
}

}  // namespace weblint
