#include "net/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "util/strings.h"

namespace weblint {

namespace {

// Hard ceiling on request size: the gateway caps submissions at 1 MiB; give
// headers some headroom.
constexpr size_t kMaxRequestBytes = 2u << 20;

// How long a worker parks in poll() before re-checking its deadline clock
// and the drain flag. Real time, deliberately short: with a FakeClock the
// deadline only moves when the test advances it, and this slice bounds how
// long the worker takes to notice.
constexpr int kPollSliceMs = 10;

// Writes all of `data` to `fd`, retrying on short writes. Uses send() with
// MSG_NOSIGNAL so a client that hung up mid-response surfaces as EPIPE
// instead of a process-killing SIGPIPE.
bool WriteAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

void SetNonBlocking(int fd, bool non_blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return;
  }
  ::fcntl(fd, F_SETFL, non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

enum class WriteOutcome { kOk, kPeerError, kDeadline };

// Writes all of `data` to a non-blocking `fd`, waiting for writability in
// short poll slices and giving up once `clock` passes `deadline_us`. A slow
// (or stalled) reader therefore cannot pin a worker past the request
// deadline.
WriteOutcome WriteWithDeadline(int fd, std::string_view data, std::uint64_t deadline_us,
                               Clock* clock) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (clock->NowMicros() >= deadline_us) {
        return WriteOutcome::kDeadline;
      }
      pollfd p{fd, POLLOUT, 0};
      if (::poll(&p, 1, kPollSliceMs) < 0 && errno != EINTR) {
        return WriteOutcome::kPeerError;
      }
      continue;
    }
    return WriteOutcome::kPeerError;
  }
  return WriteOutcome::kOk;
}

// HTTP/1.1 defaults to keep-alive unless the client says close; HTTP/1.0
// (and anything older) defaults to close unless the client asks to keep.
bool WantsKeepAlive(const HttpRequest& request) {
  const std::string_view connection = request.Header("connection");
  if (IEquals(request.version, "HTTP/1.1")) {
    return !IContains(connection, "close");
  }
  return IContains(connection, "keep-alive");
}

// Fire-and-forget error response (408/413/shed paths): one send attempt,
// no retry — the connection is being torn down either way.
void SendBestEffort(int fd, const HttpResponse& response) {
  const std::string bytes = SerializeHttpResponse(response, "HTTP/1.1");
  (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
}

HttpResponse SimpleResponse(int status, std::string_view reason, std::string_view body) {
  HttpResponse response;
  response.status = status;
  response.reason = std::string(reason);
  response.headers["content-type"] = "text/plain";
  response.headers["connection"] = "close";
  response.body = std::string(body);
  return response;
}

}  // namespace

HttpServer::~HttpServer() { Drain(); }

void HttpServer::EnableMetrics(MetricsRegistry* registry, Clock* clock) {
  metrics_ = registry;
  if (registry == nullptr) {
    requests_total_ = nullptr;
    request_micros_ = nullptr;
    responses_by_class_ = {};
    inflight_gauge_ = nullptr;
    queue_gauge_ = nullptr;
    rejected_counter_ = nullptr;
    connections_counter_ = nullptr;
    keepalive_counter_ = nullptr;
    deadline_kills_counter_ = nullptr;
    return;
  }
  metrics_clock_ = clock != nullptr ? clock : Clock::System();
  requests_total_ = registry->GetCounter("weblint_http_requests_total");
  request_micros_ = registry->GetHistogram("weblint_http_request_micros");
  static constexpr const char* kClasses[] = {"1xx", "2xx", "3xx", "4xx", "5xx"};
  for (size_t i = 0; i < responses_by_class_.size(); ++i) {
    responses_by_class_[i] =
        registry->GetCounter("weblint_http_responses_total", "class", kClasses[i]);
  }
  inflight_gauge_ = registry->GetGauge("weblint_http_inflight");
  queue_gauge_ = registry->GetGauge("weblint_http_queue_depth");
  rejected_counter_ = registry->GetCounter("weblint_http_rejected_total");
  connections_counter_ = registry->GetCounter("weblint_http_connections_total");
  keepalive_counter_ = registry->GetCounter("weblint_http_keepalive_reuse_total");
  deadline_kills_counter_ = registry->GetCounter("weblint_http_deadline_kills_total");
}

Status HttpServer::Listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Fail(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    Close();
    return Fail("bind: " + error);
  }
  if (::listen(listen_fd_, 128) < 0) {
    const std::string error = std::strerror(errno);
    Close();
    return Fail("listen: " + error);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  return Status::Ok();
}

HttpResponse HttpServer::Dispatch(const Result<HttpRequest>& request) {
  HttpResponse response;
  if (!request.ok()) {
    response.status = 400;
    response.reason = "Bad Request";
    response.headers["content-type"] = "text/plain";
    response.body = request.error() + "\n";
    return response;
  }
  if (metrics_ != nullptr && request->method == "GET" &&
      (request->target == "/metrics" || IStartsWith(request->target, "/metrics?"))) {
    // The scrape endpoint answers from the registry directly; it is not a
    // gateway request and does not count into the request series (scraping
    // every 15s must not dominate the numbers it reports).
    response.status = 200;
    response.reason = "OK";
    response.headers["content-type"] = "text/plain; version=0.0.4";
    response.body = metrics_->RenderPrometheus();
    return response;
  }
  const std::uint64_t begin_us = metrics_ != nullptr ? metrics_clock_->NowMicros() : 0;
  response = handler_(*request);
  if (metrics_ != nullptr) {
    requests_total_->Increment();
    request_micros_->Record(metrics_clock_->NowMicros() - begin_us);
    const int status_class = response.status / 100;
    if (status_class >= 1 && status_class <= 5) {
      responses_by_class_[static_cast<size_t>(status_class - 1)]->Increment();
    }
  }
  return response;
}

void HttpServer::DeliverShaped(int client, const Result<HttpRequest>& request,
                               std::string serialized) {
  // Fault-injection path: deliver whatever the shaper dictates — possibly
  // late, in slow chunks, truncated, or nothing at all.
  const WirePlan plan =
      request.ok() ? wire_shaper_(*request, std::move(serialized))
                   : WirePlan{std::move(serialized), 0, 0, 0, false};
  if (plan.stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(plan.stall_ms));
  }
  if (!plan.close_before_write) {
    bool write_ok = true;
    if (plan.chunk_bytes == 0) {
      write_ok = WriteAll(client, plan.bytes);
    } else {
      for (size_t at = 0; write_ok && at < plan.bytes.size(); at += plan.chunk_bytes) {
        write_ok = WriteAll(client, std::string_view(plan.bytes).substr(at, plan.chunk_bytes));
        if (write_ok && plan.chunk_delay_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(plan.chunk_delay_ms));
        }
      }
    }
    if (!write_ok) {
      ++write_failures_;
    }
  }
  ::close(client);
}

Status HttpServer::ServeOne() {
  const int fd = listen_fd_.load();
  if (fd < 0) {
    return Fail("server is not listening");
  }
  const int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) {
    return Fail(std::string("accept: ") + std::strerror(errno));
  }

  std::string buffer;
  char chunk[4096];
  while (!HttpMessageComplete(buffer) && buffer.size() < kMaxRequestBytes) {
    const ssize_t n = ::read(client, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // Peer closed (or error): parse what we have.
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  auto request = ParseHttpRequest(buffer);
  // A failed write means the peer went away (early disconnect, reset): a
  // fact about that one client, not about the server. Count it, drop the
  // connection, and keep serving — a public gateway must survive browsers
  // that close the tab mid-response.
  std::string serialized = SerializeHttpResponse(Dispatch(request));
  if (wire_shaper_ == nullptr) {
    if (!WriteAll(client, serialized)) {
      ++write_failures_;
    }
    ::close(client);
    return Status::Ok();
  }
  DeliverShaped(client, request, std::move(serialized));
  return Status::Ok();
}

Status HttpServer::Serve(size_t max_requests) {
  size_t handled = 0;
  while (max_requests == 0 || handled < max_requests) {
    if (Status s = ServeOne(); !s.ok()) {
      return s;  // Accept-side errors only: the listening socket is gone.
    }
    ++handled;
  }
  return Status::Ok();
}

Status HttpServer::Start(const HttpServerOptions& options) {
  const int fd = listen_fd_.load();
  if (fd < 0) {
    return Fail("Start() requires a listening socket (call Listen first)");
  }
  if (started_.load()) {
    return Fail("server already started");
  }
  options_ = options;
  if (options_.threads == 0) {
    options_.threads = ThreadPool::DefaultThreadCount();
  }
  if (options_.max_requests_per_connection == 0) {
    options_.max_requests_per_connection = 1;
  }
  serve_clock_ = options_.clock != nullptr ? options_.clock : Clock::System();
  // The accept loop polls, so the listener must never block an accept that
  // lost a wakeup race.
  SetNonBlocking(fd, true);
  pool_ = std::make_unique<ThreadPool>(options_.threads);
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = listen_fd_.load();
    if (fd < 0 || draining_.load()) {
      return;
    }
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, kPollSliceMs);
    if (pr < 0 && errno != EINTR) {
      return;
    }
    if (pr <= 0) {
      continue;  // Timeout or EINTR: re-check the drain flag and listener.
    }
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      return;  // The listener is gone (drain closed it) or unusable.
    }
    if (draining_.load()) {
      ::close(client);
      continue;
    }
    if (queued_.load() >= options_.max_queue) {
      // Shed, never stall: the 503 is written from the accept thread, but
      // it is a few hundred bytes into an empty socket buffer — it cannot
      // block the loop the way dispatching a lint request would.
      ShedConnection(client);
      continue;
    }
    queued_.fetch_add(1);
    connections_.fetch_add(1);
    if (queue_gauge_ != nullptr) {
      queue_gauge_->Add(1);
    }
    if (connections_counter_ != nullptr) {
      connections_counter_->Increment();
    }
    pool_->Submit([this, client] {
      queued_.fetch_sub(1);
      in_flight_.fetch_add(1);
      if (queue_gauge_ != nullptr) {
        queue_gauge_->Add(-1);
      }
      if (inflight_gauge_ != nullptr) {
        inflight_gauge_->Add(1);
      }
      HandleConnection(client);
      in_flight_.fetch_sub(1);
      if (inflight_gauge_ != nullptr) {
        inflight_gauge_->Add(-1);
      }
    });
  }
}

void HttpServer::ShedConnection(int client) {
  rejected_.fetch_add(1);
  if (rejected_counter_ != nullptr) {
    rejected_counter_->Increment();
  }
  HttpResponse response =
      SimpleResponse(503, "Service Unavailable", "gateway overloaded; retry shortly\n");
  response.headers["retry-after"] = "1";
  if (!WriteAll(client, SerializeHttpResponse(response, "HTTP/1.1"))) {
    ++write_failures_;
  }
  ::close(client);
}

void HttpServer::HandleConnection(int client) {
  SetNonBlocking(client, true);
  Clock* clock = serve_clock_;
  const std::uint64_t timeout_us =
      static_cast<std::uint64_t>(options_.request_timeout_ms) * 1000;
  std::string buffer;
  std::uint32_t served = 0;
  for (;;) {
    // Per-request deadline: reading the request and writing its response
    // must both finish inside this window. It also bounds keep-alive idle
    // time — a connection with no next request is closed when it expires.
    const std::uint64_t deadline = clock->NowMicros() + timeout_us;
    size_t frame = HttpMessageLength(buffer);
    bool peer_closed = false;
    bool timed_out = false;
    bool oversized = false;
    char chunk[4096];
    while (frame == std::string_view::npos && !peer_closed && !timed_out && !oversized) {
      if (buffer.size() >= kMaxRequestBytes) {
        oversized = true;
        break;
      }
      if (buffer.empty() && draining_.load()) {
        // Draining and no request in progress. Serve a request whose bytes
        // already arrived; release a genuinely idle connection.
        const ssize_t n = ::recv(client, chunk, sizeof(chunk), 0);
        if (n <= 0) {
          ::close(client);
          return;
        }
        buffer.append(chunk, static_cast<size_t>(n));
        frame = HttpMessageLength(buffer);
        continue;
      }
      if (clock->NowMicros() >= deadline) {
        timed_out = true;
        break;
      }
      pollfd p{client, POLLIN, 0};
      const int pr = ::poll(&p, 1, kPollSliceMs);
      if (pr < 0 && errno != EINTR) {
        peer_closed = true;
        break;
      }
      if (pr <= 0) {
        continue;  // Slice elapsed: re-check deadline and drain flag.
      }
      const ssize_t n = ::recv(client, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buffer.append(chunk, static_cast<size_t>(n));
        frame = HttpMessageLength(buffer);
      } else if (n == 0) {
        peer_closed = true;
      } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
        peer_closed = true;
      }
    }
    if (frame == std::string_view::npos) {
      // No complete request will arrive. A half-sent request gets a
      // best-effort error so the client learns why; a clean EOF between
      // requests gets silence — that is how keep-alive connections end.
      if (timed_out) {
        deadline_kills_.fetch_add(1);
        if (deadline_kills_counter_ != nullptr) {
          deadline_kills_counter_->Increment();
        }
        if (!buffer.empty()) {
          SendBestEffort(client, SimpleResponse(408, "Request Timeout",
                                                "request deadline exceeded\n"));
        }
      } else if (oversized) {
        SendBestEffort(client, SimpleResponse(413, "Payload Too Large",
                                              "request exceeds the gateway limit\n"));
      }
      break;
    }

    auto request = ParseHttpRequest(std::string_view(buffer).substr(0, frame));
    buffer.erase(0, frame);
    ++served;
    if (served > 1 && keepalive_counter_ != nullptr) {
      keepalive_counter_->Increment();
    }

    if (wire_shaper_ != nullptr) {
      // The shaper owns the wire for this response, including the close:
      // a shaped connection is one-shot, exactly like the blocking mode.
      SetNonBlocking(client, false);
      DeliverShaped(client, request, SerializeHttpResponse(Dispatch(request)));
      return;
    }

    HttpResponse response = Dispatch(request);
    const bool keep = request.ok() && WantsKeepAlive(*request) &&
                      served < options_.max_requests_per_connection && !draining_.load();
    response.headers["connection"] = keep ? "keep-alive" : "close";
    const WriteOutcome outcome =
        WriteWithDeadline(client, SerializeHttpResponse(response, "HTTP/1.1"), deadline, clock);
    if (outcome == WriteOutcome::kDeadline) {
      deadline_kills_.fetch_add(1);
      if (deadline_kills_counter_ != nullptr) {
        deadline_kills_counter_->Increment();
      }
      break;
    }
    if (outcome == WriteOutcome::kPeerError) {
      ++write_failures_;
      break;
    }
    if (!keep) {
      break;
    }
  }
  ::close(client);
}

void HttpServer::Drain() {
  draining_.store(true);
  Close();  // Wakes the accept loop (and any legacy Serve parked in accept).
  if (started_.load()) {
    if (accept_thread_.joinable()) {
      accept_thread_.join();
    }
    if (pool_ != nullptr) {
      pool_->Wait();  // Every queued and in-flight connection finishes.
    }
  }
}

void HttpServer::Close() {
  // exchange() so concurrent Close() calls can't double-close the fd.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() first: it reliably wakes a thread parked in accept() on
    // this fd, where a bare close() may not.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace weblint
