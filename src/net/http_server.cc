#include "net/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/net_util.h"
#include "net/reactor.h"
#include "telemetry/build_info.h"
#include "telemetry/log.h"
#include "telemetry/trace_context.h"
#include "util/strings.h"

namespace weblint {

namespace {

// Hard ceiling on request size: the gateway caps submissions at 1 MiB; give
// headers some headroom.
constexpr size_t kMaxRequestBytes = 2u << 20;

// How long a worker parks in poll() before re-checking its deadline clock
// and the drain flag. Real time, deliberately short: with a FakeClock the
// deadline only moves when the test advances it, and this slice bounds how
// long the worker takes to notice.
constexpr int kPollSliceMs = 10;

enum class WriteOutcome { kOk, kPeerError, kDeadline };

// Writes all of `data` to a non-blocking `fd`, waiting for writability in
// short poll slices and giving up once `clock` passes `deadline_us`. A slow
// (or stalled) reader therefore cannot pin a worker past the request
// deadline.
WriteOutcome WriteWithDeadline(int fd, std::string_view data, std::uint64_t deadline_us,
                               Clock* clock) {
  size_t written = 0;
  while (written < data.size()) {
    const long n = SendRetry(fd, data.data() + written, data.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (clock->NowMicros() >= deadline_us) {
        return WriteOutcome::kDeadline;
      }
      pollfd p{fd, POLLOUT, 0};
      if (PollRetry(&p, 1, kPollSliceMs) < 0) {
        return WriteOutcome::kPeerError;
      }
      continue;
    }
    return WriteOutcome::kPeerError;
  }
  return WriteOutcome::kOk;
}

// HTTP/1.1 defaults to keep-alive unless the client says close; HTTP/1.0
// (and anything older) defaults to close unless the client asks to keep.
bool WantsKeepAlive(const HttpRequest& request) {
  const std::string_view connection = request.Header("connection");
  if (IEquals(request.version, "HTTP/1.1")) {
    return !IContains(connection, "close");
  }
  return IContains(connection, "keep-alive");
}

// Fire-and-forget error response (408/413/shed paths): nonblocking
// best-effort send, dropped on EAGAIN — the connection is being torn down
// either way, and a slow peer must not stall the sending thread.
void SendBestEffort(int fd, const HttpResponse& response) {
  (void)SendBestEffortNonBlocking(fd, SerializeHttpResponse(response, "HTTP/1.1"));
}

HttpResponse SimpleResponse(int status, std::string_view reason, std::string_view body) {
  HttpResponse response;
  response.status = status;
  response.reason = std::string(reason);
  response.headers["content-type"] = "text/plain";
  response.headers["connection"] = "close";
  response.body = std::string(body);
  return response;
}

}  // namespace

// The event-driven serving core: one reactor loop thread owns every
// connection's state machine (read framing, keep-alive, deadlines, write
// backpressure); the worker pool only ever runs Dispatch(). Connections are
// addressed by a monotonically increasing id, never by fd — a pool
// completion Post()ed after the connection died (and its fd number was
// reused) must find nothing, not someone else's socket.
//
// Deadline parity with the thread mode: the per-request window covers
// reading the request and writing the response, but expiry only kills a
// connection that is *blocked on I/O* — a handler that runs past the
// deadline still gets its response out if the socket buffer takes it, which
// is exactly what WriteWithDeadline's check-on-EAGAIN does. So the timer is
// armed while reading (idle keep-alive included), cancelled at dispatch,
// and re-armed only if the response write hits EAGAIN.
class ReactorServerCore {
 public:
  explicit ReactorServerCore(HttpServer* server)
      : s_(server),
        reactor_(ReactorOptions{server->serve_clock_, 1000, 256,
                                /*force_poll_backend=*/false, server->metrics_}) {}

  Status Start() {
    listen_fd_ = s_->listen_fd_.load();
    if (listen_fd_ < 0) {
      return Fail("reactor core requires a listening socket");
    }
    reactor_.Watch(listen_fd_, Reactor::kReadable, [this](std::uint32_t) { OnAccept(); });
    loop_ = std::thread([this] { LoopThread(); });
    return Status::Ok();
  }

  // Stops accepting, releases idle connections, finishes in-flight
  // request/response cycles, then joins the loop. Safe to call once the
  // server's draining_ flag is up.
  void Drain() {
    drain_requested_.store(true);
    if (loop_.joinable()) {
      loop_.join();
    }
  }

 private:
  struct Conn {
    std::uint64_t id = 0;
    int fd = -1;
    std::string in;           // Bytes read, not yet framed into a request.
    std::string out;          // Serialized response being written.
    size_t out_sent = 0;
    std::uint32_t served = 0;
    std::uint64_t deadline_us = 0;  // Current request window's end.
    std::uint64_t timer_id = 0;     // 0 = no deadline armed.
    bool busy = false;              // A request is in the pool.
    bool peer_closed = false;       // Read side saw EOF.
    bool close_after_write = false;
    // A chunked response is in flight: header/chunk bytes arrive via
    // Post() as the producer emits them. `busy` stays true for the whole
    // stream so pipelined requests wait and drain treats the connection as
    // in-progress; `stream_done` marks the final chunk as posted.
    bool streaming = false;
    bool stream_done = false;
  };

  void LoopThread() {
    for (;;) {
      reactor_.PollOnce(kPollSliceMs);
      if (!drain_requested_.load()) {
        continue;
      }
      if (accepting_) {
        accepting_ = false;
        reactor_.Unwatch(listen_fd_);
        // Idle keep-alive connections are released immediately; ones with a
        // request in progress (partial bytes, pool work, pending write) run
        // to completion or to their deadline.
        std::vector<Conn*> idle;
        for (auto& [id, conn] : conns_) {
          if (!conn->busy && conn->out.empty() && conn->in.empty()) {
            idle.push_back(conn.get());
          }
        }
        for (Conn* conn : idle) {
          CloseConn(conn);
        }
      }
      if (conns_.empty()) {
        return;
      }
    }
  }

  void OnAccept() {
    for (;;) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client < 0) {
        if (errno == EINTR || errno == ECONNABORTED) {
          continue;
        }
        return;  // EAGAIN (drained the backlog) or the listener is gone.
      }
      if (drain_requested_.load()) {
        ::close(client);
        continue;
      }
      if (s_->queued_.load() >= s_->options_.max_queue) {
        // Same shed semantics as the accept thread: pool backlog full means
        // refuse crisply. The 503 send is nonblocking, so a slow client
        // cannot stall the loop.
        s_->ShedConnection(client);
        continue;
      }
      if (!SetNonBlocking(client, true)) {
        ::close(client);
        continue;
      }
      const std::uint64_t id = next_id_++;
      auto conn = std::make_unique<Conn>();
      conn->id = id;
      conn->fd = client;
      Conn* raw = conn.get();
      conns_.emplace(id, std::move(conn));
      s_->connections_.fetch_add(1);
      if (s_->connections_counter_ != nullptr) {
        s_->connections_counter_->Increment();
      }
      reactor_.Watch(client, Reactor::kReadable,
                     [this, id](std::uint32_t events) { OnConnEvent(id, events); });
      StartRequestWindow(raw);
    }
  }

  void OnConnEvent(std::uint64_t id, std::uint32_t events) {
    Conn* conn = FindConn(id);
    if (conn == nullptr) {
      return;
    }
    if ((events & Reactor::kWritable) != 0 && !conn->out.empty()) {
      TryWrite(conn);
      conn = FindConn(id);  // TryWrite may have closed it.
      if (conn == nullptr) {
        return;
      }
    }
    if ((events & (Reactor::kReadable | Reactor::kError)) != 0) {
      OnReadable(conn);
    }
  }

  void OnReadable(Conn* conn) {
    char chunk[4096];
    while (conn->in.size() < kMaxRequestBytes) {
      const long n = ReadRetry(conn->fd, chunk, sizeof(chunk));
      if (n > 0) {
        conn->in.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      conn->peer_closed = true;
      break;
    }
    const std::uint64_t id = conn->id;
    TryDispatch(conn);
    conn = FindConn(id);
    if (conn != nullptr) {
      MaybeCloseIdle(conn);
    }
  }

  // Frames and dispatches at most one request; further pipelined bytes wait
  // in conn->in until the response is written (responses must go out in
  // request order, and the pool must not see two requests from one
  // connection concurrently).
  void TryDispatch(Conn* conn) {
    if (conn->busy || !conn->out.empty()) {
      return;
    }
    const size_t frame = HttpMessageLength(conn->in);
    if (frame == std::string_view::npos) {
      if (conn->in.size() >= kMaxRequestBytes) {
        SendBestEffort(conn->fd, SimpleResponse(413, "Payload Too Large",
                                                "request exceeds the gateway limit\n"));
        CloseConn(conn);
      }
      return;
    }

    auto request = ParseHttpRequest(std::string_view(conn->in).substr(0, frame));
    conn->in.erase(0, frame);
    ++conn->served;
    if (conn->served > 1 && s_->keepalive_counter_ != nullptr) {
      s_->keepalive_counter_->Increment();
    }
    CancelDeadline(conn);  // Handler time is not billed against the window.

    if (s_->wire_shaper_ != nullptr) {
      // A shaped connection is one-shot and the shaper owns the wire,
      // including stalls and the close — exactly the thread mode's
      // contract. Hand the bare fd to a pool worker and forget the conn.
      const int fd = conn->fd;
      reactor_.Unwatch(fd);
      conn->fd = -1;
      conns_.erase(conn->id);
      BumpQueued(1);
      s_->pool_->Submit([this, fd, request] {
        BumpQueued(-1);
        BumpInFlight(1);
        SetNonBlocking(fd, false);
        s_->DeliverShaped(fd, request, SerializeHttpResponse(s_->DispatchBuffered(request)));
        BumpInFlight(-1);
      });
      return;
    }

    conn->busy = true;
    const std::uint64_t id = conn->id;
    const std::uint32_t served = conn->served;
    BumpQueued(1);
    s_->pool_->Submit([this, id, served, request] {
      BumpQueued(-1);
      BumpInFlight(1);
      HttpResponse response = s_->Dispatch(request);
      const bool keep = request.ok() && WantsKeepAlive(*request) &&
                        served < s_->options_.max_requests_per_connection &&
                        !s_->draining_.load();
      response.headers["connection"] = keep ? "keep-alive" : "close";
      const bool stream = response.body_stream != nullptr && request.ok() &&
                          IEquals(request->version, "HTTP/1.1");
      if (stream) {
        // Chunked delivery: the worker runs the producer to completion here,
        // posting each chunk to the loop as it is produced. Post() is FIFO,
        // so header, chunks, and end-of-stream arrive in order; the loop
        // thread owns all socket I/O, exactly as in the buffered path.
        response.headers["transfer-encoding"] = "chunked";
        std::string head =
            SerializeHttpResponseHead(response, "HTTP/1.1", /*add_content_length=*/false);
        reactor_.Post([this, id, head = std::move(head), keep]() mutable {
          OnStreamBegin(id, std::move(head), keep);
        });
        auto producer = std::move(response.body_stream);
        producer([this, id](std::string_view data) {
          if (data.empty()) {
            return;
          }
          reactor_.Post([this, id, bytes = EncodeChunk(data)]() mutable {
            OnStreamBytes(id, std::move(bytes));
          });
        });
        reactor_.Post([this, id] { OnStreamEnd(id); });
        BumpInFlight(-1);
        return;
      }
      MaterializeBodyStream(&response);
      std::string bytes = SerializeHttpResponse(response, "HTTP/1.1");
      BumpInFlight(-1);
      reactor_.Post([this, id, bytes = std::move(bytes), keep]() mutable {
        OnHandlerDone(id, std::move(bytes), keep);
      });
    });
  }

  void OnHandlerDone(std::uint64_t id, std::string bytes, bool keep) {
    Conn* conn = FindConn(id);
    if (conn == nullptr) {
      return;  // Connection died while the handler ran.
    }
    conn->busy = false;
    conn->out = std::move(bytes);
    conn->out_sent = 0;
    conn->close_after_write = !keep;
    TryWrite(conn);
  }

  void OnStreamBegin(std::uint64_t id, std::string head, bool keep) {
    Conn* conn = FindConn(id);
    if (conn == nullptr) {
      return;  // Connection died while the handler ran.
    }
    conn->streaming = true;
    conn->stream_done = false;
    conn->close_after_write = !keep;
    conn->out = std::move(head);
    conn->out_sent = 0;
    TryWrite(conn);
  }

  void OnStreamBytes(std::uint64_t id, std::string bytes) {
    Conn* conn = FindConn(id);
    if (conn == nullptr) {
      return;  // Late chunks for a dead connection: the producer outlived it.
    }
    conn->out += bytes;
    TryWrite(conn);
  }

  void OnStreamEnd(std::uint64_t id) {
    Conn* conn = FindConn(id);
    if (conn == nullptr) {
      return;
    }
    conn->stream_done = true;
    conn->out += FinalChunk();
    TryWrite(conn);
  }

  void TryWrite(Conn* conn) {
    while (conn->out_sent < conn->out.size()) {
      const long n = SendRetry(conn->fd, conn->out.data() + conn->out_sent,
                               conn->out.size() - conn->out_sent);
      if (n > 0) {
        conn->out_sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Blocked on the peer: this is where the request deadline bites
        // (check-on-EAGAIN, same as WriteWithDeadline).
        if (reactor_.NowMicros() >= conn->deadline_us) {
          CountDeadlineKill();
          CloseConn(conn);
          return;
        }
        reactor_.SetEvents(conn->fd, Reactor::kReadable | Reactor::kWritable);
        if (conn->timer_id == 0) {
          ArmDeadline(conn);
        }
        return;
      }
      ++s_->write_failures_;
      CloseConn(conn);
      return;
    }
    // Buffered bytes fully on the wire.
    conn->out.clear();
    conn->out_sent = 0;
    CancelDeadline(conn);
    reactor_.SetEvents(conn->fd, Reactor::kReadable);
    if (conn->streaming && !conn->stream_done) {
      return;  // Mid-stream: more chunks (or the end) arrive via Post().
    }
    if (conn->streaming) {
      // The final chunk is out: the streamed response is complete.
      conn->streaming = false;
      conn->stream_done = false;
      conn->busy = false;
    }
    if (conn->close_after_write) {
      CloseConn(conn);
      return;
    }
    StartRequestWindow(conn);
    Conn* alive = FindConn(conn->id);
    if (alive != nullptr) {
      MaybeCloseIdle(alive);
    }
  }

  // Opens a fresh per-request window: deadline armed, and any already
  // buffered pipelined request dispatched immediately.
  void StartRequestWindow(Conn* conn) {
    conn->deadline_us =
        reactor_.NowMicros() +
        static_cast<std::uint64_t>(s_->options_.request_timeout_ms) * 1000;
    ArmDeadline(conn);
    TryDispatch(conn);
  }

  void OnDeadline(std::uint64_t id) {
    Conn* conn = FindConn(id);
    if (conn == nullptr) {
      return;
    }
    conn->timer_id = 0;
    if (conn->busy) {
      // The handler is still running: not an I/O stall. If its write later
      // blocks, TryWrite's deadline check performs the kill.
      return;
    }
    CountDeadlineKill();
    if (conn->out.empty() && !conn->in.empty()) {
      // A half-sent request: tell the client why, best effort.
      SendBestEffort(conn->fd, SimpleResponse(408, "Request Timeout",
                                              "request deadline exceeded\n"));
    }
    CloseConn(conn);
  }

  // A peer that sent EOF and has nothing dispatched, pending, or buffered
  // is done — that is how keep-alive connections end.
  void MaybeCloseIdle(Conn* conn) {
    if (conn->peer_closed && !conn->busy && conn->out.empty() &&
        HttpMessageLength(conn->in) == std::string_view::npos) {
      CloseConn(conn);
    }
  }

  Conn* FindConn(std::uint64_t id) {
    const auto it = conns_.find(id);
    return it == conns_.end() ? nullptr : it->second.get();
  }

  void ArmDeadline(Conn* conn) {
    CancelDeadline(conn);
    const std::uint64_t id = conn->id;
    conn->timer_id = reactor_.AddTimer(conn->deadline_us, [this, id] { OnDeadline(id); });
  }

  void CancelDeadline(Conn* conn) {
    if (conn->timer_id != 0) {
      reactor_.CancelTimer(conn->timer_id);
      conn->timer_id = 0;
    }
  }

  void CloseConn(Conn* conn) {
    CancelDeadline(conn);
    if (conn->fd >= 0) {
      reactor_.Unwatch(conn->fd);
      ::close(conn->fd);
    }
    conns_.erase(conn->id);
  }

  void CountDeadlineKill() {
    s_->deadline_kills_.fetch_add(1);
    if (s_->deadline_kills_counter_ != nullptr) {
      s_->deadline_kills_counter_->Increment();
    }
  }

  void BumpQueued(int delta) {
    if (delta > 0) {
      s_->queued_.fetch_add(static_cast<size_t>(delta));
    } else {
      s_->queued_.fetch_sub(static_cast<size_t>(-delta));
    }
    if (s_->queue_gauge_ != nullptr) {
      s_->queue_gauge_->Add(delta);
    }
  }

  void BumpInFlight(int delta) {
    if (delta > 0) {
      s_->in_flight_.fetch_add(static_cast<size_t>(delta));
    } else {
      s_->in_flight_.fetch_sub(static_cast<size_t>(-delta));
    }
    if (s_->inflight_gauge_ != nullptr) {
      s_->inflight_gauge_->Add(delta);
    }
  }

  HttpServer* s_;
  Reactor reactor_;
  std::thread loop_;
  int listen_fd_ = -1;
  bool accepting_ = true;
  std::atomic<bool> drain_requested_{false};
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_id_ = 1;
};

HttpServer::HttpServer(Handler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Drain(); }

void HttpServer::EnableMetrics(MetricsRegistry* registry, Clock* clock) {
  metrics_ = registry;
  if (registry == nullptr) {
    requests_total_ = nullptr;
    request_micros_ = nullptr;
    responses_by_class_ = {};
    inflight_gauge_ = nullptr;
    queue_gauge_ = nullptr;
    rejected_counter_ = nullptr;
    connections_counter_ = nullptr;
    keepalive_counter_ = nullptr;
    deadline_kills_counter_ = nullptr;
    return;
  }
  metrics_clock_ = clock != nullptr ? clock : Clock::System();
  requests_total_ = registry->GetCounter("weblint_http_requests_total");
  request_micros_ = registry->GetHistogram("weblint_http_request_micros");
  static constexpr const char* kClasses[] = {"1xx", "2xx", "3xx", "4xx", "5xx"};
  for (size_t i = 0; i < responses_by_class_.size(); ++i) {
    responses_by_class_[i] =
        registry->GetCounter("weblint_http_responses_total", "class", kClasses[i]);
  }
  inflight_gauge_ = registry->GetGauge("weblint_http_inflight");
  queue_gauge_ = registry->GetGauge("weblint_http_queue_depth");
  rejected_counter_ = registry->GetCounter("weblint_http_rejected_total");
  connections_counter_ = registry->GetCounter("weblint_http_connections_total");
  keepalive_counter_ = registry->GetCounter("weblint_http_keepalive_reuse_total");
  deadline_kills_counter_ = registry->GetCounter("weblint_http_deadline_kills_total");
}

void HttpServer::EnableIntrospection(const HttpServerIntrospection& introspection) {
  introspection_ = introspection;
  introspection_clock_ =
      introspection.clock != nullptr ? introspection.clock : Clock::System();
  start_us_ = introspection_clock_->NowMicros();
  introspection_enabled_ = true;
}

void HttpServer::BeginLameDuck() {
  if (!lame_duck_.exchange(true)) {
    WEBLINT_LOG(kInfo, "gateway", "lame-duck-begin", {});
  }
}

Status HttpServer::Listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Fail(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    Close();
    return Fail("bind: " + error);
  }
  if (::listen(listen_fd_, 128) < 0) {
    const std::string error = std::strerror(errno);
    Close();
    return Fail("listen: " + error);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  return Status::Ok();
}

namespace {

// "/statusz" or "/statusz?...": endpoint targets match on the path only.
bool TargetIs(std::string_view target, std::string_view path) {
  return target == path ||
         (target.size() > path.size() && target.compare(0, path.size(), path) == 0 &&
          target[path.size()] == '?');
}

}  // namespace

HttpResponse HttpServer::Dispatch(const Result<HttpRequest>& request) {
  HttpResponse response = DispatchInner(request);
  if (request.ok() && request->method == "HEAD") {
    // HEAD answers with the GET-equivalent headers and Content-Length but
    // no body. A streamed body is materialized first: its full length is
    // the length the headers must advertise.
    MaterializeBodyStream(&response);
    response.headers["content-length"] = std::to_string(response.body.size());
    response.body.clear();
  }
  return response;
}

HttpResponse HttpServer::DispatchBuffered(const Result<HttpRequest>& request) {
  HttpResponse response = Dispatch(request);
  MaterializeBodyStream(&response);
  return response;
}

HttpResponse HttpServer::DispatchInner(const Result<HttpRequest>& request) {
  HttpResponse response;
  if (!request.ok()) {
    response.status = 400;
    response.reason = "Bad Request";
    response.headers["content-type"] = "text/plain";
    response.body = request.error() + "\n";
    return response;
  }
  if (introspection_enabled_ && request->method == "GET") {
    // Z-pages answer before tracing and before the request series: an
    // operator polling /healthz or a scraper hitting /tracez must neither
    // perturb the latency numbers nor flush real traces out of the sampler.
    if (TargetIs(request->target, "/healthz")) {
      return HealthzResponse();
    }
    if (TargetIs(request->target, "/statusz")) {
      return StatuszResponse();
    }
    if (TargetIs(request->target, "/tracez")) {
      return TracezResponse(request->target.find("format=json") != std::string::npos);
    }
  }
  if (metrics_ != nullptr && request->method == "GET" &&
      (request->target == "/metrics" || IStartsWith(request->target, "/metrics?"))) {
    // The scrape endpoint answers from the registry directly; it is not a
    // gateway request and does not count into the request series (scraping
    // every 15s must not dominate the numbers it reports).
    response.status = 200;
    response.reason = "OK";
    response.headers["content-type"] = "text/plain; version=0.0.4";
    response.body = metrics_->RenderPrometheus();
    return response;
  }
  const std::uint64_t begin_us = metrics_ != nullptr ? metrics_clock_->NowMicros() : 0;
  {
    // Correlate the handler's spans and log lines under one trace id; a
    // 5xx marks the trace errored, so it is retained for /tracez.
    RequestTrace trace(introspection_enabled_ ? introspection_.traces : nullptr,
                       request->method + " " + request->target);
    response = handler_(*request);
    trace.set_error(response.status >= 500);
  }
  if (metrics_ != nullptr) {
    requests_total_->Increment();
    request_micros_->Record(metrics_clock_->NowMicros() - begin_us);
    const int status_class = response.status / 100;
    if (status_class >= 1 && status_class <= 5) {
      responses_by_class_[static_cast<size_t>(status_class - 1)]->Increment();
    }
  }
  return response;
}

HttpResponse HttpServer::HealthzResponse() const {
  HttpResponse response;
  response.headers["content-type"] = "text/plain";
  if (draining_.load() || lame_duck_.load()) {
    response.status = 503;
    response.reason = "Service Unavailable";
    response.body = "draining\n";
  } else {
    response.status = 200;
    response.reason = "OK";
    response.body = "ok\n";
  }
  return response;
}

HttpResponse HttpServer::StatuszResponse() const {
  std::string body;
  body += BuildInfoLine();
  body += '\n';
  body += StrFormat("config_fingerprint: %d\n", introspection_.config_fingerprint);
  body += StrFormat("uptime_us: %d\n", introspection_clock_->NowMicros() - start_us_);
  body += StrFormat("serving: %s\n", draining_.load()     ? "draining"
                                     : lame_duck_.load()  ? "lame-duck"
                                                          : "yes");
  body += StrFormat("connections_served: %d\n", connections_.load());
  body += StrFormat("in_flight: %d\n", in_flight_.load());
  body += StrFormat("queue_depth: %d\n", queued_.load());
  body += StrFormat("rejected: %d\n", rejected_.load());
  body += StrFormat("deadline_kills: %d\n", deadline_kills_.load());
  body += StrFormat("write_failures: %d\n", write_failures_.load());
  if (introspection_.metrics != nullptr) {
    body += "gauges:\n";
    for (const auto& [key, value] : introspection_.metrics->GaugeSnapshot()) {
      body += StrFormat("  %s %d\n", key, value);
    }
  }
  if (introspection_.traces != nullptr) {
    body += StrFormat("traces: started=%d finished=%d errored=%d evicted=%d\n",
                      introspection_.traces->started(), introspection_.traces->finished(),
                      introspection_.traces->errored(), introspection_.traces->evicted());
  }
  if (introspection_.log != nullptr) {
    body += "recent_events:\n";
    for (const std::string& line : introspection_.log->RecentErrors()) {
      body += "  ";
      body += line;
      body += '\n';
    }
  }
  HttpResponse response;
  response.status = 200;
  response.reason = "OK";
  response.headers["content-type"] = "text/plain";
  response.body = std::move(body);
  return response;
}

HttpResponse HttpServer::TracezResponse(bool as_json) const {
  HttpResponse response;
  if (introspection_.traces == nullptr) {
    response.status = 404;
    response.reason = "Not Found";
    response.headers["content-type"] = "text/plain";
    response.body = "trace sampling is not enabled\n";
    return response;
  }
  response.status = 200;
  response.reason = "OK";
  if (as_json) {
    response.headers["content-type"] = "application/json";
    response.body = introspection_.traces->RenderJson();
  } else {
    response.headers["content-type"] = "text/plain";
    response.body = introspection_.traces->RenderText();
  }
  return response;
}

void HttpServer::DeliverShaped(int client, const Result<HttpRequest>& request,
                               std::string serialized) {
  // Fault-injection path: deliver whatever the shaper dictates — possibly
  // late, in slow chunks, truncated, or nothing at all.
  const WirePlan plan =
      request.ok() ? wire_shaper_(*request, std::move(serialized))
                   : WirePlan{std::move(serialized), 0, 0, 0, false};
  if (plan.stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(plan.stall_ms));
  }
  if (!plan.close_before_write) {
    bool write_ok = true;
    if (plan.chunk_bytes == 0) {
      write_ok = WriteAll(client, plan.bytes);
    } else {
      for (size_t at = 0; write_ok && at < plan.bytes.size(); at += plan.chunk_bytes) {
        write_ok = WriteAll(client, std::string_view(plan.bytes).substr(at, plan.chunk_bytes));
        if (write_ok && plan.chunk_delay_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(plan.chunk_delay_ms));
        }
      }
    }
    if (!write_ok) {
      ++write_failures_;
    }
  }
  ::close(client);
}

Status HttpServer::ServeOne() {
  const int fd = listen_fd_.load();
  if (fd < 0) {
    return Fail("server is not listening");
  }
  const int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) {
    return Fail(std::string("accept: ") + std::strerror(errno));
  }

  std::string buffer;
  char chunk[4096];
  while (!HttpMessageComplete(buffer) && buffer.size() < kMaxRequestBytes) {
    const long n = ReadRetry(client, chunk, sizeof(chunk));
    if (n <= 0) {
      break;  // Peer closed (or error): parse what we have.
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  auto request = ParseHttpRequest(buffer);
  // A failed write means the peer went away (early disconnect, reset): a
  // fact about that one client, not about the server. Count it, drop the
  // connection, and keep serving — a public gateway must survive browsers
  // that close the tab mid-response.
  std::string serialized = SerializeHttpResponse(DispatchBuffered(request));
  if (wire_shaper_ == nullptr) {
    if (!WriteAll(client, serialized)) {
      ++write_failures_;
    }
    ::close(client);
    return Status::Ok();
  }
  DeliverShaped(client, request, std::move(serialized));
  return Status::Ok();
}

Status HttpServer::Serve(size_t max_requests) {
  size_t handled = 0;
  while (max_requests == 0 || handled < max_requests) {
    if (Status s = ServeOne(); !s.ok()) {
      return s;  // Accept-side errors only: the listening socket is gone.
    }
    ++handled;
  }
  return Status::Ok();
}

Status HttpServer::Start(const HttpServerOptions& options) {
  const int fd = listen_fd_.load();
  if (fd < 0) {
    return Fail("Start() requires a listening socket (call Listen first)");
  }
  if (started_.load()) {
    return Fail("server already started");
  }
  options_ = options;
  if (options_.threads == 0) {
    options_.threads = ThreadPool::DefaultThreadCount();
  }
  if (options_.max_requests_per_connection == 0) {
    options_.max_requests_per_connection = 1;
  }
  serve_clock_ = options_.clock != nullptr ? options_.clock : Clock::System();
  // The accept loop polls, so the listener must never block an accept that
  // lost a wakeup race.
  SetNonBlocking(fd, true);
  pool_ = std::make_unique<ThreadPool>(options_.threads);
  if (options_.event_driven) {
    reactor_core_ = std::make_unique<ReactorServerCore>(this);
    if (Status s = reactor_core_->Start(); !s.ok()) {
      reactor_core_.reset();
      pool_.reset();
      return s;
    }
    started_.store(true);
    return Status::Ok();
  }
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = listen_fd_.load();
    if (fd < 0 || draining_.load()) {
      return;
    }
    pollfd p{fd, POLLIN, 0};
    const int pr = PollRetry(&p, 1, kPollSliceMs);
    if (pr < 0) {
      return;
    }
    if (pr == 0) {
      continue;  // Slice elapsed: re-check the drain flag and listener.
    }
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      return;  // The listener is gone (drain closed it) or unusable.
    }
    if (draining_.load()) {
      ::close(client);
      continue;
    }
    if (queued_.load() >= options_.max_queue) {
      // Shed, never stall: the 503 is written from the accept thread, but
      // it is a few hundred bytes into an empty socket buffer — it cannot
      // block the loop the way dispatching a lint request would.
      ShedConnection(client);
      continue;
    }
    queued_.fetch_add(1);
    connections_.fetch_add(1);
    if (queue_gauge_ != nullptr) {
      queue_gauge_->Add(1);
    }
    if (connections_counter_ != nullptr) {
      connections_counter_->Increment();
    }
    pool_->Submit([this, client] {
      queued_.fetch_sub(1);
      in_flight_.fetch_add(1);
      if (queue_gauge_ != nullptr) {
        queue_gauge_->Add(-1);
      }
      if (inflight_gauge_ != nullptr) {
        inflight_gauge_->Add(1);
      }
      HandleConnection(client);
      in_flight_.fetch_sub(1);
      if (inflight_gauge_ != nullptr) {
        inflight_gauge_->Add(-1);
      }
    });
  }
}

void HttpServer::ShedConnection(int client) {
  rejected_.fetch_add(1);
  if (rejected_counter_ != nullptr) {
    rejected_counter_->Increment();
  }
  HttpResponse response =
      SimpleResponse(503, "Service Unavailable", "gateway overloaded; retry shortly\n");
  response.headers["retry-after"] = "1";
  // Nonblocking, drop on EAGAIN: the 503 is a courtesy. A client too slow
  // to take a few hundred bytes must not stall the accept loop — under
  // overload the shed path has to be the one path guaranteed not to block.
  if (!SendBestEffortNonBlocking(client, SerializeHttpResponse(response, "HTTP/1.1"))) {
    ++write_failures_;
  }
  ::close(client);
}

void HttpServer::HandleConnection(int client) {
  SetNonBlocking(client, true);
  Clock* clock = serve_clock_;
  const std::uint64_t timeout_us =
      static_cast<std::uint64_t>(options_.request_timeout_ms) * 1000;
  std::string buffer;
  std::uint32_t served = 0;
  for (;;) {
    // Per-request deadline: reading the request and writing its response
    // must both finish inside this window. It also bounds keep-alive idle
    // time — a connection with no next request is closed when it expires.
    const std::uint64_t deadline = clock->NowMicros() + timeout_us;
    size_t frame = HttpMessageLength(buffer);
    bool peer_closed = false;
    bool timed_out = false;
    bool oversized = false;
    char chunk[4096];
    while (frame == std::string_view::npos && !peer_closed && !timed_out && !oversized) {
      if (buffer.size() >= kMaxRequestBytes) {
        oversized = true;
        break;
      }
      if (buffer.empty() && draining_.load()) {
        // Draining and no request in progress. Serve a request whose bytes
        // already arrived; release a genuinely idle connection.
        const long n = ReadRetry(client, chunk, sizeof(chunk));
        if (n <= 0) {
          ::close(client);
          return;
        }
        buffer.append(chunk, static_cast<size_t>(n));
        frame = HttpMessageLength(buffer);
        continue;
      }
      if (clock->NowMicros() >= deadline) {
        timed_out = true;
        break;
      }
      pollfd p{client, POLLIN, 0};
      const int pr = PollRetry(&p, 1, kPollSliceMs);
      if (pr < 0) {
        peer_closed = true;
        break;
      }
      if (pr == 0) {
        continue;  // Slice elapsed: re-check deadline and drain flag.
      }
      const long n = ReadRetry(client, chunk, sizeof(chunk));
      if (n > 0) {
        buffer.append(chunk, static_cast<size_t>(n));
        frame = HttpMessageLength(buffer);
      } else if (n == 0) {
        peer_closed = true;
      } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
        peer_closed = true;
      }
    }
    if (frame == std::string_view::npos) {
      // No complete request will arrive. A half-sent request gets a
      // best-effort error so the client learns why; a clean EOF between
      // requests gets silence — that is how keep-alive connections end.
      if (timed_out) {
        deadline_kills_.fetch_add(1);
        if (deadline_kills_counter_ != nullptr) {
          deadline_kills_counter_->Increment();
        }
        if (!buffer.empty()) {
          SendBestEffort(client, SimpleResponse(408, "Request Timeout",
                                                "request deadline exceeded\n"));
        }
      } else if (oversized) {
        SendBestEffort(client, SimpleResponse(413, "Payload Too Large",
                                              "request exceeds the gateway limit\n"));
      }
      break;
    }

    auto request = ParseHttpRequest(std::string_view(buffer).substr(0, frame));
    buffer.erase(0, frame);
    ++served;
    if (served > 1 && keepalive_counter_ != nullptr) {
      keepalive_counter_->Increment();
    }

    if (wire_shaper_ != nullptr) {
      // The shaper owns the wire for this response, including the close:
      // a shaped connection is one-shot, exactly like the blocking mode.
      SetNonBlocking(client, false);
      DeliverShaped(client, request, SerializeHttpResponse(DispatchBuffered(request)));
      return;
    }

    HttpResponse response = Dispatch(request);
    const bool keep = request.ok() && WantsKeepAlive(*request) &&
                      served < options_.max_requests_per_connection && !draining_.load();
    response.headers["connection"] = keep ? "keep-alive" : "close";
    // Stream only to an HTTP/1.1 client (chunked transfer-encoding does not
    // exist in 1.0); anyone else gets the materialized body + Content-Length
    // — byte-identical content either way.
    const bool stream = response.body_stream != nullptr && request.ok() &&
                        IEquals(request->version, "HTTP/1.1");
    WriteOutcome outcome;
    if (stream) {
      response.headers["transfer-encoding"] = "chunked";
      outcome = WriteWithDeadline(
          client, SerializeHttpResponseHead(response, "HTTP/1.1", /*add_content_length=*/false),
          deadline, clock);
      auto producer = std::move(response.body_stream);
      producer([&](std::string_view data) {
        if (outcome == WriteOutcome::kOk && !data.empty()) {
          outcome = WriteWithDeadline(client, EncodeChunk(data), deadline, clock);
        }
      });
      if (outcome == WriteOutcome::kOk) {
        outcome = WriteWithDeadline(client, FinalChunk(), deadline, clock);
      }
    } else {
      MaterializeBodyStream(&response);
      outcome =
          WriteWithDeadline(client, SerializeHttpResponse(response, "HTTP/1.1"), deadline, clock);
    }
    if (outcome == WriteOutcome::kDeadline) {
      deadline_kills_.fetch_add(1);
      if (deadline_kills_counter_ != nullptr) {
        deadline_kills_counter_->Increment();
      }
      break;
    }
    if (outcome == WriteOutcome::kPeerError) {
      ++write_failures_;
      break;
    }
    if (!keep) {
      break;
    }
  }
  ::close(client);
}

void HttpServer::Drain() {
  draining_.store(true);
  if (reactor_core_ != nullptr) {
    // Reactor mode: the loop thread must unwatch the listener itself (a
    // poll-backend loop would otherwise spin on a closed fd), so the
    // listener closes after the loop exits, not before.
    reactor_core_->Drain();
    pool_->Wait();
    Close();
    return;
  }
  Close();  // Wakes the accept loop (and any legacy Serve parked in accept).
  if (started_.load()) {
    if (accept_thread_.joinable()) {
      accept_thread_.join();
    }
    if (pool_ != nullptr) {
      pool_->Wait();  // Every queued and in-flight connection finishes.
    }
  }
}

void HttpServer::Close() {
  // exchange() so concurrent Close() calls can't double-close the fd.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() first: it reliably wakes a thread parked in accept() on
    // this fd, where a bare close() may not.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace weblint
