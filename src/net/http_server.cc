#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

namespace weblint {

namespace {

// Hard ceiling on request size: the gateway caps submissions at 1 MiB; give
// headers some headroom.
constexpr size_t kMaxRequestBytes = 2u << 20;

// Writes all of `data` to `fd`, retrying on short writes. Uses send() with
// MSG_NOSIGNAL so a client that hung up mid-response surfaces as EPIPE
// instead of a process-killing SIGPIPE.
bool WriteAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpServer::~HttpServer() { Close(); }

Status HttpServer::Listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Fail(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    Close();
    return Fail("bind: " + error);
  }
  if (::listen(listen_fd_, 16) < 0) {
    const std::string error = std::strerror(errno);
    Close();
    return Fail("listen: " + error);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  return Status::Ok();
}

Status HttpServer::ServeOne() {
  const int fd = listen_fd_.load();
  if (fd < 0) {
    return Fail("server is not listening");
  }
  const int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) {
    return Fail(std::string("accept: ") + std::strerror(errno));
  }

  std::string buffer;
  char chunk[4096];
  while (!HttpMessageComplete(buffer) && buffer.size() < kMaxRequestBytes) {
    const ssize_t n = ::read(client, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // Peer closed (or error): parse what we have.
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  HttpResponse response;
  auto request = ParseHttpRequest(buffer);
  if (!request.ok()) {
    response.status = 400;
    response.reason = "Bad Request";
    response.headers["content-type"] = "text/plain";
    response.body = request.error() + "\n";
  } else {
    response = handler_(*request);
  }
  // A failed write means the peer went away (early disconnect, reset): a
  // fact about that one client, not about the server. Count it, drop the
  // connection, and keep serving — a public gateway must survive browsers
  // that close the tab mid-response.
  std::string serialized = SerializeHttpResponse(response);
  if (wire_shaper_ == nullptr) {
    if (!WriteAll(client, serialized)) {
      ++write_failures_;
    }
    ::close(client);
    return Status::Ok();
  }

  // Fault-injection path: deliver whatever the shaper dictates — possibly
  // late, in slow chunks, truncated, or nothing at all.
  const WirePlan plan =
      request.ok() ? wire_shaper_(*request, std::move(serialized))
                   : WirePlan{std::move(serialized), 0, 0, 0, false};
  if (plan.stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(plan.stall_ms));
  }
  if (!plan.close_before_write) {
    bool write_ok = true;
    if (plan.chunk_bytes == 0) {
      write_ok = WriteAll(client, plan.bytes);
    } else {
      for (size_t at = 0; write_ok && at < plan.bytes.size(); at += plan.chunk_bytes) {
        write_ok = WriteAll(client, std::string_view(plan.bytes).substr(at, plan.chunk_bytes));
        if (write_ok && plan.chunk_delay_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(plan.chunk_delay_ms));
        }
      }
    }
    if (!write_ok) {
      ++write_failures_;
    }
  }
  ::close(client);
  return Status::Ok();
}

Status HttpServer::Serve(size_t max_requests) {
  size_t handled = 0;
  while (max_requests == 0 || handled < max_requests) {
    if (Status s = ServeOne(); !s.ok()) {
      return s;  // Accept-side errors only: the listening socket is gone.
    }
    ++handled;
  }
  return Status::Ok();
}

void HttpServer::Close() {
  // exchange() so concurrent Close() calls can't double-close the fd.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::close(fd);
  }
}

}  // namespace weblint
