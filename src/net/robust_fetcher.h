// RobustFetcher: a policy-enforcing decorator over any UrlFetcher.
//
// Wraps the raw fetcher the way LWP::UserAgent wraps a socket: every
// retrieval gets deadlines, bounded retries with deterministic exponential
// backoff, a redirect-hop limit, response-size caps, and a classified
// outcome (fetch_policy.h). Degraded outcomes come back as data — callers
// turn them into per-page diagnostics; nothing here throws, hangs, or
// aborts a crawl.
//
// Determinism: backoff jitter is a pure function of (policy.jitter_seed,
// url, attempt); time comes from an injected Clock. Two runs over the same
// (possibly fault-injected) web with the same seed behave identically.
#ifndef WEBLINT_NET_ROBUST_FETCHER_H_
#define WEBLINT_NET_ROBUST_FETCHER_H_

#include "net/fetch_policy.h"
#include "net/fetcher.h"
#include "util/clock.h"

namespace weblint {

class RobustFetcher : public UrlFetcher {
 public:
  // `clock` may be null (system clock). The inner fetcher must outlive this.
  RobustFetcher(UrlFetcher& inner, FetchPolicy policy, Clock* clock = nullptr)
      : inner_(inner), policy_(policy),
        clock_(clock != nullptr ? clock : Clock::System()) {}

  // The rich interface: retrieves `url` following redirects under the full
  // policy and classifies the outcome. Any HTTP status (404, 500, ...) in a
  // well-formed, complete reply is outcome kOk — HTTP-level failure is the
  // caller's business; this layer only guarantees transport sanity.
  FetchResult FetchPage(const Url& url);
  FetchResult FetchHead(const Url& url);

  // UrlFetcher: lets the robot and link validator run through the policy
  // transparently. Degraded outcomes surface as status-0 responses with the
  // transport field set (kOk results pass through unchanged).
  HttpResponse Get(const Url& url) override;
  HttpResponse Head(const Url& url) override;

  const FetchStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FetchStats{}; }
  const FetchPolicy& policy() const { return policy_; }

  // The backoff delay before retry `attempt` (1-based) of `url`, jitter
  // included. Public and static so tests can assert the exact schedule.
  static std::uint64_t BackoffMicros(const FetchPolicy& policy, const Url& url,
                                     std::uint32_t attempt);

 private:
  FetchResult Fetch(const Url& url, bool head);
  // Classifies one attempt's reply. kOk here means "usable HTTP reply".
  FetchOutcome ClassifyAttempt(const HttpResponse& response,
                               std::uint64_t attempt_elapsed_us) const;

  UrlFetcher& inner_;
  FetchPolicy policy_;
  Clock* clock_;
  FetchStats stats_;
};

}  // namespace weblint

#endif  // WEBLINT_NET_ROBUST_FETCHER_H_
