// RobustFetcher: a policy-enforcing decorator over any UrlFetcher.
//
// Wraps the raw fetcher the way LWP::UserAgent wraps a socket: every
// retrieval gets deadlines, bounded retries with deterministic exponential
// backoff, a redirect-hop limit, response-size caps, and a classified
// outcome (fetch_policy.h). Degraded outcomes come back as data — callers
// turn them into per-page diagnostics; nothing here throws, hangs, or
// aborts a crawl.
//
// Determinism: backoff jitter is a pure function of (policy.jitter_seed,
// url, attempt); time comes from an injected Clock. Two runs over the same
// (possibly fault-injected) web with the same seed behave identically.
#ifndef WEBLINT_NET_ROBUST_FETCHER_H_
#define WEBLINT_NET_ROBUST_FETCHER_H_

#include <array>

#include "net/fetch_policy.h"
#include "net/fetcher.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

namespace weblint {

// The shared attempt-classification rules, split out so AsyncFetcher's
// event-driven state machine applies byte-for-byte the same policy calls as
// the blocking RobustFetcher.
//
// Classifies one attempt's reply under `policy`. kOk means "usable HTTP
// reply" — any status code; HTTP-level failure is the caller's business.
FetchOutcome ClassifyFetchAttempt(const FetchPolicy& policy, const HttpResponse& response,
                                  std::uint64_t attempt_elapsed_us);

// Whether an outcome is worth another attempt: transient transport failures
// (timeout, refusal, truncation) are; malformed replies, oversized bodies
// and redirect loops are server facts a retry will not change.
bool IsRetryableOutcome(FetchOutcome outcome);

class RobustFetcher : public UrlFetcher {
 public:
  // `clock` may be null (system clock). The inner fetcher must outlive
  // this. `metrics` (optional) mirrors every stat into registry series —
  // weblint_fetch_requests_total, weblint_fetch_outcomes_total{outcome=...},
  // weblint_fetch_micros, ... — so a live gateway or `--metrics` run
  // exposes fetch health without touching the per-fetcher FetchStats
  // snapshot used by --fetch-stats.
  RobustFetcher(UrlFetcher& inner, FetchPolicy policy, Clock* clock = nullptr,
                MetricsRegistry* metrics = nullptr)
      : inner_(inner), policy_(policy),
        clock_(clock != nullptr ? clock : Clock::System()) {
    AttachMetrics(metrics);
  }

  // Wires (or unwires, with null) the registry mirror. Counters cover the
  // whole process lifetime; FetchStats stays per-fetcher.
  void AttachMetrics(MetricsRegistry* metrics);

  // The rich interface: retrieves `url` following redirects under the full
  // policy and classifies the outcome. Any HTTP status (404, 500, ...) in a
  // well-formed, complete reply is outcome kOk — HTTP-level failure is the
  // caller's business; this layer only guarantees transport sanity.
  FetchResult FetchPage(const Url& url);
  FetchResult FetchHead(const Url& url);

  // UrlFetcher: lets the robot and link validator run through the policy
  // transparently. Degraded outcomes surface as status-0 responses with the
  // transport field set (kOk results pass through unchanged).
  HttpResponse Get(const Url& url) override;
  HttpResponse Head(const Url& url) override;

  const FetchStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FetchStats{}; }
  const FetchPolicy& policy() const { return policy_; }

  // The backoff delay before retry `attempt` (1-based) of `url`, jitter
  // included. Public and static so tests can assert the exact schedule.
  static std::uint64_t BackoffMicros(const FetchPolicy& policy, const Url& url,
                                     std::uint32_t attempt);

 private:
  // Counts the retrieval exactly once: bumps requests, runs FetchInner,
  // then classifies the result into by_outcome / the registry mirror and
  // records wall latency. Having one counting site makes "one retrieval
  // lands in exactly one outcome class" (sum(by_outcome) == requests)
  // structural, instead of a property each of FetchInner's return paths
  // must individually preserve.
  FetchResult Fetch(const Url& url, bool head);
  // The policy machine: attempts, backoff, redirects. Touches the wire
  // counters (attempts/retries/redirects/bytes) but never by_outcome.
  FetchResult FetchInner(const Url& url, bool head);
  // Classifies one attempt's reply. kOk here means "usable HTTP reply".
  FetchOutcome ClassifyAttempt(const HttpResponse& response,
                               std::uint64_t attempt_elapsed_us) const;

  UrlFetcher& inner_;
  FetchPolicy policy_;
  Clock* clock_;
  FetchStats stats_;

  // Registry mirror; all null when no registry is attached.
  Counter* m_requests_ = nullptr;
  Counter* m_attempts_ = nullptr;
  Counter* m_retries_ = nullptr;
  Counter* m_redirects_ = nullptr;
  Counter* m_bytes_ = nullptr;
  std::array<Counter*, kFetchOutcomeCount> m_outcomes_{};
  Histogram* m_latency_ = nullptr;
};

}  // namespace weblint

#endif  // WEBLINT_NET_ROBUST_FETCHER_H_
