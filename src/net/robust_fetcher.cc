#include "net/robust_fetcher.h"

#include <algorithm>

#include "telemetry/log.h"
#include "telemetry/trace.h"
#include "util/digest.h"
#include "util/strings.h"

namespace weblint {

namespace {

// SplitMix64: a small, well-mixed pure function — the jitter source. Not a
// stateful RNG on purpose: jitter must depend only on (seed, url, attempt).
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool IsRetryableOutcome(FetchOutcome outcome) {
  return outcome == FetchOutcome::kTimeout || outcome == FetchOutcome::kRefused ||
         outcome == FetchOutcome::kTruncated;
}

FetchOutcome ClassifyFetchAttempt(const FetchPolicy& policy, const HttpResponse& response,
                                  std::uint64_t attempt_elapsed_us) {
  switch (response.transport) {
    case TransportError::kRefused:
      return FetchOutcome::kRefused;
    case TransportError::kTimeout:
      return FetchOutcome::kTimeout;
    case TransportError::kReset:
      return FetchOutcome::kTruncated;
    case TransportError::kMalformed:
      return FetchOutcome::kMalformed;
    case TransportError::kNone:
      break;
  }
  // A server that answered, but slower than the read deadline (observable
  // with simulated latency), is a timeout as far as the policy is concerned.
  if (attempt_elapsed_us > static_cast<std::uint64_t>(policy.read_deadline_ms) * 1000) {
    return FetchOutcome::kTimeout;
  }
  if (response.body.size() > policy.max_response_bytes) {
    return FetchOutcome::kTooLarge;
  }
  if (response.body_truncated) {
    return FetchOutcome::kTruncated;
  }
  return FetchOutcome::kOk;
}

std::string_view FetchOutcomeName(FetchOutcome outcome) {
  switch (outcome) {
    case FetchOutcome::kOk:
      return "ok";
    case FetchOutcome::kTimeout:
      return "timeout";
    case FetchOutcome::kTruncated:
      return "truncated";
    case FetchOutcome::kTooLarge:
      return "too_large";
    case FetchOutcome::kRefused:
      return "refused";
    case FetchOutcome::kMalformed:
      return "malformed";
    case FetchOutcome::kRedirectLoop:
      return "redirect_loop";
  }
  return "unknown";
}

std::string FormatFetchStats(const FetchStats& stats) {
  std::string out;
  out += StrFormat("fetch stats: requests=%d attempts=%d retries=%d redirects=%d bytes=%d\n",
                   stats.requests, stats.attempts, stats.retries, stats.redirects_followed,
                   stats.bytes_fetched);
  // "retrievals", not "pages": the outcome classes also count robots.txt
  // fetches and HEAD link probes made under the same policy.
  out += StrFormat("  retrievals ok=%d degraded=%d", stats.by_outcome[0], stats.degraded());
  for (size_t i = 1; i < stats.by_outcome.size(); ++i) {
    out += StrFormat(" %s=%d", FetchOutcomeName(static_cast<FetchOutcome>(i)),
                     stats.by_outcome[i]);
  }
  out += "\n";
  return out;
}

std::uint64_t RobustFetcher::BackoffMicros(const FetchPolicy& policy, const Url& url,
                                           std::uint32_t attempt) {
  // Exponential: base * 2^(attempt-1), capped.
  const std::uint32_t shift = attempt > 0 ? attempt - 1 : 0;
  std::uint64_t delay_ms = policy.backoff_base_ms;
  if (shift < 32) {
    delay_ms = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(policy.backoff_base_ms) << shift, policy.backoff_max_ms);
  } else {
    delay_ms = policy.backoff_max_ms;
  }
  // Deterministic jitter: up to half the delay again, from (seed, url,
  // attempt). No wall time, no global RNG.
  const std::uint64_t key =
      Mix64(policy.jitter_seed ^ Mix64(HashBytes(url.Serialize()) + attempt));
  const std::uint64_t jitter_ms = delay_ms == 0 ? 0 : key % (delay_ms / 2 + 1);
  return (delay_ms + jitter_ms) * 1000;
}

FetchOutcome RobustFetcher::ClassifyAttempt(const HttpResponse& response,
                                            std::uint64_t attempt_elapsed_us) const {
  return ClassifyFetchAttempt(policy_, response, attempt_elapsed_us);
}

void RobustFetcher::AttachMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_requests_ = m_attempts_ = m_retries_ = m_redirects_ = m_bytes_ = nullptr;
    m_outcomes_ = {};
    m_latency_ = nullptr;
    return;
  }
  m_requests_ = metrics->GetCounter("weblint_fetch_requests_total");
  m_attempts_ = metrics->GetCounter("weblint_fetch_attempts_total");
  m_retries_ = metrics->GetCounter("weblint_fetch_retries_total");
  m_redirects_ = metrics->GetCounter("weblint_fetch_redirects_total");
  m_bytes_ = metrics->GetCounter("weblint_fetch_bytes_total");
  for (size_t i = 0; i < kFetchOutcomeCount; ++i) {
    m_outcomes_[i] = metrics->GetCounter("weblint_fetch_outcomes_total", "outcome",
                                         FetchOutcomeName(static_cast<FetchOutcome>(i)));
  }
  m_latency_ = metrics->GetHistogram("weblint_fetch_micros");
}

FetchResult RobustFetcher::Fetch(const Url& url, bool head) {
  WEBLINT_SPAN("fetch");
  ++stats_.requests;
  if (m_requests_ != nullptr) {
    m_requests_->Increment();
  }
  const std::uint64_t start_us = clock_->NowMicros();
  FetchResult result = FetchInner(url, head);
  // The single outcome-classification site: exactly one by_outcome bucket
  // per retrieval, whatever path FetchInner took to produce it.
  ++stats_.by_outcome[static_cast<size_t>(result.outcome)];
  if (result.ok()) {
    stats_.bytes_fetched += result.response.body.size();
  } else {
    WEBLINT_LOG(kWarn, "fetch", "fetch-degraded",
                {{"url", url.Serialize()},
                 {"outcome", std::string(FetchOutcomeName(result.outcome))},
                 {"detail", result.detail}});
  }
  if (m_outcomes_[static_cast<size_t>(result.outcome)] != nullptr) {
    m_outcomes_[static_cast<size_t>(result.outcome)]->Increment();
    if (result.ok()) {
      m_bytes_->Increment(result.response.body.size());
    }
    m_latency_->Record(clock_->NowMicros() - start_us);
  }
  return result;
}

FetchResult RobustFetcher::FetchInner(const Url& url, bool head) {
  const std::uint64_t start_us = clock_->NowMicros();
  const std::uint64_t total_us = static_cast<std::uint64_t>(policy_.total_deadline_ms) * 1000;

  FetchResult result;
  Url current = url;
  result.final_url = url;

  for (std::uint32_t hop = 0;; ++hop) {
    FetchOutcome outcome = FetchOutcome::kTimeout;
    HttpResponse response;
    // Attempt loop: first try plus up to policy_.retries retries, all under
    // the total deadline.
    for (std::uint32_t attempt = 0; attempt <= policy_.retries; ++attempt) {
      if (clock_->NowMicros() - start_us > total_us) {
        outcome = FetchOutcome::kTimeout;
        break;
      }
      if (attempt > 0) {
        clock_->SleepMicros(BackoffMicros(policy_, current, attempt));
        if (clock_->NowMicros() - start_us > total_us) {
          // The backoff ate the total deadline: this retry never reached
          // the wire, so it counts as neither an attempt nor a retry
          // (keeping attempts == requests + retries + redirect re-requests
          // an exact identity).
          outcome = FetchOutcome::kTimeout;
          break;
        }
        ++stats_.retries;
        if (m_retries_ != nullptr) {
          m_retries_->Increment();
        }
      }
      ++stats_.attempts;
      if (m_attempts_ != nullptr) {
        m_attempts_->Increment();
      }
      ++result.attempts;
      const std::uint64_t attempt_start_us = clock_->NowMicros();
      response = head ? inner_.Head(current) : inner_.Get(current);
      outcome = ClassifyAttempt(response, clock_->NowMicros() - attempt_start_us);
      if (!IsRetryableOutcome(outcome)) {
        break;
      }
    }

    if (outcome != FetchOutcome::kOk) {
      result.outcome = outcome;
      result.final_url = current;
      result.detail = StrFormat("%s after %d attempt(s): %s", FetchOutcomeName(outcome),
                                result.attempts, current.Serialize());
      return result;
    }

    if (response.IsRedirect()) {
      const std::string_view location = response.Header("location");
      if (!location.empty()) {
        if (hop >= policy_.max_redirects) {
          result.outcome = FetchOutcome::kRedirectLoop;
          result.final_url = current;
          result.detail = StrFormat("redirect_loop after %d hop(s): %s", hop,
                                    current.Serialize());
          return result;
        }
        ++stats_.redirects_followed;
        if (m_redirects_ != nullptr) {
          m_redirects_->Increment();
        }
        ++result.redirect_hops;
        current = ResolveUrl(current, location);
        continue;
      }
      // A redirect without a Location is a complete (if useless) reply.
    }

    result.outcome = FetchOutcome::kOk;
    result.final_url = current;
    result.response = std::move(response);
    return result;
  }
}

FetchResult RobustFetcher::FetchPage(const Url& url) { return Fetch(url, /*head=*/false); }

FetchResult RobustFetcher::FetchHead(const Url& url) { return Fetch(url, /*head=*/true); }

HttpResponse RobustFetcher::Get(const Url& url) {
  FetchResult result = FetchPage(url);
  if (result.ok()) {
    return std::move(result.response);
  }
  HttpResponse degraded;
  degraded.status = 0;
  degraded.reason = std::string(FetchOutcomeName(result.outcome));
  degraded.transport = result.outcome == FetchOutcome::kRefused ? TransportError::kRefused
                       : result.outcome == FetchOutcome::kTimeout ? TransportError::kTimeout
                                                                  : TransportError::kReset;
  return degraded;
}

HttpResponse RobustFetcher::Head(const Url& url) {
  FetchResult result = FetchHead(url);
  if (result.ok()) {
    return std::move(result.response);
  }
  HttpResponse degraded;
  degraded.status = 0;
  degraded.reason = std::string(FetchOutcomeName(result.outcome));
  return degraded;
}

}  // namespace weblint
