#include "net/fetcher.h"

#include "util/file_io.h"

namespace weblint {

std::string_view ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 301:
      return "Moved Permanently";
    case 302:
      return "Found";
    case 303:
      return "See Other";
    case 307:
      return "Temporary Redirect";
    case 400:
      return "Bad Request";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 410:
      return "Gone";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string_view TransportErrorName(TransportError error) {
  switch (error) {
    case TransportError::kNone:
      return "none";
    case TransportError::kRefused:
      return "refused";
    case TransportError::kTimeout:
      return "timeout";
    case TransportError::kReset:
      return "reset";
    case TransportError::kMalformed:
      return "malformed";
  }
  return "unknown";
}

HttpResponse UrlFetcher::Head(const Url& url) {
  HttpResponse response = Get(url);
  response.body.clear();
  return response;
}

HttpResponse UrlFetcher::GetFollowingRedirects(const Url& url, int max_redirects,
                                               Url* final_url) {
  Url current = url;
  for (int hop = 0; hop <= max_redirects; ++hop) {
    HttpResponse response = Get(current);
    if (!response.IsRedirect()) {
      if (final_url != nullptr) {
        *final_url = current;
      }
      return response;
    }
    const std::string_view location = response.Header("location");
    if (location.empty()) {
      if (final_url != nullptr) {
        *final_url = current;
      }
      return response;
    }
    current = ResolveUrl(current, location);
  }
  HttpResponse too_many;
  too_many.status = 508;
  too_many.reason = "redirect loop";
  if (final_url != nullptr) {
    *final_url = current;
  }
  return too_many;
}

HttpResponse FileFetcher::Get(const Url& url) {
  HttpResponse response;
  if (!url.scheme.empty() && url.scheme != "file") {
    response.status = 400;
    response.reason = "FileFetcher only serves file URLs";
    return response;
  }
  std::string path = UrlDecode(url.path);
  if (!root_.empty() && (path.empty() || path.front() != '/')) {
    path = PathJoin(root_, path);
  }
  auto content = ReadFile(path);
  if (!content.ok()) {
    response.status = 404;
    response.reason = std::string(ReasonPhrase(404));
    return response;
  }
  response.status = 200;
  response.reason = "OK";
  response.headers["content-type"] =
      LooksLikeHtml(path) ? "text/html" : "application/octet-stream";
  response.body = std::move(*content);
  return response;
}

}  // namespace weblint
