// Shared syscall wrappers for the net layer.
//
// Every socket path in src/net needs the same three disciplines: fcntl
// results checked (a silently-still-blocking fd turns the reactor into a
// stalled thread), EINTR retried (a profiling signal must not surface as a
// transport error), and sends flagged MSG_NOSIGNAL (a peer hangup is an
// EPIPE return, never a process-killing SIGPIPE). Centralising them here
// keeps http_server.cc, socket_fetcher.cc, and the reactor from each
// re-deriving the idioms slightly differently.
#ifndef WEBLINT_NET_NET_UTIL_H_
#define WEBLINT_NET_NET_UTIL_H_

#include <poll.h>

#include <cstddef>
#include <string_view>

namespace weblint {

// Sets or clears O_NONBLOCK. Returns false if either fcntl fails (fd closed
// under us, bad fd) — callers must treat that as a dead connection instead
// of proceeding with an fd in an unknown blocking mode.
bool SetNonBlocking(int fd, bool non_blocking);

// poll() retried on EINTR. The timeout is not recomputed across retries:
// every caller in this codebase polls in short deadline-checked slices, so
// an interrupted slice erring long by a few ms is harmless.
int PollRetry(pollfd* fds, nfds_t count, int timeout_ms);

// read() retried on EINTR. All other outcomes (including EAGAIN) pass
// through for the caller to classify.
long ReadRetry(int fd, void* buf, size_t count);

// send(MSG_NOSIGNAL | flags) retried on EINTR.
long SendRetry(int fd, const void* buf, size_t count, int flags = 0);

// Writes all of `data` with SendRetry, looping over short writes. The fd
// must be in blocking mode (a nonblocking fd can legitimately return EAGAIN
// mid-buffer, which this reports as failure). Returns false on any error.
bool WriteAll(int fd, std::string_view data);

// One nonblocking best-effort send attempt (MSG_DONTWAIT): returns true if
// every byte was accepted by the socket buffer. Used for fire-and-forget
// error responses (shed 503s, 408/413 on teardown) where a slow peer must
// cost nothing — on EAGAIN the bytes are simply dropped.
bool SendBestEffortNonBlocking(int fd, std::string_view data);

}  // namespace weblint

#endif  // WEBLINT_NET_NET_UTIL_H_
