// URL fetching interface (the LWP substitute).
//
// check_url, the gateway, and the poacher robot retrieve pages through this
// interface. Implementations: FileFetcher (file:// and plain paths) and
// VirtualWeb (an in-memory web used to exercise the HTTP code paths —
// redirects, 404s, robots.txt — deterministically and offline).
#ifndef WEBLINT_NET_FETCHER_H_
#define WEBLINT_NET_FETCHER_H_

#include <string>

#include "net/response.h"
#include "util/url.h"

namespace weblint {

class UrlFetcher {
 public:
  virtual ~UrlFetcher() = default;

  // GET: retrieves headers and body.
  virtual HttpResponse Get(const Url& url) = 0;

  // HEAD: status and headers only (broken-link robots "merely consist of
  // sending a HEAD request, and reporting all URLs which result in a 404" —
  // paper §3.5). Default: Get with the body dropped.
  virtual HttpResponse Head(const Url& url);

  // Follows up to `max_redirects` redirects from `url`. `final_url` (if
  // non-null) receives the URL that produced the returned response.
  HttpResponse GetFollowingRedirects(const Url& url, int max_redirects, Url* final_url);
};

// Serves file:// URLs (and URLs with no scheme, treated as local paths)
// from the local filesystem: 200 with the file body, 404 when absent.
class FileFetcher : public UrlFetcher {
 public:
  // Paths are resolved relative to `root` (empty = process CWD).
  explicit FileFetcher(std::string root = {}) : root_(std::move(root)) {}
  HttpResponse Get(const Url& url) override;

 private:
  std::string root_;
};

}  // namespace weblint

#endif  // WEBLINT_NET_FETCHER_H_
