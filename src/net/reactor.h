// The event-driven I/O core: one thread multiplexing many nonblocking
// sockets through epoll (poll fallback), with deadlines kept in a hashed
// timer wheel (timer_wheel.h) driven by the injected Clock.
//
// This is the refactor the ROADMAP calls "the one that unlocks every scale
// item": thread-per-connection pins a pool worker per idle keep-alive
// connection and per in-flight fetch, so both the gateway's connection
// count and the poacher's fetch concurrency scale with thread count. A
// reactor holds thousands of connection state machines on one thread;
// workers are only spent on actual lint work.
//
// Ownership/threading model (deliberately strict, so no per-connection
// locks exist anywhere):
//  * Exactly one thread runs Run()/PollOnce() — the loop thread.
//  * Watch/SetEvents/Unwatch/AddTimer/CancelTimer are loop-thread-only
//    (callable before the loop starts, while it is single-threaded).
//  * Post() is the one cross-thread door: it enqueues a task and wakes the
//    loop via the self-pipe. Pool workers hand results back this way.
//  * Stop() is thread-safe (it Posts the stop).
//
// Determinism story: the wheel fires timers in (deadline, insertion id)
// order, and the loop re-checks the injected Clock every poll slice — the
// same kPollSliceMs idiom the blocking paths use — so FakeClock tests
// observe expiries within one real slice of Advance(), in an order that is
// a pure function of the armed deadlines.
#ifndef WEBLINT_NET_REACTOR_H_
#define WEBLINT_NET_REACTOR_H_

#include <poll.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/timer_wheel.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

namespace weblint {

struct ReactorOptions {
  // Deadline time source; null = the system clock. FakeClock tests drive
  // timer expiry with Advance(), never wall time.
  Clock* clock = nullptr;
  // Timer wheel granularity and rotation size. One-millisecond ticks match
  // the millisecond deadlines in HttpServerOptions/FetchPolicy.
  std::uint64_t tick_micros = 1000;
  std::size_t timer_slots = 256;
  // Use the portable poll() backend even where epoll is available — lets
  // tests exercise the fallback on the same machine.
  bool force_poll_backend = false;
  // Optional registry: publishes weblint_reactor_loop_micros (time spent
  // per loop iteration doing work, system-clock measured),
  // weblint_reactor_fds and weblint_reactor_timers gauges.
  MetricsRegistry* metrics = nullptr;
};

class Reactor {
 public:
  // Event mask bits, both for Watch() interest and handler delivery.
  // kError is always delivered regardless of interest (HUP/ERR).
  static constexpr std::uint32_t kReadable = 1u;
  static constexpr std::uint32_t kWritable = 2u;
  static constexpr std::uint32_t kError = 4u;

  // Handlers receive the ready mask. Level-triggered: a handler that does
  // not drain the socket is called again next iteration. Handlers may call
  // any loop-thread-only method, including Unwatch on their own fd.
  using IoHandler = std::function<void(std::uint32_t events)>;

  explicit Reactor(ReactorOptions options = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Registers `fd` (must already be nonblocking) for `events`. Replaces any
  // existing registration. Returns false if the backend rejects the fd.
  bool Watch(int fd, std::uint32_t events, IoHandler handler);

  // Changes the interest mask of a watched fd, keeping its handler.
  bool SetEvents(int fd, std::uint32_t events);

  // Removes the registration. The fd is not closed. Safe on unwatched fds.
  void Unwatch(int fd);

  // Arms a timer at an absolute Clock deadline (microseconds). Returns the
  // wheel id for CancelTimer. Fires at the first loop iteration where
  // clock->NowMicros() >= deadline.
  std::uint64_t AddTimer(std::uint64_t deadline_micros, std::function<void()> callback);
  bool CancelTimer(std::uint64_t id);

  // Cross-thread: enqueues `task` to run on the loop thread and wakes the
  // loop. The only Reactor method callable off the loop thread (plus Stop).
  void Post(std::function<void()> task);

  // Runs the loop until Stop(). Alternates posted tasks, due timers, and
  // ready fds, sleeping at most one slice between checks.
  void Run();

  // One loop iteration, waiting at most `max_wait_ms` for events; returns
  // the number of tasks + timers + io handlers run. Exposed for tests and
  // for callers that interleave their own per-slice work with the loop.
  std::size_t PollOnce(int max_wait_ms);

  // Thread-safe; the loop exits after finishing its current iteration.
  void Stop();
  bool stopped() const { return stop_.load(); }

  Clock* clock() const { return clock_; }
  std::uint64_t NowMicros() const { return clock_->NowMicros(); }

  // Loop-thread snapshots.
  std::size_t watched_fds() const { return watches_.size(); }
  std::size_t armed_timers() const { return wheel_.size(); }
  bool using_epoll() const { return epoll_fd_ >= 0; }

 private:
  // Not named Watch: the method of that name would shadow the type.
  struct WatchEntry {
    std::uint32_t events = 0;
    IoHandler handler;
  };

  bool BackendAdd(int fd, std::uint32_t events);
  bool BackendMod(int fd, std::uint32_t events);
  void BackendDel(int fd);
  // Waits for events, then runs handlers. Returns handlers run.
  std::size_t WaitAndDispatch(int wait_ms);
  std::size_t RunPostedTasks();
  void DrainWakePipe();

  Clock* clock_;
  TimerWheel wheel_;
  std::unordered_map<int, WatchEntry> watches_;
  int epoll_fd_ = -1;  // -1 = poll backend.
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> stop_{false};

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;

  // Scratch for the poll backend, reused across iterations.
  std::vector<::pollfd> poll_scratch_;

  Histogram* loop_micros_ = nullptr;
  Gauge* fds_gauge_ = nullptr;
  Gauge* timers_gauge_ = nullptr;
};

}  // namespace weblint

#endif  // WEBLINT_NET_REACTOR_H_
