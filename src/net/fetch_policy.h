// Fetch robustness policy and outcome taxonomy.
//
// The paper's poacher robot "runs weblint over a site traversal engine"
// against the live web — which means stalled servers, dropped bodies,
// redirect loops, and multi-megabyte accidents. The policy bounds what one
// page retrieval may cost; the outcome enum classifies how retrievals end so
// callers can degrade per page (a lint diagnostic) instead of aborting the
// run. RobustFetcher (robust_fetcher.h) enforces the policy over any
// UrlFetcher.
#ifndef WEBLINT_NET_FETCH_POLICY_H_
#define WEBLINT_NET_FETCH_POLICY_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/response.h"
#include "util/url.h"

namespace weblint {

struct FetchPolicy {
  // Deadlines. `connect`/`read` bound one attempt; `total` bounds the whole
  // retrieval including retries, backoff and redirect hops.
  std::uint32_t connect_deadline_ms = 2000;
  std::uint32_t read_deadline_ms = 5000;
  std::uint32_t total_deadline_ms = 15000;

  // Bounded retries with exponential backoff. `retries` counts additional
  // attempts after the first; backoff doubles per retry from `base`, capped
  // at `max`, plus deterministic jitter derived from (`jitter_seed`, url,
  // attempt) — never from wall time or a global RNG.
  std::uint32_t retries = 2;
  std::uint32_t backoff_base_ms = 100;
  std::uint32_t backoff_max_ms = 2000;
  std::uint64_t jitter_seed = 1;

  // Resource caps.
  std::uint32_t max_redirects = 5;
  std::uint64_t max_response_bytes = 8u << 20;
  std::uint32_t max_header_bytes = 64u << 10;
};

// How a policy-governed retrieval ended. Everything except kOk is a
// degraded outcome: the page produced no usable body.
enum class FetchOutcome {
  kOk,            // A complete HTTP reply (any status code) within policy.
  kTimeout,       // A deadline expired (per-attempt or total).
  kTruncated,     // Body shorter than its declared Content-Length.
  kTooLarge,      // Body exceeded max_response_bytes.
  kRefused,       // Connection refused on every attempt.
  kMalformed,     // Reply did not parse as HTTP.
  kRedirectLoop,  // More than max_redirects hops.
};

inline constexpr size_t kFetchOutcomeCount = 7;

std::string_view FetchOutcomeName(FetchOutcome outcome);

// One classified retrieval.
struct FetchResult {
  FetchOutcome outcome = FetchOutcome::kOk;
  HttpResponse response;  // Meaningful only when outcome == kOk.
  Url final_url;          // Where the last attempt/hop landed.
  std::uint32_t attempts = 0;
  std::uint32_t redirect_hops = 0;
  std::string detail;  // Deterministic human-readable summary.

  bool ok() const { return outcome == FetchOutcome::kOk; }
};

// Counters accumulated by a RobustFetcher across retrievals. All counts are
// derived from the (deterministic) request sequence, so two identical runs
// produce identical stats.
struct FetchStats {
  std::uint64_t requests = 0;            // FetchPage/Get/Head calls.
  std::uint64_t attempts = 0;            // Individual wire attempts.
  std::uint64_t retries = 0;             // attempts beyond the first.
  std::uint64_t redirects_followed = 0;  // Hops taken.
  std::uint64_t bytes_fetched = 0;       // Body bytes of kOk results.
  std::array<std::uint64_t, kFetchOutcomeCount> by_outcome{};  // Indexed by FetchOutcome.

  std::uint64_t degraded() const {
    std::uint64_t n = 0;
    for (size_t i = 1; i < by_outcome.size(); ++i) {  // Skip kOk.
      n += by_outcome[i];
    }
    return n;
  }

  void MergeFrom(const FetchStats& other) {
    requests += other.requests;
    attempts += other.attempts;
    retries += other.retries;
    redirects_followed += other.redirects_followed;
    bytes_fetched += other.bytes_fetched;
    for (size_t i = 0; i < by_outcome.size(); ++i) {
      by_outcome[i] += other.by_outcome[i];
    }
  }
};

// Multi-line summary for `poacher --fetch-stats` (stable field order, so
// runs can be diffed byte for byte).
std::string FormatFetchStats(const FetchStats& stats);

}  // namespace weblint

#endif  // WEBLINT_NET_FETCH_POLICY_H_
