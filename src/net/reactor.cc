#include "net/reactor.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "net/net_util.h"

namespace weblint {

namespace {

// The real-time slice bound, matching the blocking paths' kPollSliceMs: the
// loop never parks longer than this, so a FakeClock Advance() (or a Stop()
// that lost the wake race) is noticed within one slice.
constexpr int kSliceMs = 10;

#ifdef __linux__
std::uint32_t ToEpollMask(std::uint32_t events) {
  std::uint32_t mask = 0;
  if (events & Reactor::kReadable) mask |= EPOLLIN;
  if (events & Reactor::kWritable) mask |= EPOLLOUT;
  return mask;
}
#endif

}  // namespace

Reactor::Reactor(ReactorOptions options)
    : clock_(options.clock != nullptr ? options.clock : Clock::System()),
      wheel_(options.tick_micros, options.timer_slots) {
#ifdef __linux__
  if (!options.force_poll_backend) {
    epoll_fd_ = ::epoll_create1(0);
  }
#endif
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) == 0) {
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
    SetNonBlocking(wake_read_fd_, true);
    SetNonBlocking(wake_write_fd_, true);
    Watch(wake_read_fd_, kReadable, [this](std::uint32_t) { DrainWakePipe(); });
  }
  if (options.metrics != nullptr) {
    loop_micros_ = options.metrics->GetHistogram("weblint_reactor_loop_micros");
    fds_gauge_ = options.metrics->GetGauge("weblint_reactor_fds");
    timers_gauge_ = options.metrics->GetGauge("weblint_reactor_timers");
  }
}

Reactor::~Reactor() {
#ifdef __linux__
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

bool Reactor::BackendAdd(int fd, std::uint32_t events) {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = ToEpollMask(events);
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }
#endif
  (void)events;
  return true;  // The poll backend builds its fd set per iteration.
}

bool Reactor::BackendMod(int fd, std::uint32_t events) {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = ToEpollMask(events);
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }
#endif
  (void)fd;
  (void)events;
  return true;
}

void Reactor::BackendDel(int fd) {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  (void)fd;
}

bool Reactor::Watch(int fd, std::uint32_t events, IoHandler handler) {
  if (fd < 0) return false;
  const auto it = watches_.find(fd);
  if (it != watches_.end()) {
    it->second.events = events;
    it->second.handler = std::move(handler);
    return BackendMod(fd, events);
  }
  if (!BackendAdd(fd, events)) return false;
  watches_.emplace(fd, WatchEntry{events, std::move(handler)});
  return true;
}

bool Reactor::SetEvents(int fd, std::uint32_t events) {
  const auto it = watches_.find(fd);
  if (it == watches_.end()) return false;
  if (it->second.events == events) return true;
  it->second.events = events;
  return BackendMod(fd, events);
}

void Reactor::Unwatch(int fd) {
  if (watches_.erase(fd) > 0) {
    BackendDel(fd);
  }
}

std::uint64_t Reactor::AddTimer(std::uint64_t deadline_micros,
                                std::function<void()> callback) {
  return wheel_.Add(deadline_micros, std::move(callback));
}

bool Reactor::CancelTimer(std::uint64_t id) { return wheel_.Cancel(id); }

void Reactor::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(task));
  }
  if (wake_write_fd_ >= 0) {
    const char byte = 0;
    (void)::write(wake_write_fd_, &byte, 1);  // EAGAIN = already signalled.
  }
}

void Reactor::Stop() {
  stop_.store(true);
  if (wake_write_fd_ >= 0) {
    const char byte = 0;
    (void)::write(wake_write_fd_, &byte, 1);
  }
}

void Reactor::DrainWakePipe() {
  char buf[256];
  while (ReadRetry(wake_read_fd_, buf, sizeof(buf)) > 0) {
  }
}

std::size_t Reactor::RunPostedTasks() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& task : batch) {
    task();
  }
  return batch.size();
}

std::size_t Reactor::WaitAndDispatch(int wait_ms) {
  std::size_t ran = 0;
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event events[128];
    int n = ::epoll_wait(epoll_fd_, events, 128, wait_ms);
    if (n < 0 && errno == EINTR) n = 0;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      std::uint32_t mask = 0;
      if (events[i].events & EPOLLIN) mask |= kReadable;
      if (events[i].events & EPOLLOUT) mask |= kWritable;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) mask |= kError | kReadable;
      // Look the watch up per event: an earlier handler in this batch may
      // have Unwatched (and even closed) this fd.
      const auto it = watches_.find(fd);
      if (it == watches_.end() || !it->second.handler) continue;
      it->second.handler(mask);
      ++ran;
    }
    return ran;
  }
#endif
  poll_scratch_.clear();
  for (const auto& [fd, watch] : watches_) {
    short interest = 0;
    if (watch.events & kReadable) interest |= POLLIN;
    if (watch.events & kWritable) interest |= POLLOUT;
    poll_scratch_.push_back(pollfd{fd, interest, 0});
  }
  const int n = PollRetry(poll_scratch_.data(),
                          static_cast<nfds_t>(poll_scratch_.size()), wait_ms);
  if (n <= 0) return 0;
  for (const pollfd& p : poll_scratch_) {
    if (p.revents == 0) continue;
    std::uint32_t mask = 0;
    if (p.revents & POLLIN) mask |= kReadable;
    if (p.revents & POLLOUT) mask |= kWritable;
    if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) mask |= kError | kReadable;
    const auto it = watches_.find(p.fd);
    if (it == watches_.end() || !it->second.handler) continue;
    it->second.handler(mask);
    ++ran;
  }
  return ran;
}

std::size_t Reactor::PollOnce(int max_wait_ms) {
  const std::uint64_t work_start = Clock::System()->NowMicros();
  std::size_t ran = RunPostedTasks();
  ran += wheel_.Advance(clock_->NowMicros());

  // Bound the park: never past one slice (FakeClock advances and lost
  // wakeups are only visible by re-checking), never past the next armed
  // deadline (real-clock timers fire promptly), and not at all if work is
  // already queued.
  int wait_ms = std::min(max_wait_ms, kSliceMs);
  const std::uint64_t next_deadline = wheel_.NextDeadlineMicros();
  if (next_deadline != UINT64_MAX) {
    const std::uint64_t now = clock_->NowMicros();
    const std::uint64_t until_ms =
        next_deadline <= now ? 0 : (next_deadline - now + 999) / 1000;
    wait_ms = static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(wait_ms), until_ms));
  }
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    if (!posted_.empty()) wait_ms = 0;
  }
  if (stop_.load()) wait_ms = 0;

  ran += WaitAndDispatch(wait_ms);

  if (loop_micros_ != nullptr && ran > 0) {
    // Time spent doing work this iteration (parked wait excluded would need
    // two extra clock reads; the wait is bounded by one slice, so the
    // histogram's tail reflects handler cost, which is the signal).
    loop_micros_->Record(Clock::System()->NowMicros() - work_start);
  }
  if (fds_gauge_ != nullptr) {
    fds_gauge_->Set(static_cast<std::int64_t>(watches_.size()));
  }
  if (timers_gauge_ != nullptr) {
    timers_gauge_->Set(static_cast<std::int64_t>(wheel_.size()));
  }
  return ran;
}

void Reactor::Run() {
  while (!stop_.load()) {
    PollOnce(kSliceMs);
  }
}

}  // namespace weblint
