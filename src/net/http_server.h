// A minimal blocking HTTP/1.0 server: one request per connection, handler
// callback per request. Exists so the weblint gateway can be deployed
// standalone ("a standard gateway distribution, particularly for
// installation behind firewalls", paper §4.6) and so the end-to-end tests
// can exercise a genuine socket round-trip.
#ifndef WEBLINT_NET_HTTP_SERVER_H_
#define WEBLINT_NET_HTTP_SERVER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>

#include "net/http_wire.h"
#include "telemetry/metrics.h"
#include "util/clock.h"
#include "util/result.h"

namespace weblint {

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // Wire-level plan for delivering one response — the fault-injection hook
  // (fault_injection.h). The default plan sends `bytes` in one write.
  struct WirePlan {
    std::string bytes;               // Exact bytes to put on the wire.
    std::uint32_t stall_ms = 0;      // Sleep before the first write.
    size_t chunk_bytes = 0;          // 0 = single write; else drip chunks...
    std::uint32_t chunk_delay_ms = 0;  // ...with this sleep between them.
    bool close_before_write = false;   // Drop the connection, send nothing.
  };
  // Maps (request, serialized response) to the bytes actually written.
  // Installed only by fault-injection harnesses; never in production.
  using WireShaper = std::function<WirePlan(const HttpRequest&, std::string serialized)>;

  explicit HttpServer(Handler handler) : handler_(std::move(handler)) {}
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port,
  // readable from port() afterwards).
  Status Listen(std::uint16_t port);
  std::uint16_t port() const { return port_; }

  // Accepts one connection, reads one request, writes the handler's
  // response, closes. Fails only for accept-side errors (the listening
  // socket is unusable). Write-side failures — the client disconnected
  // before or during the response — close that connection, bump
  // write_failures(), and return Ok: one flaky client must not stop the
  // server. Responses are sent with MSG_NOSIGNAL, so an early hangup is an
  // EPIPE error, never a SIGPIPE.
  Status ServeOne();

  // Serves until `max_requests` have been handled (0 = forever / until an
  // accept error). Connections whose response could not be delivered still
  // count as handled.
  Status Serve(size_t max_requests);

  // Connections whose response could not be fully written (client hung up
  // early, connection reset).
  size_t write_failures() const { return write_failures_; }

  // Installs a response-byte mangler for fault-injection tests (null to
  // remove). Call before Serve; the shaper runs on the serving thread.
  void set_wire_shaper(WireShaper shaper) { wire_shaper_ = std::move(shaper); }

  // Turns on the observability surface (null registry turns it off again):
  //  * GET /metrics answers with the registry's Prometheus exposition text
  //    (the handler never sees it) — the scrape endpoint of a standalone
  //    gateway deployment.
  //  * Every other request is counted into weblint_http_requests_total,
  //    weblint_http_responses_total{class="2xx"...}, and the
  //    weblint_http_request_micros latency histogram (handler time,
  //    measured on `clock`; null = system clock).
  // Call before Serve; not thread-safe against a running Serve loop.
  void EnableMetrics(MetricsRegistry* registry, Clock* clock = nullptr);

  void Close();

 private:
  Handler handler_;
  WireShaper wire_shaper_;
  MetricsRegistry* metrics_ = nullptr;
  Clock* metrics_clock_ = nullptr;
  Counter* requests_total_ = nullptr;
  Histogram* request_micros_ = nullptr;
  std::array<Counter*, 5> responses_by_class_{};  // 1xx..5xx.
  // Atomic: Close() may run on another thread to unblock a Serve() loop
  // parked in accept().
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  size_t write_failures_ = 0;
};

}  // namespace weblint

#endif  // WEBLINT_NET_HTTP_SERVER_H_
