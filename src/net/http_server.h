// The gateway's HTTP serving layer (paper §4.6: "I regularly receive
// requests for a standard gateway distribution, particularly for
// installation behind firewalls, e.g. for intranet use").
//
// Two serving modes share one listener and one dispatch path:
//
//  * The legacy blocking mode (ServeOne / Serve): accept one connection,
//    read one request, respond, close. HTTP/1.0, single-threaded. Kept for
//    the fault-injection harnesses, whose wire shapers deliberately mangle
//    one response per connection.
//
//  * The concurrent mode (Start / Drain): a dedicated accept thread feeds
//    connections to a ThreadPool of workers. Each worker owns its
//    connection for the connection's lifetime: HTTP/1.1 keep-alive with
//    correct Connection: close / keep-alive semantics, a per-connection
//    request cap, and per-request read/write deadlines driven by the
//    injected Clock (tests substitute a FakeClock, so timeout behaviour is
//    deterministic). The pending-connection queue is bounded: when it is
//    full the accept thread sheds the connection with 503 + Retry-After
//    instead of stalling the accept loop — under overload the gateway
//    degrades by refusing crisply, never by hanging. Drain() stops
//    accepting, lets every in-flight request finish, then closes.
#ifndef WEBLINT_NET_HTTP_SERVER_H_
#define WEBLINT_NET_HTTP_SERVER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "net/http_wire.h"
#include "telemetry/metrics.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace weblint {

class StructuredLog;
class TraceRecorder;

// What the z-page endpoints surface (see EnableIntrospection). Any member
// may be null/0: each endpoint simply omits what it does not have.
struct HttpServerIntrospection {
  MetricsRegistry* metrics = nullptr;  // /statusz gauge dump (usually the
                                       // same registry as EnableMetrics).
  TraceRecorder* traces = nullptr;     // /tracez + per-request correlation.
  StructuredLog* log = nullptr;        // /statusz recent warn/error events.
  Clock* clock = nullptr;              // Uptime / trace timestamps; null = system.
  std::uint64_t config_fingerprint = 0;  // Config::Fingerprint() of the served config.
};

// Tuning for the concurrent serving mode. The defaults suit a small
// standalone gateway; the binaries expose them as --threads / --max-queue /
// --request-timeout.
struct HttpServerOptions {
  // Worker threads handling connections. 0 = ThreadPool::DefaultThreadCount().
  unsigned threads = 0;
  // Accepted connections waiting for a worker. Beyond this the accept
  // thread sheds with 503 + Retry-After.
  size_t max_queue = 64;
  // Per-request deadline: the whole of reading one request and writing its
  // response must fit in this window, measured on `clock`. An idle
  // keep-alive connection is closed after this long without a new request.
  std::uint32_t request_timeout_ms = 10'000;
  // Keep-alive request cap: after this many requests on one connection the
  // server answers Connection: close and hangs up (bounds how long one
  // client can pin a worker).
  std::uint32_t max_requests_per_connection = 100;
  // Deadline time source; null = the system clock. Tests inject a FakeClock
  // so deadline expiry is driven by Advance(), not wall time.
  Clock* clock = nullptr;
  // Event-driven serving (Start only): connections are held by a reactor —
  // epoll (poll fallback) plus a timer wheel — on one loop thread, and only
  // complete requests are dispatched to the worker pool. An idle keep-alive
  // connection then costs one watched fd instead of one parked worker, so
  // the gateway holds c10k-scale connection counts with a handful of
  // threads. false = the thread-per-connection mode above.
  bool event_driven = false;
};

class ReactorServerCore;

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // Wire-level plan for delivering one response — the fault-injection hook
  // (fault_injection.h). The default plan sends `bytes` in one write.
  struct WirePlan {
    std::string bytes;               // Exact bytes to put on the wire.
    std::uint32_t stall_ms = 0;      // Sleep before the first write.
    size_t chunk_bytes = 0;          // 0 = single write; else drip chunks...
    std::uint32_t chunk_delay_ms = 0;  // ...with this sleep between them.
    bool close_before_write = false;   // Drop the connection, send nothing.
  };
  // Maps (request, serialized response) to the bytes actually written.
  // Installed only by fault-injection harnesses; never in production.
  using WireShaper = std::function<WirePlan(const HttpRequest&, std::string serialized)>;

  // Out of line: reactor_core_'s unique_ptr needs the complete
  // ReactorServerCore at destructor-instantiation time (http_server.cc).
  explicit HttpServer(Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port,
  // readable from port() afterwards).
  Status Listen(std::uint16_t port);
  std::uint16_t port() const { return port_; }

  // --- Legacy blocking mode -------------------------------------------

  // Accepts one connection, reads one request, writes the handler's
  // response, closes. Fails only for accept-side errors (the listening
  // socket is unusable). Write-side failures — the client disconnected
  // before or during the response — close that connection, bump
  // write_failures(), and return Ok: one flaky client must not stop the
  // server. Responses are sent with MSG_NOSIGNAL, so an early hangup is an
  // EPIPE error, never a SIGPIPE.
  Status ServeOne();

  // Serves until `max_requests` have been handled (0 = forever / until an
  // accept error). Connections whose response could not be delivered still
  // count as handled.
  Status Serve(size_t max_requests);

  // --- Concurrent mode ------------------------------------------------

  // Spawns the accept thread and the worker pool, then returns; connections
  // are served until Drain(). Call after Listen(); fails if not listening
  // or already started. Options (including the clock) are fixed for the
  // server's lifetime once started.
  Status Start(const HttpServerOptions& options = {});

  // Graceful shutdown: stop accepting, let queued and in-flight requests
  // finish (keep-alive connections are told Connection: close on their next
  // response; idle ones are released immediately), then close every
  // socket. Idempotent; also invoked by the destructor. After Drain() the
  // server cannot be restarted.
  void Drain();

  // True between a successful Start() and Drain().
  bool running() const { return started_.load() && !draining_.load(); }

  // Racy snapshots for tests and load-shed decisions.
  size_t queue_depth() const { return queued_.load(); }     // Awaiting a worker.
  size_t in_flight() const { return in_flight_.load(); }    // Being handled.
  size_t rejected() const { return rejected_.load(); }      // Shed with 503.
  std::uint64_t connections_served() const { return connections_.load(); }
  size_t deadline_kills() const { return deadline_kills_.load(); }

  // Connections whose response could not be fully written (client hung up
  // early, connection reset).
  size_t write_failures() const { return write_failures_.load(); }

  // Installs a response-byte mangler for fault-injection tests (null to
  // remove). Call before Serve; the shaper runs on the serving thread.
  // Concurrent mode treats a shaped connection as one-shot (no keep-alive):
  // the shaper owns the wire for that response, including the close.
  void set_wire_shaper(WireShaper shaper) { wire_shaper_ = std::move(shaper); }

  // Turns on the observability surface (null registry turns it off again):
  //  * GET /metrics answers with the registry's Prometheus exposition text
  //    (the handler never sees it) — the scrape endpoint of a standalone
  //    gateway deployment.
  //  * Every other request is counted into weblint_http_requests_total,
  //    weblint_http_responses_total{class="2xx"...}, and the
  //    weblint_http_request_micros latency histogram (handler time,
  //    measured on `clock`; null = system clock).
  //  * The concurrent mode additionally publishes weblint_http_inflight,
  //    weblint_http_queue_depth, weblint_http_rejected_total,
  //    weblint_http_connections_total, weblint_http_keepalive_reuse_total
  //    and weblint_http_deadline_kills_total.
  // Call before Serve/Start; not thread-safe against a running server.
  void EnableMetrics(MetricsRegistry* registry, Clock* clock = nullptr);

  // Turns on the z-page endpoints — served on every mode that funnels
  // through Dispatch (blocking, thread-per-connection, and event-driven):
  //  * GET /healthz — 200 "ok" while serving, 503 "draining" once draining
  //    or lame-duck, so a load balancer stops routing before shutdown.
  //  * GET /statusz — build info, config fingerprint, uptime, serving
  //    state, server counters, every registered gauge, trace-sampler
  //    counts, and the most recent warn/error log events.
  //  * GET /tracez — the sampled slow/error traces with their span trees,
  //    as text (default) or JSON (?format=json).
  // When `introspection.traces` is set, every non-z-page request also runs
  // under a fresh trace id (correlating its spans and log lines) and is
  // recorded into the sampler, errored = 5xx response.
  // Z-page requests themselves are never traced or counted into the
  // request series. Call before Serve/Start, like EnableMetrics.
  void EnableIntrospection(const HttpServerIntrospection& introspection);

  // Lame-duck mode: /healthz starts answering 503 while every other
  // endpoint keeps serving. Call it, give load balancers a grace period to
  // see the failing health check, then Drain(). Idempotent.
  void BeginLameDuck();
  bool lame_duck() const { return lame_duck_.load(); }

  void Close();

 private:
  // The reactor-mode connection state machine lives in its own class (same
  // translation unit) and drives the shared dispatch path and counters.
  friend class ReactorServerCore;

  // The shared dispatch path: 400 for an unparseable request, a z-page,
  // the /metrics scrape, or the handler (counted into the request series,
  // traced when a recorder is wired up). HEAD requests are answered with
  // the GET-equivalent headers + Content-Length and no body on every
  // serving mode (RFC 7231 §4.3.2).
  HttpResponse Dispatch(const Result<HttpRequest>& request);
  HttpResponse DispatchInner(const Result<HttpRequest>& request);
  // Dispatch for paths that cannot stream (legacy blocking loop, wire-shaped
  // fault connections): a streamed body is materialized before serializing.
  HttpResponse DispatchBuffered(const Result<HttpRequest>& request);
  // The z-page responses (Dispatch helpers).
  HttpResponse HealthzResponse() const;
  HttpResponse StatuszResponse() const;
  HttpResponse TracezResponse(bool as_json) const;

  // Concurrent-mode internals.
  void AcceptLoop();
  void HandleConnection(int client);
  void ShedConnection(int client);
  // One-shot wire-shaped delivery (fault-injection), shared with ServeOne.
  void DeliverShaped(int client, const Result<HttpRequest>& request, std::string serialized);

  Handler handler_;
  WireShaper wire_shaper_;
  MetricsRegistry* metrics_ = nullptr;
  Clock* metrics_clock_ = nullptr;
  HttpServerIntrospection introspection_;
  bool introspection_enabled_ = false;
  Clock* introspection_clock_ = nullptr;
  std::uint64_t start_us_ = 0;
  std::atomic<bool> lame_duck_{false};
  Counter* requests_total_ = nullptr;
  Histogram* request_micros_ = nullptr;
  std::array<Counter*, 5> responses_by_class_{};  // 1xx..5xx.
  Gauge* inflight_gauge_ = nullptr;
  Gauge* queue_gauge_ = nullptr;
  Counter* rejected_counter_ = nullptr;
  Counter* connections_counter_ = nullptr;
  Counter* keepalive_counter_ = nullptr;
  Counter* deadline_kills_counter_ = nullptr;
  // Atomic: Close() may run on another thread to unblock a Serve() loop
  // parked in accept().
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<size_t> write_failures_{0};

  // Concurrent mode state.
  HttpServerOptions options_;
  Clock* serve_clock_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::unique_ptr<ReactorServerCore> reactor_core_;  // event_driven mode only.
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<size_t> queued_{0};
  std::atomic<size_t> in_flight_{0};
  std::atomic<size_t> rejected_{0};
  std::atomic<size_t> deadline_kills_{0};
  std::atomic<std::uint64_t> connections_{0};
};

}  // namespace weblint

#endif  // WEBLINT_NET_HTTP_SERVER_H_
