// Results of checking one document.
#ifndef WEBLINT_CORE_REPORT_H_
#define WEBLINT_CORE_REPORT_H_

#include <string>
#include <vector>

#include "util/source_location.h"
#include "warnings/emitter.h"

namespace weblint {

// A hyperlink or resource reference found while checking (A HREF, IMG SRC,
// LINK HREF, FRAME SRC, ...). Used by bad-link, the -R site checks, and the
// poacher robot.
struct LinkRef {
  std::string element;  // Lowercase element name the link came from.
  std::string url;      // Attribute value, verbatim.
  SourceLocation location;
  bool is_resource = false;  // SRC-style reference (image/frame/script).
};

// A named anchor (<A NAME=...> or any ID attribute) — fragment targets.
struct AnchorDef {
  std::string name;
  SourceLocation location;
};

struct LintReport {
  std::string name;  // Display name of what was checked.
  std::vector<Diagnostic> diagnostics;
  std::vector<LinkRef> links;
  std::vector<AnchorDef> anchors;
  std::uint32_t lines = 0;   // Lines in the document.
  std::uint64_t tokens = 0;  // Tokens the engine consumed checking it.

  size_t ErrorCount() const { return CountCategory(Category::kError); }
  size_t WarningCount() const { return CountCategory(Category::kWarning); }
  size_t StyleCount() const { return CountCategory(Category::kStyle); }
  bool Clean() const { return diagnostics.empty(); }

 private:
  size_t CountCategory(Category category) const {
    size_t n = 0;
    for (const Diagnostic& d : diagnostics) {
      if (d.category == category) {
        ++n;
      }
    }
    return n;
  }
};

}  // namespace weblint

#endif  // WEBLINT_CORE_REPORT_H_
