#include "core/site_checker.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/parallel_runner.h"
#include "util/file_io.h"
#include "util/strings.h"
#include "util/url.h"

namespace weblint {

namespace {

Diagnostic MakeSiteDiagnostic(std::string_view id, std::string file, std::string message) {
  Diagnostic d;
  d.message_id = std::string(id);
  const MessageInfo* info = FindMessage(id);
  d.category = info != nullptr ? info->category : Category::kStyle;
  d.file = std::move(file);
  d.message = std::move(message);
  return d;
}

}  // namespace

Result<SiteReport> SiteChecker::CheckSite(const std::string& root, Emitter* emitter) const {
  auto scan = ScanSite(root);
  if (!scan.ok()) {
    return scan.status();
  }

  SiteReport site;
  site.root = root;

  // Pass 1: lint every page, collecting its outbound links. Pages are
  // independent, so this pass fans out across the configured worker count
  // (config.jobs; 1 = inline serial). The runner returns reports in input
  // order and streams output deterministically, so everything downstream —
  // including the sequential cross-page passes below — is identical to the
  // serial path for every job count.
  {
    ParallelLintRunner runner(weblint_, ParallelLintRunner::ResolveJobs(weblint_.config().jobs),
                              emitter);
    for (const std::string& file : scan->html_files) {
      runner.SubmitFile(file);
    }
    std::vector<Result<LintReport>> results = runner.Finish();
    site.pages.reserve(results.size());
    for (Result<LintReport>& report : results) {
      if (!report.ok()) {
        return report.status();
      }
      site.pages.push_back(std::move(report).value());
    }
  }

  const Config& config = weblint_.config();

  // Pass 2: directory-index.
  if (config.warnings.IsEnabled("directory-index")) {
    for (const std::string& dir : scan->directories) {
      const bool has_index = std::any_of(
          config.index_files.begin(), config.index_files.end(),
          [&dir](const std::string& index) { return FileExists(PathJoin(dir, index)); });
      if (!has_index) {
        const MessageInfo* info = FindMessage("directory-index");
        Diagnostic d = MakeSiteDiagnostic(
            "directory-index", dir,
            StrFormat(info->format, dir, Join(config.index_files, ", ")));
        if (emitter != nullptr) {
          emitter->Emit(d);
        }
        site.site_diagnostics.push_back(std::move(d));
      }
    }
  }

  // Pass 3: orphan pages. Resolve every relative link to a normalized path
  // and collect the referenced set.
  if (config.warnings.IsEnabled("orphan-page")) {
    std::set<std::string> referenced;
    for (const LintReport& page : site.pages) {
      const std::string_view base = Dirname(page.name);
      for (const LinkRef& link : page.links) {
        const Url url = ParseUrl(link.url);
        if (!url.scheme.empty() || url.has_authority || url.path.empty()) {
          continue;
        }
        const std::string decoded = UrlDecode(url.path);
        if (decoded.back() == '/') {
          // A directory reference implicitly targets its index page.
          for (const std::string& index : config.index_files) {
            referenced.insert(NormalizePath(PathJoin(base, decoded + index)));
          }
        } else {
          referenced.insert(NormalizePath(PathJoin(base, decoded)));
        }
      }
    }
    std::set<std::string> index_targets;
    for (const std::string& index : config.index_files) {
      index_targets.insert(NormalizePath(PathJoin(root, index)));
    }
    for (const LintReport& page : site.pages) {
      const std::string normalized = NormalizePath(page.name);
      if (referenced.contains(normalized)) {
        continue;
      }
      if (index_targets.contains(normalized)) {
        continue;  // The site entry point has no in-site referrers.
      }
      const MessageInfo* info = FindMessage("orphan-page");
      Diagnostic d = MakeSiteDiagnostic("orphan-page", page.name,
                                        StrFormat(info->format, page.name));
      if (emitter != nullptr) {
        emitter->Emit(d);
      }
      site.site_diagnostics.push_back(std::move(d));
    }
  }

  // Pass 4: cross-page fragment targets. A link "other.html#sec" is broken
  // if other.html was checked and defines no such anchor (same-page "#sec"
  // links are handled by the engine itself).
  if (config.warnings.IsEnabled("bad-link")) {
    std::map<std::string, std::set<std::string, ILess>> anchors_by_page;
    for (const LintReport& page : site.pages) {
      auto& anchors = anchors_by_page[NormalizePath(page.name)];
      for (const AnchorDef& anchor : page.anchors) {
        anchors.insert(anchor.name);
      }
    }
    for (const LintReport& page : site.pages) {
      const std::string_view base = Dirname(page.name);
      for (const LinkRef& link : page.links) {
        const Url url = ParseUrl(link.url);
        if (!url.scheme.empty() || url.has_authority || url.fragment.empty() ||
            url.path.empty()) {
          continue;
        }
        const std::string target = NormalizePath(PathJoin(base, UrlDecode(url.path)));
        const auto it = anchors_by_page.find(target);
        if (it == anchors_by_page.end()) {
          continue;  // Missing file: already reported by the per-file check.
        }
        if (!it->second.contains(url.fragment)) {
          const MessageInfo* info = FindMessage("bad-link");
          Diagnostic d = MakeSiteDiagnostic("bad-link", page.name,
                                            StrFormat(info->format, link.url));
          d.location = link.location;
          if (emitter != nullptr) {
            emitter->Emit(d);
          }
          site.site_diagnostics.push_back(std::move(d));
        }
      }
    }
  }

  return site;
}

}  // namespace weblint
