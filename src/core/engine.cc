#include "core/engine.h"

#include <algorithm>

#include "core/attribute_checks.h"
#include "html/entities.h"
#include "html/tokenizer.h"
#include "telemetry/trace.h"
#include "util/strings.h"

namespace weblint {

namespace {

// Upper bound on text accumulated per open element (content checks only
// need the beginning and end of the content).
constexpr size_t kMaxAccumulatedText = 512;

bool IsHeadingName(std::string_view lower) {
  return lower.size() == 2 && lower[0] == 'h' && lower[1] >= '1' && lower[1] <= '6';
}

// Elements whose text content feeds end-of-element checks.
bool WantsTextAccumulation(std::string_view lower) {
  return lower == "a" || lower == "title" || IsHeadingName(lower);
}

// Elements for which empty content is unremarkable.
bool EmptyContentOk(const Token& token, std::string_view lower) {
  if (lower == "td" || lower == "th" || lower == "textarea" || lower == "iframe" ||
      lower == "object" || lower == "script" || lower == "style" || lower == "option" ||
      lower == "server" || lower == "comment" || lower == "noframes" || lower == "noscript" ||
      lower == "nolayer" || lower == "noembed") {
    return true;
  }
  if (lower == "a") {
    // <A NAME="target"></A> is the classic fragment-anchor idiom.
    bool has_name = false;
    bool has_href = false;
    for (const Attribute& attr : token.attributes) {
      if (IEquals(attr.name, "name") || IEquals(attr.name, "id")) {
        has_name = true;
      }
      if (IEquals(attr.name, "href")) {
        has_href = true;
      }
    }
    return has_name && !has_href;
  }
  return false;
}

std::string_view VendorName(Origin origin) {
  switch (origin) {
    case Origin::kNetscape:
      return "Netscape";
    case Origin::kMicrosoft:
      return "Microsoft";
    case Origin::kStandard:
      break;
  }
  return "standard";
}

// "<UL>, <OL> or <MENU>" for context diagnostics.
std::string PrettyContextList(const std::vector<std::string>& contexts) {
  std::string out;
  for (size_t i = 0; i < contexts.size(); ++i) {
    if (i > 0) {
      out += (i + 1 == contexts.size()) ? " or " : ", ";
    }
    out += "<" + AsciiUpper(contexts[i]) + ">";
  }
  return out;
}

// Logical replacements suggested by physical-font.
std::string_view LogicalReplacement(std::string_view lower) {
  if (lower == "b") {
    return "STRONG";
  }
  if (lower == "i") {
    return "EM";
  }
  if (lower == "tt") {
    return "CODE";
  }
  return "STRONG";
}

bool IsPhysicalFont(std::string_view lower) {
  return lower == "b" || lower == "i" || lower == "u" || lower == "s" || lower == "strike" ||
         lower == "tt" || lower == "big" || lower == "small" || lower == "font" ||
         lower == "blink";
}

// Attributes carrying link targets, for LinkRef collection.
struct LinkAttr {
  std::string_view element;
  std::string_view attribute;
  bool is_resource;
};
constexpr LinkAttr kLinkAttrs[] = {
    {"a", "href", false},      {"area", "href", false},    {"link", "href", false},
    {"form", "action", false}, {"img", "src", true},       {"img", "lowsrc", true},
    {"img", "dynsrc", true},   {"body", "background", true}, {"frame", "src", true},
    {"iframe", "src", true},   {"script", "src", true},    {"embed", "src", true},
    {"input", "src", true},    {"object", "data", true},   {"bgsound", "src", true},
    {"layer", "src", true},    {"ilayer", "src", true},
};

}  // namespace

Engine::Engine(const Config& config, const HtmlSpec& spec, Reporter& reporter, LintReport* report)
    : config_(config), spec_(spec), reporter_(reporter), report_(report) {}

void Engine::Run(std::string_view html) {
  WEBLINT_SPAN("engine");
  Tokenizer tokenizer(html);
  Token token;
  // Tokens are tallied into a local and published once per document via the
  // report — the tokenize/dispatch loop is the hottest path in the process
  // and must not touch shared (even sharded) state per token.
  std::uint64_t tokens = 0;
  while (tokenizer.Next(&token)) {
    ++tokens;
    switch (token.kind) {
      case TokenKind::kDoctype:
        HandleDoctype(token);
        break;
      case TokenKind::kStartTag:
        HandleStartTag(token);
        break;
      case TokenKind::kEndTag:
        HandleEndTag(token);
        break;
      case TokenKind::kText:
        HandleText(token);
        break;
      case TokenKind::kComment:
        HandleComment(token);
        break;
      case TokenKind::kStrayLt:
        HandleStrayLt(token);
        break;
      case TokenKind::kDeclaration:
      case TokenKind::kProcessing:
        break;
    }
  }
  HandleEof(tokenizer.location());
  if (report_ != nullptr) {
    report_->lines = tokenizer.lines_consumed();
    report_->tokens = tokens;
  }
}

void Engine::HandleDoctype(const Token& token) {
  if (!any_element_seen_) {
    doctype_seen_ = true;
  }
  (void)token;
}

void Engine::NoteElementSeen(const Token& token) {
  if (any_element_seen_) {
    return;
  }
  any_element_seen_ = true;
  if (!doctype_seen_) {
    reporter_.Report("require-doctype", token.location);
  }
  if (token.kind != TokenKind::kStartTag || !IEquals(token.name, "html")) {
    reporter_.Report("html-outer", token.location);
  }
}

void Engine::CheckTokenFlags(const Token& token) {
  if (token.odd_quotes) {
    reporter_.Report("odd-quotes", token.location, token.raw);
  }
  if (token.net_slash) {
    reporter_.Report("spurious-slash", token.location, AsciiUpper(token.name));
  }
  if (token.closed_by_lt) {
    reporter_.Report("unexpected-open", token.location);
  }
}

void Engine::CheckCaseStyle(const Token& token) {
  if (token.name.empty()) {
    return;
  }
  if (reporter_.IsEnabled("upper-case") && token.name != AsciiUpper(token.name)) {
    reporter_.Report("upper-case", token.location, token.name);
  }
  if (reporter_.IsEnabled("lower-case") && token.name != AsciiLower(token.name)) {
    reporter_.Report("lower-case", token.location, token.name);
  }
}

bool Engine::StackContains(std::string_view lower_name) const {
  return FindOnStack(lower_name) != nullptr;
}

const OpenElement* Engine::FindOnStack(std::string_view lower_name) const {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (it->lower == lower_name) {
      return &*it;
    }
  }
  return nullptr;
}

void Engine::MarkContent() {
  if (!stack_.empty()) {
    stack_.back().has_content = true;
  }
}

void Engine::AccumulateText(std::string_view text) {
  for (OpenElement& element : stack_) {
    if (element.accumulate_text && element.text.size() < kMaxAccumulatedText) {
      element.text.append(text.substr(0, kMaxAccumulatedText - element.text.size()));
    }
  }
}

void Engine::AutoClose(const ElementInfo& incoming) {
  while (!stack_.empty()) {
    const OpenElement& top = stack_.back();
    if (top.info == nullptr || top.info->end_tag != EndTag::kOptional) {
      break;
    }
    const bool closed_by_name =
        std::find(top.info->closed_by.begin(), top.info->closed_by.end(), incoming.name) !=
        top.info->closed_by.end();
    const bool closed_by_block = top.info->closed_by_block && incoming.is_block;
    if (!closed_by_name && !closed_by_block) {
      break;
    }
    // Implicit close of an optional-end element: normal HTML, no checks.
    Pop(/*checked=*/false, SourceLocation{});
  }
}

void Engine::Pop(bool checked, SourceLocation close_location) {
  OpenElement element = std::move(stack_.back());
  stack_.pop_back();
  if (checked) {
    CheckOnClose(element, close_location);
  }
}

void Engine::CheckOnClose(const OpenElement& element, SourceLocation close_location) {
  if (element.info == nullptr) {
    return;
  }
  const std::string upper = AsciiUpper(element.lower);
  if (!element.has_content && !element.empty_ok && element.info->IsContainer()) {
    reporter_.Report("empty-container", element.location, upper);
  }
  if (element.lower == "a" && !element.text.empty()) {
    if (IsAsciiSpace(element.text.front())) {
      reporter_.Report("container-whitespace", element.location, "leading", upper);
    } else if (IsAsciiSpace(element.text.back())) {
      reporter_.Report("container-whitespace", element.location, "trailing", upper);
    }
    const std::string collapsed = AsciiLower(CollapseWhitespace(element.text));
    for (const std::string& word : config_.content_free_words) {
      if (collapsed == AsciiLower(word)) {
        reporter_.Report("here-anchor", element.location, collapsed);
        break;
      }
    }
  }
  if (element.lower == "title" &&
      element.text.size() > config_.max_title_length) {
    reporter_.Report("title-length", element.location, config_.max_title_length);
  }
  (void)close_location;
}

void Engine::CheckStructure(const Token& token, const ElementInfo& info) {
  const std::string upper = AsciiUpper(token.name);

  // Placement: HEAD-only elements seen in the document body.
  if (info.placement == Placement::kHead && body_seen_ && !StackContains("head")) {
    reporter_.Report("head-element", token.location, upper);
  }

  // Once-only elements (TITLE, HEAD, BODY, HTML).
  const auto seen = first_seen_.find(token.name);
  if (info.once_only && seen != first_seen_.end()) {
    reporter_.Report("once-only", token.location, upper, seen->second);
  }

  // Ordering: BODY with no HEAD ever seen.
  if (info.name == "body" && html_seen_ && !head_seen_) {
    reporter_.Report("must-follow", token.location, upper, "</HEAD>");
  }
  if (info.name == "head" && body_seen_) {
    reporter_.Report("must-follow", token.location, upper, "<HTML>");
  }

  // Context: the element needs a particular open ancestor.
  if (!info.legal_contexts.empty()) {
    bool found = false;
    for (const std::string& context : info.legal_contexts) {
      if (StackContains(context)) {
        found = true;
        break;
      }
    }
    if (!found) {
      if (info.context_implied) {
        reporter_.Report("implied-element", token.location, upper,
                         PrettyContextList(info.legal_contexts),
                         AsciiUpper(info.legal_contexts.front()));
      } else {
        reporter_.Report("required-context", token.location, upper,
                         PrettyContextList(info.legal_contexts));
      }
    }
  }

  // Elements that may not nest within themselves (A, FORM, BUTTON, LABEL).
  if (info.no_self_nest) {
    if (const OpenElement* open = FindOnStack(info.name); open != nullptr) {
      reporter_.Report("nested-element", token.location, upper, upper, upper,
                       open->location.line);
    }
  }
}

void Engine::CheckElementExtras(const Token& token, const ElementInfo& info) {
  const std::string upper = AsciiUpper(token.name);

  if (info.origin != Origin::kStandard) {
    const bool enabled =
        (info.origin == Origin::kNetscape && config_.enabled_extensions.contains("netscape")) ||
        (info.origin == Origin::kMicrosoft && config_.enabled_extensions.contains("microsoft"));
    if (!enabled) {
      reporter_.Report("extension-markup", token.location, upper, VendorName(info.origin));
    }
  }

  if (info.deprecated) {
    const std::string suffix =
        info.replacement.empty() ? ""
                                 : StrFormat(" -- use <%s> instead", AsciiUpper(info.replacement));
    reporter_.Report("deprecated-element", token.location, upper, suffix);
  }

  if (IsPhysicalFont(info.name)) {
    reporter_.Report("physical-font", token.location, upper, LogicalReplacement(info.name));
  }

  auto has_attr = [&token](std::string_view name) {
    for (const Attribute& attr : token.attributes) {
      if (IEquals(attr.name, name)) {
        return true;
      }
    }
    return false;
  };

  if (info.name == "img") {
    if (!has_attr("alt")) {
      reporter_.Report("img-alt", token.location);
    }
    if (!has_attr("width") || !has_attr("height")) {
      reporter_.Report("img-size", token.location);
    }
  }

  if (info.name == "table" && !has_attr("summary")) {
    reporter_.Report("table-summary", token.location);
  }

  if (info.name == "body" && reporter_.IsEnabled("body-colors")) {
    static constexpr std::string_view kColors[] = {"bgcolor", "text", "link", "vlink", "alink"};
    std::vector<std::string> present;
    std::vector<std::string> missing;
    for (std::string_view color : kColors) {
      (has_attr(color) ? present : missing).push_back(AsciiUpper(color));
    }
    if (!present.empty() && !missing.empty()) {
      reporter_.Report("body-colors", token.location, Join(present, "/"), Join(missing, "/"));
    }
  }

  if (IsHeadingName(info.name) && StackContains("a")) {
    reporter_.Report("heading-in-anchor", token.location, upper);
  }
}

void Engine::CollectLinks(const Token& token) {
  if (report_ == nullptr) {
    return;
  }
  for (const LinkAttr& link : kLinkAttrs) {
    if (!IEquals(token.name, link.element)) {
      continue;
    }
    for (const Attribute& attr : token.attributes) {
      if (IEquals(attr.name, link.attribute) && attr.has_value && !attr.value.empty() &&
          !attr.unterminated_quote) {
        report_->links.push_back(
            LinkRef{std::string(link.element), std::string(attr.value), attr.location,
                    link.is_resource});
      }
    }
  }
  // Fragment targets: <A NAME=...> and any ID attribute.
  for (const Attribute& attr : token.attributes) {
    const bool is_name_anchor = IEquals(token.name, "a") && IEquals(attr.name, "name");
    if ((is_name_anchor || IEquals(attr.name, "id")) && attr.has_value && !attr.value.empty()) {
      report_->anchors.push_back(AnchorDef{std::string(attr.value), attr.location});
    }
  }
}

void Engine::HandleStartTag(const Token& token) {
  NoteElementSeen(token);
  CheckTokenFlags(token);
  CheckCaseStyle(token);

  const ElementInfo* info = spec_.Find(token.name);

  if (info == nullptr) {
    // Unknown element — possibly a mis-typed name (the paper's
    // <BLOCKQOUTE>). Report once per name; its close tag and repeats are
    // suppressed to avoid cascades.
    if (!unknown_reported_.contains(token.name)) {
      unknown_reported_.insert(std::string(token.name));
      const std::string suggestion = spec_.SuggestElement(token.name);
      const std::string suffix =
          suggestion.empty()
              ? ""
              : StrFormat(" -- perhaps you meant <%s>?", AsciiUpper(suggestion));
      reporter_.Report("unknown-element", token.location, AsciiUpper(token.name), suffix);
    }
    CheckAttributes(token, nullptr, config_, reporter_);
    MarkContent();
    return;
  }

  // Implicit closes first, so context checks see the right stack.
  AutoClose(*info);

  CheckStructure(token, *info);
  CheckElementExtras(token, *info);
  CheckAttributes(token, info, config_, reporter_);
  CollectLinks(token);

  // History and document-structure bookkeeping.
  if (!first_seen_.contains(token.name)) {
    first_seen_.emplace(token.name, token.location.line);
  }
  if (info->name == "html") {
    html_seen_ = true;
  } else if (info->name == "head") {
    head_seen_ = true;
  } else if (info->name == "body" || info->name == "frameset") {
    body_seen_ = true;
  } else if (info->name == "title" && !body_seen_) {
    title_seen_ = true;
  }

  MarkContent();

  if (info->IsContainer()) {
    OpenElement element;
    element.name = token.name;
    element.lower = AsciiLower(token.name);
    element.info = info;
    element.location = token.location;
    element.accumulate_text = WantsTextAccumulation(element.lower);
    element.empty_ok = EmptyContentOk(token, element.lower);
    stack_.push_back(std::move(element));
  }
}

void Engine::HandleEndTag(const Token& token) {
  NoteElementSeen(token);
  CheckTokenFlags(token);
  CheckCaseStyle(token);

  if (!token.attributes.empty()) {
    reporter_.Report("closing-attribute", token.location, AsciiUpper(token.name));
  }

  const ElementInfo* info = spec_.Find(token.name);
  const std::string lower = AsciiLower(token.name);
  const std::string upper = AsciiUpper(token.name);

  if (info == nullptr) {
    if (!unknown_reported_.contains(token.name)) {
      unknown_reported_.insert(std::string(token.name));
      reporter_.Report("unknown-element", token.location, upper, "");
    }
    return;
  }

  if (info->end_tag == EndTag::kForbidden) {
    reporter_.Report("illegal-closing", token.location, upper, upper);
    return;
  }

  // Heading mismatch heuristic (paper §4.2: <H1>..</H2>): a heading close
  // meeting a different open heading closes it with one targeted message.
  if (IsHeadingName(lower) && !stack_.empty() && IsHeadingName(stack_.back().lower) &&
      stack_.back().lower != lower) {
    reporter_.Report("heading-mismatch", token.location, AsciiUpper(stack_.back().name), upper);
    Pop(/*checked=*/false, token.location);
    return;
  }

  // Normal close: matches the top of the stack.
  if (!stack_.empty() && stack_.back().lower == lower) {
    Pop(/*checked=*/true, token.location);
    return;
  }

  // Search deeper: the close tag may match an ancestor.
  for (size_t i = stack_.size(); i-- > 0;) {
    if (stack_[i].lower != lower) {
      continue;
    }
    // Everything above the match is unresolved. Inline-over-inline is the
    // classic overlap (</B> over <A>); otherwise the intervening element
    // was simply never closed. Either way it moves to the secondary stack,
    // so a later close tag resolves silently instead of cascading.
    for (size_t j = stack_.size(); j-- > i + 1;) {
      OpenElement& intervening = stack_[j];
      const bool both_inline = info->is_inline && intervening.info != nullptr &&
                               intervening.info->is_inline;
      if (both_inline) {
        reporter_.Report("element-overlap", token.location, upper, token.location.line,
                         AsciiUpper(intervening.name), intervening.location.line);
      } else if (intervening.info != nullptr &&
                 intervening.info->end_tag == EndTag::kRequired) {
        reporter_.Report("unclosed-element", token.location, AsciiUpper(intervening.name),
                         AsciiUpper(intervening.name), intervening.location.line);
      }
      secondary_.push_back(std::move(intervening));
      stack_.pop_back();
    }
    Pop(/*checked=*/true, token.location);
    return;
  }

  // No match on the main stack; try the secondary stack (a tag displaced by
  // an earlier overlap, like the </A> in the paper's example).
  for (size_t i = secondary_.size(); i-- > 0;) {
    if (secondary_[i].lower == lower) {
      secondary_.erase(secondary_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }

  // Optional-end elements may have been auto-closed earlier; their stray
  // close tags are unremarkable.
  if (info->end_tag == EndTag::kOptional) {
    return;
  }
  reporter_.Report("unmatched-close", token.location, upper, upper);
}

void Engine::HandleText(const Token& token) {
  ReportInvalidUtf8(token);
  const std::string_view text = token.text;
  if (Trim(text).empty()) {
    AccumulateText(text);
    return;
  }
  MarkContent();
  AccumulateText(text);

  if (token.raw_text) {
    // SCRIPT/STYLE content is not HTML character data, but a content plugin
    // may claim it (paper §6.1).
    if (!stack_.empty()) {
      for (const PluginPtr& plugin : config_.plugins) {
        if (IEquals(plugin->element(), stack_.back().lower)) {
          std::vector<PluginFinding> findings;
          plugin->Check(token.text, token.location, &findings);
          for (const PluginFinding& finding : findings) {
            reporter_.ReportPlugin(plugin->name(), finding);
          }
        }
      }
    }
    return;
  }

  if (!token.has_amp) {
    return;  // The scan already proved there is no '&' to classify.
  }
  for (const EntityRef& ref : ScanEntities(text, token.location)) {
    switch (ref.kind) {
      case EntityRef::Kind::kNamed:
        if (!ref.known) {
          reporter_.Report("unknown-entity", ref.location, ref.name);
        } else if (!ref.terminated) {
          reporter_.Report("unterminated-entity", ref.location, ref.name);
        }
        break;
      case EntityRef::Kind::kNumeric:
        if (!ref.valid_number) {
          reporter_.Report("unknown-entity", ref.location, "#" + std::string(ref.name));
        }
        break;
      case EntityRef::Kind::kBareAmp:
        break;  // A lone '&' in text is too common to flag.
    }
  }
}

void Engine::ReportInvalidUtf8(const Token& token) {
  if (token.invalid_utf8 && !utf8_reported_) {
    utf8_reported_ = true;
    reporter_.Report("invalid-utf8", token.invalid_utf8_at);
  }
}

void Engine::HandlePragma(std::string_view directive) {
  // "<!-- weblint: disable id[, id...] -->" / enable / "off" / "on".
  const std::vector<std::string_view> words = SplitWhitespace(directive);
  if (words.empty()) {
    return;
  }
  const std::string_view verb = words[0];
  if (IEquals(verb, "off")) {
    reporter_.SuppressAll(true);
    return;
  }
  if (IEquals(verb, "on")) {
    reporter_.SuppressAll(false);
    return;
  }
  const bool enable = IEquals(verb, "enable");
  if (!enable && !IEquals(verb, "disable")) {
    return;  // Unknown pragma verbs are ignored, like unknown lint pragmas.
  }
  const size_t verb_end = directive.find(verb) + verb.size();
  for (std::string_view raw_id : Split(directive.substr(verb_end), ',')) {
    const std::string_view id = Trim(raw_id);
    if (!id.empty() && FindMessage(id) != nullptr) {
      reporter_.Override(id, enable);
    }
  }
}

void Engine::HandleComment(const Token& token) {
  ReportInvalidUtf8(token);
  const std::string_view trimmed = Trim(token.text);
  if (config_.enable_pragmas && IStartsWith(trimmed, "weblint:")) {
    HandlePragma(trimmed.substr(std::string_view("weblint:").size()));
    return;  // Pragma comments are not subject to the comment checks.
  }
  if (token.unterminated_comment) {
    reporter_.Report("malformed-comment", token.location, "no closing --> seen");
  } else if (token.comment_whitespace_close) {
    reporter_.Report("malformed-comment", token.location,
                     "whitespace inside the closing --> sequence");
  }
  if (token.nested_comment) {
    reporter_.Report("nested-comment", token.location);
  }
  // Markup-looking content inside the comment?
  const std::string_view text = token.text;
  for (size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == '<' && (IsAsciiAlpha(text[i + 1]) || text[i + 1] == '/')) {
      reporter_.Report("markup-in-comment", token.location);
      break;
    }
  }
}

void Engine::HandleStrayLt(const Token& token) {
  reporter_.Report("unexpected-open", token.location);
}

void Engine::HandleEof(SourceLocation eof_location) {
  // Anything still open with a required end tag was never closed.
  while (!stack_.empty()) {
    const OpenElement& top = stack_.back();
    if (top.info != nullptr && top.info->end_tag == EndTag::kRequired) {
      reporter_.Report("unclosed-element", eof_location, AsciiUpper(top.name),
                       AsciiUpper(top.name), top.location.line);
    }
    Pop(/*checked=*/false, eof_location);
  }

  if (any_element_seen_) {
    if (!head_seen_) {
      reporter_.Report("require-head", SourceLocation{});
    } else if (!title_seen_) {
      reporter_.Report("require-title", SourceLocation{});
    }
  }

  // Same-page fragment targets: a link to "#name" needs <A NAME="name"> or
  // an ID attribute somewhere in this document.
  if (report_ != nullptr && reporter_.IsEnabled("bad-link")) {
    std::set<std::string, ILess> anchor_names;
    for (const AnchorDef& anchor : report_->anchors) {
      anchor_names.insert(anchor.name);
    }
    for (const LinkRef& link : report_->links) {
      if (link.url.size() < 2 || link.url.front() != '#') {
        continue;
      }
      if (!anchor_names.contains(link.url.substr(1))) {
        reporter_.Report("bad-link", link.location, link.url);
      }
    }
  }
}

void RunEngine(const Config& config, const HtmlSpec& spec, Reporter& reporter, LintReport* report,
               std::string_view html) {
  Engine engine(config, spec, reporter, report);
  engine.Run(html);
}

}  // namespace weblint
