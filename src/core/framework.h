// The outer checking framework (paper §6.1): "This may require an outer
// framework, where weblint is just one such plugin, for HTML."
//
// A DocumentChecker claims documents by file extension / MIME type; the
// framework routes each document to the right checker. Weblint itself is
// registered as the HTML checker; the CSS content plugin doubles as a
// whole-file checker for .css stylesheets. `weblint styles.css` works
// because the CLI checks through this framework.
#ifndef WEBLINT_CORE_FRAMEWORK_H_
#define WEBLINT_CORE_FRAMEWORK_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/linter.h"
#include "core/report.h"
#include "util/result.h"
#include "warnings/emitter.h"

namespace weblint {

// Checks one class of document (HTML, CSS, ...).
class DocumentChecker {
 public:
  virtual ~DocumentChecker() = default;

  virtual std::string_view name() const = 0;

  // True if this checker handles files named like `path` (by extension).
  virtual bool HandlesPath(std::string_view path) const = 0;
  // True if this checker handles the given MIME type.
  virtual bool HandlesContentType(std::string_view content_type) const = 0;

  // Checks `content`; `display_name` labels diagnostics. Diagnostics stream
  // to `emitter` when non-null and are always collected in the report.
  virtual LintReport Check(std::string_view display_name, std::string_view content,
                           Emitter* emitter) const = 0;
};

// Weblint as a framework plugin: handles .html/.htm/.shtml and text/html.
class HtmlDocumentChecker : public DocumentChecker {
 public:
  explicit HtmlDocumentChecker(const Weblint& weblint) : weblint_(weblint) {}
  std::string_view name() const override { return "weblint"; }
  bool HandlesPath(std::string_view path) const override;
  bool HandlesContentType(std::string_view content_type) const override;
  LintReport Check(std::string_view display_name, std::string_view content,
                   Emitter* emitter) const override;

 private:
  const Weblint& weblint_;
};

// The CSS plugin promoted to a whole-file checker: .css and text/css.
class CssDocumentChecker : public DocumentChecker {
 public:
  std::string_view name() const override { return "css"; }
  bool HandlesPath(std::string_view path) const override;
  bool HandlesContentType(std::string_view content_type) const override;
  LintReport Check(std::string_view display_name, std::string_view content,
                   Emitter* emitter) const override;
};

// Routes documents to the registered checkers.
class CheckerFramework {
 public:
  // An empty framework; callers register checkers explicitly.
  CheckerFramework() = default;

  // The standard lineup: weblint for HTML (borrowing `weblint`, which must
  // outlive the framework), the CSS file checker.
  static CheckerFramework Standard(const Weblint& weblint);

  void Register(std::shared_ptr<const DocumentChecker> checker);
  size_t checker_count() const { return checkers_.size(); }

  // The checker claiming `path` / content type; nullptr when none does.
  const DocumentChecker* ForPath(std::string_view path) const;
  const DocumentChecker* ForContentType(std::string_view content_type) const;

  // Reads and checks `path` with whichever checker claims it. Fails when the
  // file is unreadable or no checker handles it.
  Result<LintReport> CheckFile(const std::string& path, Emitter* emitter = nullptr) const;

 private:
  std::vector<std::shared_ptr<const DocumentChecker>> checkers_;
};

}  // namespace weblint

#endif  // WEBLINT_CORE_FRAMEWORK_H_
