// The Weblint class (paper §5.4).
//
// "The weblint module is a Perl class which encapsulates the HTML checking
// functionality. This makes it easy to embed weblint functionality into any
// application ... The simplest use of the module is:
//
//     use Weblint;
//     $weblint = Weblint->new();
//     $weblint->check_file($filename);
//
// In addition to the check_file method above, it provides check_string and
// check_url methods. The latter requires the LWP modules."
//
// The C++ equivalent:
//
//     weblint::Weblint lint;
//     auto report = lint.CheckFile("page.html");
#ifndef WEBLINT_CORE_LINTER_H_
#define WEBLINT_CORE_LINTER_H_

#include <memory>
#include <string>
#include <string_view>

#include "cache/lint_cache.h"
#include "config/config.h"
#include "core/report.h"
#include "net/fetch_policy.h"
#include "net/fetcher.h"
#include "telemetry/metrics.h"
#include "util/clock.h"
#include "util/result.h"
#include "warnings/emitter.h"

namespace weblint {

// Maps the config's fetch knobs (--fetch-timeout, --fetch-retries,
// --max-fetch-bytes, --max-redirects) to the net layer's FetchPolicy.
// Defined here rather than in net because net is below config in the layer
// stack.
FetchPolicy FetchPolicyFromConfig(const Config& config);

// A retrieved page before checking: the display name (final URL after
// redirects) and the body bytes. Split out of CheckUrl so the gateway can
// address its cache by URL + body digest before linting.
struct FetchedDocument {
  std::string name;
  std::string body;
};

class Weblint {
 public:
  // Default configuration: HTML 4.0, the 42 default-enabled messages.
  Weblint() = default;
  explicit Weblint(Config config) : config_(std::move(config)) {}

  const Config& config() const { return config_; }
  Config& config() { return config_; }

  // Attaches a lint-result cache built from config() (cache_capacity,
  // cache_dir). No-op when config().use_cache is false. Caching is opt-in
  // per Weblint instance: the runner-level call sites (ParallelLintRunner,
  // and through it SiteChecker and Poacher) and the gateway consult
  // cache() when non-null; bare CheckFile/CheckString never do.
  void EnableCache();
  // Shares an existing cache (e.g. across the gateway's per-request
  // Weblint copies, or a test's instrumented cache).
  void set_cache(std::shared_ptr<LintResultCache> cache) { cache_ = std::move(cache); }
  LintResultCache* cache() const { return cache_.get(); }

  // Wires (or unwires, with null) a metrics registry: every checked document
  // lands in weblint_documents_total / weblint_tokens_total /
  // weblint_lint_bytes_total / weblint_diagnostics_total and its check wall
  // time in weblint_lint_micros. Call before EnableCache so the cache's
  // series land in the same registry. `clock` (optional) times the checks —
  // tests pass a FakeClock for deterministic histograms.
  void EnableMetrics(MetricsRegistry* metrics, Clock* clock = nullptr);
  MetricsRegistry* metrics() const { return metrics_; }
  // The clock EnableMetrics resolved (null when no registry is attached).
  // ParallelLintRunner times whole pages with the same clock so histograms
  // stay deterministic under a FakeClock.
  Clock* metrics_clock() const { return metrics_clock_; }

  // Checks an HTML string. `name` is the display name used in diagnostics.
  // If `emitter` is non-null, diagnostics are additionally streamed to it as
  // they are produced (the CLI passes a StreamEmitter); they are always
  // collected into the returned report.
  LintReport CheckString(std::string_view name, std::string_view html,
                         Emitter* emitter = nullptr) const;

  // Checks a file. Fails only if the file cannot be read. Also runs the
  // bad-link check (if enabled) against the local filesystem.
  Result<LintReport> CheckFile(const std::string& path, Emitter* emitter = nullptr) const;

  // Checks already-read file content exactly as CheckFile would (engine +
  // local bad-link pass, with `path` as the display name and link base).
  // The cached-runner path reads the file once to digest it, then calls
  // this on a miss.
  LintReport CheckFileBytes(const std::string& path, std::string_view content,
                            Emitter* emitter = nullptr) const;

  // Retrieves `url` through `fetcher` (following redirects). Fails on
  // non-success responses or non-HTML content.
  Result<FetchedDocument> FetchDocument(std::string_view url, UrlFetcher& fetcher) const;

  // Retrieves `url` through `fetcher` (following redirects) and checks the
  // body. Fails on non-success responses or non-HTML content.
  Result<LintReport> CheckUrl(std::string_view url, UrlFetcher& fetcher,
                              Emitter* emitter = nullptr) const;

 private:
  // Publishes one checked document's totals into the registry mirror.
  void RecordCheck(const LintReport& report, size_t bytes, std::uint64_t micros) const;

  Config config_;
  std::shared_ptr<LintResultCache> cache_;

  // Registry mirror; all null when no registry is attached. Raw pointers on
  // purpose: per-request Weblint copies (the gateway) share one registry.
  MetricsRegistry* metrics_ = nullptr;
  Clock* metrics_clock_ = nullptr;
  Counter* m_documents_ = nullptr;
  Counter* m_tokens_ = nullptr;
  Counter* m_bytes_ = nullptr;
  Counter* m_diagnostics_ = nullptr;
  Histogram* m_lint_micros_ = nullptr;
};

}  // namespace weblint

#endif  // WEBLINT_CORE_LINTER_H_
