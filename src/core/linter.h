// The Weblint class (paper §5.4).
//
// "The weblint module is a Perl class which encapsulates the HTML checking
// functionality. This makes it easy to embed weblint functionality into any
// application ... The simplest use of the module is:
//
//     use Weblint;
//     $weblint = Weblint->new();
//     $weblint->check_file($filename);
//
// In addition to the check_file method above, it provides check_string and
// check_url methods. The latter requires the LWP modules."
//
// The C++ equivalent:
//
//     weblint::Weblint lint;
//     auto report = lint.CheckFile("page.html");
#ifndef WEBLINT_CORE_LINTER_H_
#define WEBLINT_CORE_LINTER_H_

#include <string>
#include <string_view>

#include "config/config.h"
#include "core/report.h"
#include "net/fetcher.h"
#include "util/result.h"
#include "warnings/emitter.h"

namespace weblint {

class Weblint {
 public:
  // Default configuration: HTML 4.0, the 42 default-enabled messages.
  Weblint() = default;
  explicit Weblint(Config config) : config_(std::move(config)) {}

  const Config& config() const { return config_; }
  Config& config() { return config_; }

  // Checks an HTML string. `name` is the display name used in diagnostics.
  // If `emitter` is non-null, diagnostics are additionally streamed to it as
  // they are produced (the CLI passes a StreamEmitter); they are always
  // collected into the returned report.
  LintReport CheckString(std::string_view name, std::string_view html,
                         Emitter* emitter = nullptr) const;

  // Checks a file. Fails only if the file cannot be read. Also runs the
  // bad-link check (if enabled) against the local filesystem.
  Result<LintReport> CheckFile(const std::string& path, Emitter* emitter = nullptr) const;

  // Retrieves `url` through `fetcher` (following redirects) and checks the
  // body. Fails on non-success responses or non-HTML content.
  Result<LintReport> CheckUrl(std::string_view url, UrlFetcher& fetcher,
                              Emitter* emitter = nullptr) const;

 private:
  Config config_;
};

}  // namespace weblint

#endif  // WEBLINT_CORE_LINTER_H_
