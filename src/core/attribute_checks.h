// Attribute checks for start tags.
#ifndef WEBLINT_CORE_ATTRIBUTE_CHECKS_H_
#define WEBLINT_CORE_ATTRIBUTE_CHECKS_H_

#include "config/config.h"
#include "core/reporter.h"
#include "html/token.h"
#include "spec/spec.h"

namespace weblint {

// Runs all attribute checks for `token`:
//   pass 1 — lexical: repeated-attribute, attribute-delimiter,
//            quote-attribute-value;
//   pass 2 — semantic: unknown-attribute, extension-attribute,
//            deprecated-attribute, attribute-value;
//   pass 3 — required-attribute.
// The two value passes run in that order so a tag with both an unquoted
// value and an illegal value reports quoting first (the paper's §4.2 output
// lists the TEXT quoting warning before the BGCOLOR value error).
// `info` may be null (unknown element): only lexical checks run, since
// semantic checks would cascade off the unknown-element report.
void CheckAttributes(const Token& token, const ElementInfo* info, const Config& config,
                     Reporter& reporter);

}  // namespace weblint

#endif  // WEBLINT_CORE_ATTRIBUTE_CHECKS_H_
