// The weblint checking engine (paper §5.1).
//
// "Weblint is basically a stack machine with an ad-hoc parser, which uses
// various heuristics to keep things together as it goes along. ... When an
// opening tag is seen, it is pushed onto the main stack. Closing tags result
// in the stack being popped. ... A secondary stack comes into play when
// unexpected things happen, like overlapping elements. The second stack
// holds unresolved tags, and where they appeared. For each token type, a
// number of checks are made [involving] the token itself, or its context,
// which can include the current state of the stack, the secondary stack,
// and the history of elements seen."
#ifndef WEBLINT_CORE_ENGINE_H_
#define WEBLINT_CORE_ENGINE_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "config/config.h"
#include "core/report.h"
#include "core/reporter.h"
#include "html/token.h"
#include "spec/spec.h"

namespace weblint {

// An entry on the main (or secondary) element stack.
struct OpenElement {
  std::string name;   // As written in the source.
  std::string lower;  // Folded, for comparisons.
  const ElementInfo* info = nullptr;
  SourceLocation location;
  bool has_content = false;      // Saw any child element or non-blank text.
  bool accumulate_text = false;  // Collect text for content checks (A, TITLE...).
  bool empty_ok = false;         // Empty content is normal (TD, <A NAME=...>).
  std::string text;              // Accumulated content text (capped).
};

class Engine {
 public:
  // `report` collects links/anchors/line count; diagnostics go through
  // `reporter` (and from there to whatever emitter the caller installed).
  Engine(const Config& config, const HtmlSpec& spec, Reporter& reporter, LintReport* report);

  // Checks one document.
  void Run(std::string_view html);

  // Exposed for white-box tests of the cascade heuristics.
  const std::vector<OpenElement>& stack() const { return stack_; }
  const std::vector<OpenElement>& secondary_stack() const { return secondary_; }

 private:
  void HandleDoctype(const Token& token);
  void HandleStartTag(const Token& token);
  void HandleEndTag(const Token& token);
  void HandleText(const Token& token);
  void HandleComment(const Token& token);
  // Fires invalid-utf8 for a flagged token, once per document.
  void ReportInvalidUtf8(const Token& token);
  // Applies an in-page configuration pragma (paper §6.1); `directive` is
  // the comment text after the "weblint:" marker.
  void HandlePragma(std::string_view directive);
  void HandleStrayLt(const Token& token);
  void HandleEof(SourceLocation eof_location);

  // Shared checks for anomalies flagged by the tokenizer.
  void CheckTokenFlags(const Token& token);
  // First-markup bookkeeping: require-doctype, html-outer.
  void NoteElementSeen(const Token& token);
  // Tag-name case style (upper-case / lower-case messages).
  void CheckCaseStyle(const Token& token);

  // Structure checks on a start tag (placement, once-only, must-follow,
  // context, self-nesting).
  void CheckStructure(const Token& token, const ElementInfo& info);
  // Element-specific extra checks (img-alt, table-summary, body-colors,
  // heading-in-anchor, physical-font, deprecated/extension markup).
  void CheckElementExtras(const Token& token, const ElementInfo& info);
  // Records A HREF / IMG SRC / ... into the report for link checking.
  void CollectLinks(const Token& token);

  // Implicitly closes optional-end elements terminated by this start tag.
  void AutoClose(const ElementInfo& incoming);
  // Pops the top element, running end-of-element checks when `checked`.
  void Pop(bool checked, SourceLocation close_location);
  // End-of-element checks (empty-container, here-anchor,
  // container-whitespace, title-length).
  void CheckOnClose(const OpenElement& element, SourceLocation close_location);

  bool StackContains(std::string_view lower_name) const;
  const OpenElement* FindOnStack(std::string_view lower_name) const;
  void MarkContent();
  void AccumulateText(std::string_view text);

  const Config& config_;
  const HtmlSpec& spec_;
  Reporter& reporter_;
  LintReport* report_;

  std::vector<OpenElement> stack_;
  std::vector<OpenElement> secondary_;

  // History of elements seen: lowercase name -> line first seen.
  std::map<std::string, std::uint32_t, ILess> first_seen_;
  // Unknown element names already reported; repeat sightings and close tags
  // are suppressed (cascade minimisation).
  std::set<std::string, ILess> unknown_reported_;

  // The invalid-utf8 message fires once per document: after the first
  // malformed sequence the rest of the file is usually in the same wrong
  // encoding (cascade minimisation).
  bool utf8_reported_ = false;

  bool doctype_seen_ = false;
  bool any_element_seen_ = false;
  bool html_seen_ = false;
  bool head_seen_ = false;
  bool body_seen_ = false;
  bool title_seen_ = false;
};

// Convenience used by Weblint and tests: runs the engine over `html`.
void RunEngine(const Config& config, const HtmlSpec& spec, Reporter& reporter, LintReport* report,
               std::string_view html);

}  // namespace weblint

#endif  // WEBLINT_CORE_ENGINE_H_
