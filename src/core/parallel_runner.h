// The parallel lint engine: fans per-page Weblint checks out across a
// work-stealing thread pool, while keeping every observable result — report
// order, emitter output, error semantics — identical to the serial path.
//
// Why this exists: the paper's usability requirement (§4.5, weblint "from
// crontab" over whole sites; the poacher robot over live sites) makes
// whole-site throughput the product metric, and per-page checks are
// independent work.
//
// Determinism contract:
//  * Finish() returns reports in submit order, regardless of which worker
//    finished which page first.
//  * Streamed output is flushed through a SynchronizedEmitter one whole
//    document at a time, in submit order (a sliding frontier: page i's
//    diagnostics appear only after pages 0..i-1 have been flushed). Output
//    is therefore byte-identical to the serial path for every job count.
//  * A file that fails to read stops the output stream at that page, like
//    the serial loop that returns on the first error; pages already in
//    flight still run, but nothing after the failed index is emitted.
//
// With jobs <= 1 the runner executes submissions inline on the calling
// thread — no pool, no wrapper emitter — so `-j 1` is the pre-existing
// serial code path, not a simulation of it.
//
// Caching: when the Weblint has a lint-result cache attached
// (Weblint::EnableCache), every submission becomes a lookup/fill step —
// the document is digested, a hit replays the stored report (byte-identical
// output, in the same submit-order slot), and a miss lints and stores. The
// cache is sharded and mutex-per-shard, so workers hit it concurrently
// without serialising on a global lock.
#ifndef WEBLINT_CORE_PARALLEL_RUNNER_H_
#define WEBLINT_CORE_PARALLEL_RUNNER_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/linter.h"
#include "core/report.h"
#include "telemetry/metrics.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "warnings/emitter.h"

namespace weblint {

class ParallelLintRunner {
 public:
  // `jobs` counts lint workers; 0 means ThreadPool::DefaultThreadCount()
  // (hardware concurrency). `emitter` may be null (collect only).
  ParallelLintRunner(const Weblint& weblint, unsigned jobs, Emitter* emitter);
  ~ParallelLintRunner();

  ParallelLintRunner(const ParallelLintRunner&) = delete;
  ParallelLintRunner& operator=(const ParallelLintRunner&) = delete;

  // Enqueue one document. Call from a single coordinating thread (the site
  // walker / crawler); workers run the checks. Returns the slot index.
  size_t SubmitFile(std::string path);
  size_t SubmitString(std::string name, std::string html);

  // Enqueue an already-complete report — no linting, no cache. The report
  // occupies a submit-order slot exactly like a checked page, so its
  // diagnostics stream at the right position at every job count. The
  // crawler uses this for degraded pages: a failed fetch becomes a
  // synthesized fetch-failed report in crawl order, never an abort.
  size_t SubmitReport(LintReport report);

  // Waits for every submitted job, flushes any remaining in-order output,
  // and returns the results in submit order. The runner is exhausted after
  // this call.
  std::vector<Result<LintReport>> Finish();

  // Observer fired once per *checked* page (SubmitFile/SubmitString slots,
  // not SubmitReport ones) with the slot index and the finished report.
  // Fires in completion order — not submit order — and from worker threads
  // in parallel mode, so the observer must be thread-safe. The poacher's
  // frontier crawl uses this to persist each page's serialized report as a
  // journal payload keyed by its crawl sequence number.
  void SetReportObserver(std::function<void(size_t, const LintReport&)> observer) {
    observer_ = std::move(observer);
  }

  // Number of workers this runner was resolved to (>= 1).
  unsigned jobs() const { return jobs_; }

  // Jobs submitted to the pool but not yet started (0 in serial mode).
  // The poacher's --progress heartbeat samples this for its queue-depth
  // column without reaching into the pool.
  size_t pending() const { return pool_ != nullptr ? pool_->pending() : 0; }

  // Maps a configured job count (0 = auto) to an effective worker count.
  static unsigned ResolveJobs(std::uint32_t configured);

 private:
  void RunSlot(size_t index, const std::function<Result<LintReport>()>& check);
  // Called with results_mu_ held: flushes consecutively completed documents
  // starting at flush_frontier_ to the emitter, stopping at the first error.
  void FlushReadyLocked();

  // Cache-aware check of one named document: lookup, or lint via
  // `lint(stream_to)` and store. `stream_to` is the emitter for the serial
  // inline path (diagnostics stream as produced; a hit replays them) and
  // null on pool workers, whose output is flushed later by the frontier.
  LintReport CheckThroughCache(const std::string& name, std::string_view content,
                               const std::function<LintReport(Emitter*)>& lint,
                               Emitter* stream_to);


  // Records one finished page into the wall-time histogram / depth gauge.
  void RecordPage(std::uint64_t begin_us);

  const Weblint& weblint_;
  const unsigned jobs_;
  Emitter* const emitter_;
  LintResultCache* const cache_;
  const std::uint64_t config_fingerprint_;

  // Registry mirror, inherited from the Weblint (Weblint::EnableMetrics);
  // all null when the Weblint has no registry.
  MetricsRegistry* metrics_ = nullptr;
  Clock* clock_ = nullptr;
  Histogram* m_page_micros_ = nullptr;
  Gauge* m_queue_depth_ = nullptr;
  Gauge* m_pool_threads_ = nullptr;
  Counter* m_pool_submitted_ = nullptr;
  Counter* m_pool_steals_ = nullptr;

  // Parallel mode only.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<SynchronizedEmitter> synchronized_;

  std::mutex results_mu_;
  std::vector<std::optional<Result<LintReport>>> results_;
  size_t flush_frontier_ = 0;
  bool error_seen_ = false;  // Serial semantics: no output past the first error.
  std::function<void(size_t, const LintReport&)> observer_;
};

}  // namespace weblint

#endif  // WEBLINT_CORE_PARALLEL_RUNNER_H_
