// Recursive site checking (paper §4.5).
//
// "The -R switch instructs weblint to recurse in all directories in the
// local filesystem, so that a set of pages or entire site can be checked
// with one command. The switch also enables additional warnings, checking
// whether directories have index files, and reporting orphan pages (which
// are not referred to by any other page checked)."
#ifndef WEBLINT_CORE_SITE_CHECKER_H_
#define WEBLINT_CORE_SITE_CHECKER_H_

#include <string>
#include <vector>

#include "core/linter.h"
#include "core/report.h"
#include "util/result.h"
#include "warnings/emitter.h"

namespace weblint {

struct SiteReport {
  std::string root;
  std::vector<LintReport> pages;
  // Site-level diagnostics: directory-index and orphan-page.
  std::vector<Diagnostic> site_diagnostics;

  size_t TotalDiagnostics() const {
    size_t n = site_diagnostics.size();
    for (const LintReport& page : pages) {
      n += page.diagnostics.size();
    }
    return n;
  }
};

class SiteChecker {
 public:
  explicit SiteChecker(const Weblint& weblint) : weblint_(weblint) {}

  // Walks `root` recursively, checks every HTML file, then runs the
  // cross-page checks:
  //  * directory-index: each directory should contain one of the configured
  //    index files;
  //  * orphan-page: a page no other checked page links to (the root index
  //    is exempt — it is the site entry point).
  // If `emitter` is non-null, all diagnostics stream to it as produced.
  Result<SiteReport> CheckSite(const std::string& root, Emitter* emitter = nullptr) const;

 private:
  const Weblint& weblint_;
};

}  // namespace weblint

#endif  // WEBLINT_CORE_SITE_CHECKER_H_
