#include "core/linter.h"

#include <algorithm>
#include <optional>

#include "core/engine.h"
#include "core/reporter.h"
#include "net/robust_fetcher.h"
#include "telemetry/trace.h"
#include "spec/registry.h"
#include "util/file_io.h"
#include "util/strings.h"
#include "util/url.h"

namespace weblint {

namespace {

const HtmlSpec& ResolveSpec(const Config& config) {
  const HtmlSpec* spec = FindSpec(config.spec_id);
  return spec != nullptr ? *spec : DefaultSpec();
}

// Merges the config's custom elements and attributes (paper §6.1) into a
// copy of the base tables.
HtmlSpec BuildExtendedSpec(const Config& config) {
  HtmlSpec spec = ResolveSpec(config);
  SpecBuilder builder(&spec);
  for (const Config::CustomElement& element : config.custom_elements) {
    builder.Element(element.name)
        .End(element.container ? EndTag::kRequired : EndTag::kForbidden)
        .CoreAttrs();
    if (element.is_block) {
      builder.Block();
    } else {
      builder.Inline();
    }
  }
  for (const Config::CustomAttribute& attr : config.custom_attributes) {
    builder.Element(attr.element).Attr(attr.name, attr.pattern);
  }
  return spec;
}

// Holds either a reference to a cached registry spec or an owned extended
// copy, so the common no-customisation path stays allocation-free.
class SpecChoice {
 public:
  explicit SpecChoice(const Config& config) {
    if (config.custom_elements.empty() && config.custom_attributes.empty()) {
      spec_ = &ResolveSpec(config);
    } else {
      owned_ = BuildExtendedSpec(config);
      spec_ = &*owned_;
    }
  }
  const HtmlSpec& get() const { return *spec_; }

 private:
  std::optional<HtmlSpec> owned_;
  const HtmlSpec* spec_ = nullptr;
};

// True for link targets the bad-link check can test on the local
// filesystem: relative references without scheme, authority, or query.
bool IsLocalTarget(const Url& url) {
  return url.scheme.empty() && !url.has_authority && url.query.empty() && !url.path.empty();
}

void CheckLocalLinks(const std::string& file_path, const Config& config,
                     const LintReport& report, Reporter& reporter) {
  if (!reporter.IsEnabled("bad-link")) {
    return;
  }
  const std::string base = config.link_base_directory.empty()
                               ? std::string(Dirname(file_path))
                               : config.link_base_directory;
  for (const LinkRef& link : report.links) {
    const Url url = ParseUrl(link.url);
    if (!IsLocalTarget(url)) {
      continue;
    }
    const std::string target = NormalizePath(PathJoin(base, UrlDecode(url.path)));
    if (!FileExists(target)) {
      reporter.Report("bad-link", link.location, link.url);
    }
  }
}

}  // namespace

void Weblint::EnableMetrics(MetricsRegistry* metrics, Clock* clock) {
  metrics_ = metrics;
  if (metrics == nullptr) {
    metrics_clock_ = nullptr;
    m_documents_ = m_tokens_ = m_bytes_ = m_diagnostics_ = nullptr;
    m_lint_micros_ = nullptr;
    return;
  }
  metrics_clock_ = clock != nullptr ? clock : Clock::System();
  m_documents_ = metrics->GetCounter("weblint_documents_total");
  m_tokens_ = metrics->GetCounter("weblint_tokens_total");
  m_bytes_ = metrics->GetCounter("weblint_lint_bytes_total");
  m_diagnostics_ = metrics->GetCounter("weblint_diagnostics_total");
  m_lint_micros_ = metrics->GetHistogram("weblint_lint_micros");
}

void Weblint::RecordCheck(const LintReport& report, size_t bytes,
                          std::uint64_t micros) const {
  if (m_documents_ == nullptr) {
    return;
  }
  m_documents_->Increment();
  m_tokens_->Increment(report.tokens);
  m_bytes_->Increment(bytes);
  m_diagnostics_->Increment(report.diagnostics.size());
  m_lint_micros_->Record(micros);
}

LintReport Weblint::CheckString(std::string_view name, std::string_view html,
                                Emitter* emitter) const {
  WEBLINT_SPAN("check");
  const std::uint64_t begin_us = metrics_ != nullptr ? metrics_clock_->NowMicros() : 0;
  LintReport report;
  report.name = std::string(name);

  const SpecChoice spec(config_);
  CollectingEmitter collector;
  if (emitter != nullptr) {
    emitter->BeginDocument(name);
    TeeEmitter tee(collector, *emitter);
    Reporter reporter(config_, report.name, tee);
    RunEngine(config_, spec.get(), reporter, &report, html);
    emitter->EndDocument();
  } else {
    Reporter reporter(config_, report.name, collector);
    RunEngine(config_, spec.get(), reporter, &report, html);
  }
  report.diagnostics = collector.TakeDiagnostics();
  if (metrics_ != nullptr) {
    RecordCheck(report, html.size(), metrics_clock_->NowMicros() - begin_us);
  }
  return report;
}

Result<LintReport> Weblint::CheckFile(const std::string& path, Emitter* emitter) const {
  auto content = ReadFile(path);
  if (!content.ok()) {
    return content.status();
  }
  return CheckFileBytes(path, *content, emitter);
}

LintReport Weblint::CheckFileBytes(const std::string& path, std::string_view content,
                                   Emitter* emitter) const {
  WEBLINT_SPAN("check");
  const std::uint64_t begin_us = metrics_ != nullptr ? metrics_clock_->NowMicros() : 0;
  LintReport report;
  report.name = path;

  const SpecChoice spec(config_);
  CollectingEmitter collector;
  if (emitter != nullptr) {
    emitter->BeginDocument(path);
    TeeEmitter tee(collector, *emitter);
    Reporter reporter(config_, path, tee);
    RunEngine(config_, spec.get(), reporter, &report, content);
    CheckLocalLinks(path, config_, report, reporter);
    emitter->EndDocument();
  } else {
    Reporter reporter(config_, path, collector);
    RunEngine(config_, spec.get(), reporter, &report, content);
    CheckLocalLinks(path, config_, report, reporter);
  }
  report.diagnostics = collector.TakeDiagnostics();
  if (metrics_ != nullptr) {
    RecordCheck(report, content.size(), metrics_clock_->NowMicros() - begin_us);
  }
  return report;
}

void Weblint::EnableCache() {
  if (!config_.use_cache || cache_ != nullptr) {
    return;
  }
  LintResultCache::Options options;
  options.capacity = config_.cache_capacity;
  options.directory = config_.cache_dir;
  options.metrics = metrics_;  // Null keeps the cache's private registry.
  cache_ = std::make_shared<LintResultCache>(std::move(options));
}

FetchPolicy FetchPolicyFromConfig(const Config& config) {
  FetchPolicy policy;
  policy.total_deadline_ms = config.fetch_timeout_ms;
  // One attempt may not consume the whole budget: leave room to retry.
  policy.read_deadline_ms = std::max<std::uint32_t>(1, config.fetch_timeout_ms / 3);
  policy.connect_deadline_ms = policy.read_deadline_ms;
  policy.retries = config.fetch_retries;
  policy.max_response_bytes = config.max_fetch_bytes;
  policy.max_redirects = config.max_redirects;
  policy.jitter_seed = config.fetch_jitter_seed;
  return policy;
}

Result<FetchedDocument> Weblint::FetchDocument(std::string_view url_text,
                                               UrlFetcher& fetcher) const {
  // All retrieval goes through the policy layer: deadlines, bounded
  // retries, size caps, and a classified outcome instead of a hang.
  RobustFetcher robust(fetcher, FetchPolicyFromConfig(config_), nullptr, metrics_);
  FetchResult result = robust.FetchPage(ParseUrl(url_text));
  if (!result.ok()) {
    return Fail(StrFormat("cannot retrieve %s: %s", url_text, result.detail));
  }
  HttpResponse& response = result.response;
  if (!response.ok()) {
    return Fail(StrFormat("cannot retrieve %s: %d %s", url_text, response.status,
                          response.reason));
  }
  const std::string_view content_type = response.Header("content-type");
  if (!content_type.empty() && !IContains(content_type, "html")) {
    return Fail(StrFormat("%s is not HTML (content-type %s)", url_text, content_type));
  }
  FetchedDocument document;
  document.name = result.final_url.Serialize();
  document.body = std::move(response.body);
  return document;
}

Result<LintReport> Weblint::CheckUrl(std::string_view url_text, UrlFetcher& fetcher,
                                     Emitter* emitter) const {
  auto document = FetchDocument(url_text, fetcher);
  if (!document.ok()) {
    return document.status();
  }
  return CheckString(document->name, document->body, emitter);
}

}  // namespace weblint
