// Routes check findings through the warning set to the emitter.
#ifndef WEBLINT_CORE_REPORTER_H_
#define WEBLINT_CORE_REPORTER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "config/config.h"
#include "util/source_location.h"
#include "util/strings.h"
#include "warnings/catalog.h"
#include "warnings/emitter.h"
#include "warnings/localization.h"

namespace weblint {

// Formats catalog messages and emits them if enabled. One Reporter per
// document being checked.
//
// Page-specific pragmas (paper §6.1: "configuration information embedded in
// comments, which traditional lint supports") act as a document-scoped
// overlay on the configured warning set: the engine calls the Suppress /
// Override methods when it sees `<!-- weblint: ... -->` comments.
class Reporter {
 public:
  Reporter(const Config& config, std::string file, Emitter& emitter)
      : config_(config), file_(std::move(file)), emitter_(emitter) {}

  bool IsEnabled(std::string_view id) const {
    if (all_suppressed_) {
      return false;
    }
    if (const auto it = overrides_.find(id); it != overrides_.end()) {
      return it->second;
    }
    return config_.warnings.IsEnabled(id);
  }

  // Pragma overlay — affects this document from the pragma onward.
  void SuppressAll(bool suppressed) { all_suppressed_ = suppressed; }
  void Override(std::string_view id, bool enabled) {
    overrides_.insert_or_assign(std::string(id), enabled);
  }
  void ClearOverride(std::string_view id) {
    if (const auto it = overrides_.find(id); it != overrides_.end()) {
      overrides_.erase(it);
    }
  }

  // Formats the catalog template for `id` with `args` and emits it.
  // Unknown or disabled ids are silently dropped (checks may fire
  // unconditionally and let the set filter).
  template <typename... Args>
  void Report(std::string_view id, SourceLocation location, const Args&... args) {
    if (!IsEnabled(id)) {
      return;
    }
    const MessageInfo* info = FindMessage(id);
    if (info == nullptr) {
      return;
    }
    std::string_view format = info->format;
    if (config_.language != "en") {
      if (const std::string_view localized = LocalizedFormat(config_.language, id);
          !localized.empty()) {
        format = localized;
      }
    }
    Diagnostic diagnostic;
    diagnostic.message_id = std::string(id);
    diagnostic.category = info->category;
    diagnostic.file = file_;
    diagnostic.location = location;
    diagnostic.message = StrFormat(format, args...);
    ++count_;
    emitter_.Emit(diagnostic);
  }

  // Emits a plugin finding (paper §6.1 plugins). Plugin findings sit
  // outside the catalog: their id is "<plugin>/<topic>" and installing the
  // plugin is the opt-in, but the "off" pragma still silences them.
  void ReportPlugin(std::string_view plugin_name, const PluginFinding& finding) {
    if (all_suppressed_) {
      return;
    }
    Diagnostic diagnostic;
    diagnostic.message_id = StrFormat("%s/%s", plugin_name, finding.topic);
    diagnostic.category = finding.category;
    diagnostic.file = file_;
    diagnostic.location = finding.location;
    diagnostic.message = finding.message;
    ++count_;
    emitter_.Emit(diagnostic);
  }

  size_t count() const { return count_; }
  const Config& config() const { return config_; }
  const std::string& file() const { return file_; }

 private:
  const Config& config_;
  std::string file_;
  Emitter& emitter_;
  size_t count_ = 0;
  bool all_suppressed_ = false;
  std::map<std::string, bool, std::less<>> overrides_;
};

}  // namespace weblint

#endif  // WEBLINT_CORE_REPORTER_H_
