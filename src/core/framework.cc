#include "core/framework.h"

#include "plugins/css_checker.h"
#include "util/file_io.h"
#include "util/strings.h"

namespace weblint {

bool HtmlDocumentChecker::HandlesPath(std::string_view path) const {
  return LooksLikeHtml(Basename(path));
}

bool HtmlDocumentChecker::HandlesContentType(std::string_view content_type) const {
  return IContains(content_type, "html");
}

LintReport HtmlDocumentChecker::Check(std::string_view display_name, std::string_view content,
                                      Emitter* emitter) const {
  return weblint_.CheckString(display_name, content, emitter);
}

bool CssDocumentChecker::HandlesPath(std::string_view path) const {
  return IEquals(Extension(path), ".css");
}

bool CssDocumentChecker::HandlesContentType(std::string_view content_type) const {
  return IContains(content_type, "text/css");
}

LintReport CssDocumentChecker::Check(std::string_view display_name, std::string_view content,
                                     Emitter* emitter) const {
  LintReport report;
  report.name = std::string(display_name);
  std::uint32_t lines = 1;
  for (char c : content) {
    if (c == '\n') {
      ++lines;
    }
  }
  report.lines = lines;

  CssChecker checker;
  std::vector<PluginFinding> findings;
  checker.Check(content, SourceLocation{1, 1}, &findings);
  for (const PluginFinding& finding : findings) {
    Diagnostic d;
    d.message_id = "css/" + finding.topic;
    d.category = finding.category;
    d.file = report.name;
    d.location = finding.location;
    d.message = finding.message;
    if (emitter != nullptr) {
      emitter->Emit(d);
    }
    report.diagnostics.push_back(std::move(d));
  }
  return report;
}

CheckerFramework CheckerFramework::Standard(const Weblint& weblint) {
  CheckerFramework framework;
  framework.Register(std::make_shared<HtmlDocumentChecker>(weblint));
  framework.Register(std::make_shared<CssDocumentChecker>());
  return framework;
}

void CheckerFramework::Register(std::shared_ptr<const DocumentChecker> checker) {
  checkers_.push_back(std::move(checker));
}

const DocumentChecker* CheckerFramework::ForPath(std::string_view path) const {
  for (const auto& checker : checkers_) {
    if (checker->HandlesPath(path)) {
      return checker.get();
    }
  }
  return nullptr;
}

const DocumentChecker* CheckerFramework::ForContentType(std::string_view content_type) const {
  for (const auto& checker : checkers_) {
    if (checker->HandlesContentType(content_type)) {
      return checker.get();
    }
  }
  return nullptr;
}

Result<LintReport> CheckerFramework::CheckFile(const std::string& path, Emitter* emitter) const {
  const DocumentChecker* checker = ForPath(path);
  if (checker == nullptr) {
    return Fail("no checker handles " + path);
  }
  auto content = ReadFile(path);
  if (!content.ok()) {
    return content.status();
  }
  if (emitter != nullptr) {
    emitter->BeginDocument(path);
  }
  LintReport report = checker->Check(path, *content, nullptr);
  if (emitter != nullptr) {
    for (const Diagnostic& d : report.diagnostics) {
      emitter->Emit(d);
    }
    emitter->EndDocument();
  }
  return report;
}

}  // namespace weblint
