#include "core/attribute_checks.h"

#include <set>

#include "util/strings.h"

namespace weblint {

namespace {

// HTML allows unquoted attribute values only for name-token values; anything
// else should be quoted (the paper's TEXT=#00ff00 case).
bool ValueNeedsQuoting(std::string_view value) {
  for (char c : value) {
    if (!IsAsciiAlnum(c) && c != '.' && c != '-' && c != '_' && c != ':') {
      return true;
    }
  }
  return false;
}

std::string_view VendorName(Origin origin) {
  switch (origin) {
    case Origin::kNetscape:
      return "Netscape";
    case Origin::kMicrosoft:
      return "Microsoft";
    case Origin::kStandard:
      break;
  }
  return "standard";
}

bool ExtensionEnabled(const Config& config, Origin origin) {
  switch (origin) {
    case Origin::kNetscape:
      return config.enabled_extensions.contains("netscape");
    case Origin::kMicrosoft:
      return config.enabled_extensions.contains("microsoft");
    case Origin::kStandard:
      return true;
  }
  return true;
}

}  // namespace

void CheckAttributes(const Token& token, const ElementInfo* info, const Config& config,
                     Reporter& reporter) {
  const std::string element_upper = AsciiUpper(token.name);

  // Pass 1: lexical checks.
  std::set<std::string, ILess> seen;
  for (const Attribute& attr : token.attributes) {
    if (!seen.insert(std::string(attr.name)).second) {
      reporter.Report("repeated-attribute", attr.location, AsciiUpper(attr.name), element_upper);
    }
    if (!attr.has_value || attr.unterminated_quote) {
      // A runaway quote already produced odd-quotes; further value checks
      // would cascade off a value the author never wrote.
      continue;
    }
    if (attr.quote == QuoteStyle::kSingle) {
      reporter.Report("attribute-delimiter", attr.location, AsciiUpper(attr.name), element_upper);
    } else if (attr.quote == QuoteStyle::kNone && ValueNeedsQuoting(attr.value)) {
      const std::string attr_upper = AsciiUpper(attr.name);
      reporter.Report("quote-attribute-value", attr.location, attr_upper, attr.value,
                      element_upper, attr_upper, attr.value);
    }
  }

  if (info == nullptr || token.kind == TokenKind::kEndTag) {
    return;
  }

  // Pass 2: semantic checks against the HTML version tables.
  for (const Attribute& attr : token.attributes) {
    if (attr.name.empty()) {
      continue;
    }
    const AttributeInfo* attr_info = info->FindAttribute(attr.name);
    if (attr_info == nullptr) {
      reporter.Report("unknown-attribute", attr.location, AsciiUpper(attr.name), element_upper);
      continue;
    }
    const std::string attr_upper = AsciiUpper(attr.name);
    if (attr_info->origin != Origin::kStandard && !ExtensionEnabled(config, attr_info->origin)) {
      reporter.Report("extension-attribute", attr.location, attr_upper, element_upper,
                      VendorName(attr_info->origin));
    }
    if (attr_info->deprecated) {
      reporter.Report("deprecated-attribute", attr.location, attr_upper, element_upper);
    }
    if (attr.has_value && !attr.unterminated_quote && attr_info->HasPattern() &&
        !attr_info->pattern.Matches(Trim(attr.value))) {
      reporter.Report("attribute-value", attr.location, attr_upper, element_upper, attr.value);
    }
  }

  // Pass 3: required attributes.
  for (const auto& [name, attr_info] : info->attributes) {
    if (!attr_info.required || seen.contains(name)) {
      continue;
    }
    reporter.Report("required-attribute", token.location, AsciiUpper(name), element_upper);
  }
}

}  // namespace weblint
