#include "core/parallel_runner.h"

#include <utility>

#include "telemetry/trace.h"
#include "util/file_io.h"

namespace weblint {

unsigned ParallelLintRunner::ResolveJobs(std::uint32_t configured) {
  return configured == 0 ? ThreadPool::DefaultThreadCount() : configured;
}

ParallelLintRunner::ParallelLintRunner(const Weblint& weblint, unsigned jobs, Emitter* emitter)
    : weblint_(weblint), jobs_(jobs == 0 ? ThreadPool::DefaultThreadCount() : jobs),
      emitter_(emitter), cache_(weblint.cache()),
      config_fingerprint_(cache_ != nullptr ? weblint.config().Fingerprint() : 0) {
  if (jobs_ > 1) {
    pool_ = std::make_unique<ThreadPool>(jobs_);
    if (emitter_ != nullptr) {
      synchronized_ = std::make_unique<SynchronizedEmitter>(*emitter_);
    }
  }
  metrics_ = weblint.metrics();
  if (metrics_ != nullptr) {
    clock_ = weblint.metrics_clock();
    m_page_micros_ = metrics_->GetHistogram("weblint_page_lint_micros");
    m_queue_depth_ = metrics_->GetGauge("weblint_pool_queue_depth");
    m_pool_threads_ = metrics_->GetGauge("weblint_pool_threads");
    m_pool_submitted_ = metrics_->GetCounter("weblint_pool_submitted_total");
    m_pool_steals_ = metrics_->GetCounter("weblint_pool_steals_total");
    m_pool_threads_->Set(static_cast<std::int64_t>(jobs_));
  }
}

ParallelLintRunner::~ParallelLintRunner() {
  if (pool_ != nullptr) {
    pool_->Wait();  // Never let queued jobs outlive the result slots.
  }
}

void ParallelLintRunner::RecordPage(std::uint64_t begin_us) {
  if (m_page_micros_ == nullptr) {
    return;
  }
  m_page_micros_->Record(clock_->NowMicros() - begin_us);
  if (pool_ != nullptr) {
    m_queue_depth_->Set(static_cast<std::int64_t>(pool_->pending()));
  }
}

LintReport ParallelLintRunner::CheckThroughCache(const std::string& name,
                                                std::string_view content,
                                                const std::function<LintReport(Emitter*)>& lint,
                                                Emitter* stream_to) {
  if (cache_ == nullptr) {
    return lint(stream_to);
  }
  const CacheKey key =
      MakeLintCacheKey(name, content, config_fingerprint_, weblint_.config().spec_id);
  {
    WEBLINT_SPAN("cache-lookup");
    if (std::shared_ptr<const LintReport> cached = cache_->Lookup(key)) {
      if (stream_to != nullptr) {
        ReplayReport(*cached, *stream_to);
      }
      return *cached;
    }
  }
  LintReport report = lint(stream_to);
  WEBLINT_SPAN("cache-store");
  cache_->Store(key, report);
  return report;
}

size_t ParallelLintRunner::SubmitFile(std::string path) {
  size_t index;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    index = results_.size();
    results_.emplace_back();
    if (pool_ == nullptr && error_seen_) {
      // Serial semantics: the serial loop returns at the first error, so
      // later files are never read. Record a placeholder; callers surface
      // the first error in submit order and never look past it.
      results_[index] = Result<LintReport>(
          Fail("skipped: an earlier page failed"));
      return index;
    }
  }
  if (pool_ == nullptr) {
    // Inline: this *is* the serial path — the emitter sees diagnostics as
    // they are produced (or replayed from cache), exactly as
    // Weblint::CheckFile streams them.
    const std::uint64_t begin_us = clock_ != nullptr ? clock_->NowMicros() : 0;
    auto content = ReadFile(path);
    Result<LintReport> report =
        content.ok()
            ? Result<LintReport>(CheckThroughCache(
                  path, *content,
                  [&](Emitter* e) { return weblint_.CheckFileBytes(path, *content, e); },
                  emitter_))
            : Result<LintReport>(content.status());
    RecordPage(begin_us);
    if (observer_ && report.ok()) {
      observer_(index, *report);
    }
    std::lock_guard<std::mutex> lock(results_mu_);
    if (!report.ok()) {
      error_seen_ = true;
    }
    results_[index] = std::move(report);
    return index;
  }
  // Carry the submitter's trace id onto the worker so the page's lint spans
  // correlate with the crawl/request trace that queued it.
  pool_->Submit([this, index, path = std::move(path), trace_id = CurrentTraceId()] {
    TraceContextScope trace_scope(trace_id);
    RunSlot(index, [this, &path]() -> Result<LintReport> {
      auto content = ReadFile(path);
      if (!content.ok()) {
        return content.status();
      }
      return CheckThroughCache(
          path, *content,
          [&](Emitter*) { return weblint_.CheckFileBytes(path, *content, nullptr); },
          nullptr);
    });
  });
  return index;
}

size_t ParallelLintRunner::SubmitString(std::string name, std::string html) {
  size_t index;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    index = results_.size();
    results_.emplace_back();
  }
  if (pool_ == nullptr) {
    const std::uint64_t begin_us = clock_ != nullptr ? clock_->NowMicros() : 0;
    LintReport report = CheckThroughCache(
        name, html, [&](Emitter* e) { return weblint_.CheckString(name, html, e); }, emitter_);
    RecordPage(begin_us);
    if (observer_) {
      observer_(index, report);
    }
    std::lock_guard<std::mutex> lock(results_mu_);
    results_[index] = Result<LintReport>(std::move(report));
    return index;
  }
  pool_->Submit(
      [this, index, name = std::move(name), html = std::move(html), trace_id = CurrentTraceId()] {
        TraceContextScope trace_scope(trace_id);
        RunSlot(index, [this, &name, &html] {
          return Result<LintReport>(CheckThroughCache(
              name, html, [&](Emitter*) { return weblint_.CheckString(name, html, nullptr); },
              nullptr));
        });
      });
  return index;
}

size_t ParallelLintRunner::SubmitReport(LintReport report) {
  size_t index;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    index = results_.size();
    results_.emplace_back();
  }
  if (pool_ == nullptr) {
    // Serial path: replay the document to the emitter immediately, exactly
    // where a checked page's diagnostics would have streamed.
    if (emitter_ != nullptr) {
      emitter_->BeginDocument(report.name);
      for (const Diagnostic& diagnostic : report.diagnostics) {
        emitter_->Emit(diagnostic);
      }
      emitter_->EndDocument();
    }
    std::lock_guard<std::mutex> lock(results_mu_);
    results_[index] = Result<LintReport>(std::move(report));
    return index;
  }
  // Parallel path: the result is already final — fill the slot and let the
  // frontier flush it in submit order.
  std::lock_guard<std::mutex> lock(results_mu_);
  results_[index] = Result<LintReport>(std::move(report));
  FlushReadyLocked();
  return index;
}

void ParallelLintRunner::RunSlot(size_t index,
                                 const std::function<Result<LintReport>()>& check) {
  WEBLINT_SPAN("lint-page");
  const std::uint64_t begin_us = clock_ != nullptr ? clock_->NowMicros() : 0;
  Result<LintReport> result = check();
  RecordPage(begin_us);
  if (observer_ && result.ok()) {
    observer_(index, *result);
  }
  std::lock_guard<std::mutex> lock(results_mu_);
  results_[index] = std::move(result);
  FlushReadyLocked();
}

void ParallelLintRunner::FlushReadyLocked() {
  // Sliding frontier: emit whole documents in submit order as soon as every
  // earlier document has been emitted. Workers that finish out of order
  // park their result and a later completion drains the run.
  while (!error_seen_ && flush_frontier_ < results_.size() &&
         results_[flush_frontier_].has_value()) {
    const Result<LintReport>& result = *results_[flush_frontier_];
    if (!result.ok()) {
      error_seen_ = true;  // Serial path emits nothing past the first error.
      break;
    }
    if (synchronized_ != nullptr) {
      synchronized_->EmitDocument(result->name, result->diagnostics);
    }
    ++flush_frontier_;
  }
}

std::vector<Result<LintReport>> ParallelLintRunner::Finish() {
  if (pool_ != nullptr) {
    pool_->Wait();
    if (m_pool_submitted_ != nullptr) {
      // The pool is per-runner, so its lifetime totals are exactly this
      // run's; publish them once, now that the queue has drained.
      m_pool_submitted_->Increment(pool_->submitted());
      m_pool_steals_->Increment(pool_->steals());
      m_queue_depth_->Set(0);
    }
  }
  std::lock_guard<std::mutex> lock(results_mu_);
  FlushReadyLocked();
  std::vector<Result<LintReport>> out;
  out.reserve(results_.size());
  for (std::optional<Result<LintReport>>& slot : results_) {
    out.push_back(std::move(*slot));
  }
  results_.clear();
  flush_frontier_ = 0;
  return out;
}

}  // namespace weblint
