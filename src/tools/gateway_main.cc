// The weblint CGI gateway binary (paper §5.3). Reads the CGI environment
// (REQUEST_METHOD, QUERY_STRING, CONTENT_TYPE) and, for POST, the request
// body on stdin; writes an HTTP response to stdout.
//
// Run outside a web server with --form to print the submission form, or
// pipe a form-urlencoded body in with REQUEST_METHOD=POST set.
//
// With --serve the binary instead becomes a long-running standalone
// gateway: the concurrent HTTP/1.1 serving layer (accept thread + worker
// pool, keep-alive, bounded queue with 503 shedding, per-request
// deadlines) fronting the same handler, with GET /metrics exposing the
// deployment's telemetry. SIGINT/SIGTERM drain gracefully.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "core/linter.h"
#include "gateway/gateway.h"
#include "gateway/tenant.h"
#include "net/fetcher.h"
#include "net/http_server.h"
#include "net/socket_fetcher.h"
#include "telemetry/build_info.h"
#include "telemetry/log.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_context.h"
#include "util/args.h"
#include "util/file_io.h"
#include "util/strings.h"

namespace {

using namespace weblint;

std::sig_atomic_t g_stop = 0;
void HandleStopSignal(int) { g_stop = 1; }

std::string ReadStdin() {
  std::string content;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), stdin)) > 0) {
    content.append(buffer, n);
  }
  return content;
}

std::map<std::string, std::string> CgiEnvironment() {
  std::map<std::string, std::string> env;
  for (const char* name : {"REQUEST_METHOD", "QUERY_STRING", "CONTENT_TYPE"}) {
    if (const char* value = std::getenv(name); value != nullptr) {
      env[name] = value;
    }
  }
  return env;
}

int Run(int argc, char** argv) {
  ArgParser parser;
  bool form_only = false;
  bool no_http_header = false;
  bool serve = false;
  bool event_driven = false;
  bool stream = false;
  bool show_help = false;
  std::string cache_dir;
  std::string tenants_file;
  std::string slo_p95_arg = "0";
  std::string fetch_timeout_arg;
  std::string fetch_retries_arg;
  std::string max_fetch_bytes_arg;
  std::string max_redirects_arg;
  std::string port_arg = "0";
  std::string threads_arg = "0";
  std::string max_queue_arg = "64";
  std::string request_timeout_arg = "10000";
  std::string drain_grace_arg = "0";
  std::string log_level_arg;
  std::string log_file_arg;
  parser.AddFlag("--form", "print the submission form and exit", &form_only);
  parser.AddFlag("--no-header", "omit the Content-Type response header", &no_http_header);
  parser.AddFlag("--serve",
                 "run as a standalone concurrent HTTP server instead of one-shot CGI", &serve);
  parser.AddOption("--port", "with --serve: port to listen on (0 picks a free port)",
                   &port_arg);
  parser.AddOption("--threads", "with --serve: worker threads (0 = one per core)",
                   &threads_arg);
  parser.AddOption("--max-queue",
                   "with --serve: pending connections beyond this are shed with 503",
                   &max_queue_arg);
  parser.AddOption("--request-timeout",
                   "with --serve: per-request read/write deadline in milliseconds",
                   &request_timeout_arg);
  parser.AddFlag("--event-driven",
                 "with --serve: hold connections on an epoll reactor so idle keep-alive "
                 "costs a watched fd, not a worker thread",
                 &event_driven);
  parser.AddFlag("--stream",
                 "with --serve: deliver HTTP/1.1 responses with chunked "
                 "transfer-encoding, flushing batch report sections as pages complete "
                 "(a request's stream=0 field forces buffering)",
                 &stream);
  parser.AddOption("--tenants-file",
                   "with --serve: per-tenant configs and quotas, one 'key=... rate=... "
                   "priority=...' line per tenant; requests present the key in the "
                   "X-Weblint-Api-Key header",
                   &tenants_file);
  parser.AddOption("--slo-p95-ms",
                   "with --serve: shed lowest-priority requests with 503 while the "
                   "live request-latency p95 exceeds this many milliseconds (0 = off)",
                   &slo_p95_arg);
  parser.AddOption("--drain-grace-ms",
                   "with --serve: on SIGINT/SIGTERM, fail /healthz for this long (lame-duck) "
                   "before draining, so load balancers stop routing first",
                   &drain_grace_arg);
  parser.AddOption("--log-level",
                   "emit structured JSON log lines at this level and above "
                   "(debug|info|warn|error)",
                   &log_level_arg);
  parser.AddOption("--log-file", "append structured log lines here instead of stderr",
                   &log_file_arg);
  parser.AddOption("--cache-dir",
                   "persist lint results here; repeated submissions of the same page "
                   "are served from cache",
                   &cache_dir);
  parser.AddOption("--fetch-timeout", "total milliseconds allowed to retrieve a submitted URL",
                   &fetch_timeout_arg);
  parser.AddOption("--fetch-retries", "retry a failed retrieval this many times",
                   &fetch_retries_arg);
  parser.AddOption("--max-fetch-bytes", "abandon responses whose body exceeds this many bytes",
                   &max_fetch_bytes_arg);
  parser.AddOption("--max-redirects", "follow at most this many redirect hops per retrieval",
                   &max_redirects_arg);
  parser.AddFlag("--help", "show this help", &show_help);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "weblint-gateway: %s\n", s.message().c_str());
    return 2;
  }
  if (show_help) {
    std::fputs(parser.Help("weblint-gateway", "CGI gateway for weblint").c_str(), stdout);
    return 0;
  }

  std::string log_error;
  const std::unique_ptr<StructuredLog> log =
      InstallLogFromFlags(log_level_arg, log_file_arg, &log_error);
  if (!log_error.empty()) {
    std::fprintf(stderr, "weblint-gateway: %s\n", log_error.c_str());
    return 2;
  }

  Weblint lint;
  const auto parse_fetch_knob = [](const std::string& arg, const char* flag,
                                   std::uint32_t* out) {
    if (arg.empty()) {
      return true;
    }
    std::uint32_t value = 0;
    if (!ParseUint(arg, &value)) {
      std::fprintf(stderr, "weblint-gateway: %s expects a non-negative integer, got %s\n", flag,
                   arg.c_str());
      return false;
    }
    *out = value;
    return true;
  };
  std::uint32_t max_fetch_bytes32 = 0;
  if (!parse_fetch_knob(fetch_timeout_arg, "--fetch-timeout", &lint.config().fetch_timeout_ms) ||
      !parse_fetch_knob(fetch_retries_arg, "--fetch-retries", &lint.config().fetch_retries) ||
      !parse_fetch_knob(max_fetch_bytes_arg, "--max-fetch-bytes", &max_fetch_bytes32) ||
      !parse_fetch_knob(max_redirects_arg, "--max-redirects", &lint.config().max_redirects)) {
    return 2;
  }
  if (!max_fetch_bytes_arg.empty()) {
    lint.config().max_fetch_bytes = max_fetch_bytes32;
  }
  if (!cache_dir.empty()) {
    // The CGI binary is one request per process: only the persistent tier
    // can serve "the same popular URLs over and over" across invocations.
    lint.config().cache_dir = cache_dir;
    lint.EnableCache();
  }
  // URL submissions: http goes over a real socket under the configured
  // fetch policy, file:// stays on disk.
  struct SchemeRoutingFetcher : UrlFetcher {
    explicit SchemeRoutingFetcher(FetchPolicy policy) : socket(policy) {}
    HttpResponse Get(const Url& url) override {
      return url.scheme == "http" ? socket.Get(url) : file.Get(url);
    }
    HttpResponse Head(const Url& url) override {
      return url.scheme == "http" ? socket.Head(url) : file.Head(url);
    }
    FileFetcher file;
    SocketFetcher socket;
  };
  SchemeRoutingFetcher fetcher(FetchPolicyFromConfig(lint.config()));
  GatewayOptions gateway_options;
  gateway_options.streaming = stream;
  Gateway gateway(lint, &fetcher, gateway_options);

  if (serve) {
    std::uint32_t port = 0;
    std::uint32_t threads = 0;
    std::uint32_t max_queue = 0;
    std::uint32_t request_timeout_ms = 0;
    std::uint32_t drain_grace_ms = 0;
    std::uint32_t slo_p95_ms = 0;
    if (!ParseUint(port_arg, &port) || port > 65535 || !ParseUint(threads_arg, &threads) ||
        !ParseUint(max_queue_arg, &max_queue) ||
        !ParseUint(request_timeout_arg, &request_timeout_ms) ||
        !ParseUint(drain_grace_arg, &drain_grace_ms) ||
        !ParseUint(slo_p95_arg, &slo_p95_ms)) {
      std::fprintf(stderr, "weblint-gateway: bad --port/--threads/--max-queue/"
                           "--request-timeout/--drain-grace-ms/--slo-p95-ms value\n");
      return 2;
    }
    MetricsRegistry registry;
    RegisterBuildInfo(&registry);
    lint.EnableMetrics(&registry);
    TraceRecorder recorder;
    TraceRecorder::Install(&recorder);
    // Multi-tenant layer: resolve each request's API key to its tenant's
    // own Gateway/quota, shed by priority when over the latency SLO. With
    // no --tenants-file and --slo-p95-ms 0 this degenerates to the plain
    // single-tenant handler.
    std::unique_ptr<TenantRegistry> tenants;
    if (!tenants_file.empty()) {
      auto text = ReadFile(tenants_file);
      if (!text.ok()) {
        std::fprintf(stderr, "weblint-gateway: --tenants-file: %s\n", text.error().c_str());
        return 1;
      }
      auto specs = ParseTenantsFile(*text);
      if (!specs.ok()) {
        std::fprintf(stderr, "weblint-gateway: %s\n", specs.error().c_str());
        return 1;
      }
      auto built = TenantRegistry::Create(lint.config(), *specs, &fetcher, gateway_options,
                                          &registry, /*metrics_clock=*/nullptr);
      if (!built.ok()) {
        std::fprintf(stderr, "weblint-gateway: %s\n", built.error().c_str());
        return 1;
      }
      tenants = std::move(built).value();
    }
    AdmissionController admission(registry.GetHistogram("weblint_http_request_micros"),
                                  slo_p95_ms, &registry);
    TenantService service(&gateway, tenants.get(), &admission, /*clock=*/nullptr);
    HttpServer server(
        [&service](const HttpRequest& request) { return service.Handle(request); });
    server.EnableMetrics(&registry);
    HttpServerIntrospection introspection;
    introspection.metrics = &registry;
    introspection.traces = &recorder;
    introspection.log = log.get();
    introspection.config_fingerprint = lint.config().Fingerprint();
    server.EnableIntrospection(introspection);
    if (Status s = server.Listen(static_cast<std::uint16_t>(port)); !s.ok()) {
      std::fprintf(stderr, "weblint-gateway: %s\n", s.message().c_str());
      return 1;
    }
    HttpServerOptions options;
    options.threads = threads;
    options.max_queue = max_queue;
    options.request_timeout_ms = request_timeout_ms;
    options.event_driven = event_driven;
    if (Status s = server.Start(options); !s.ok()) {
      std::fprintf(stderr, "weblint-gateway: %s\n", s.message().c_str());
      return 1;
    }
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    std::fprintf(stderr, "weblint-gateway: serving on http://127.0.0.1:%u/ "
                         "(metrics at /metrics; z-pages at /statusz /tracez /healthz; "
                         "Ctrl-C drains)\n",
                 server.port());
    WEBLINT_LOG(kInfo, "gateway", "serve-start",
                {{"port", std::to_string(server.port())},
                 {"mode", event_driven ? "event-driven" : "threaded"},
                 {"tenants", std::to_string(tenants != nullptr ? tenants->size() : 0)},
                 {"slo_p95_ms", std::to_string(slo_p95_ms)}});
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    // Fail health checks first so load balancers route away, then drain.
    server.BeginLameDuck();
    if (drain_grace_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(drain_grace_ms));
    }
    server.Drain();
    TraceRecorder::Install(nullptr);
    WEBLINT_LOG(kInfo, "gateway", "serve-drained",
                {{"connections", std::to_string(server.connections_served())},
                 {"shed", std::to_string(server.rejected())}});
    std::fprintf(stderr, "weblint-gateway: drained; %llu connection(s) served, %zu shed\n",
                 static_cast<unsigned long long>(server.connections_served()),
                 server.rejected());
    return 0;
  }

  if (!no_http_header) {
    std::fputs("Content-Type: text/html\r\n\r\n", stdout);
  }
  if (form_only) {
    std::fputs(gateway.FormPage().c_str(), stdout);
    return 0;
  }

  const std::map<std::string, std::string> env = CgiEnvironment();
  const bool is_post = env.contains("REQUEST_METHOD") && env.at("REQUEST_METHOD") == "POST";
  auto request = ParseCgiRequest(env, is_post ? ReadStdin() : std::string());
  if (!request.ok()) {
    std::fprintf(stderr, "weblint-gateway: %s\n", request.error().c_str());
    return 2;
  }
  std::fputs(gateway.HandleRequest(*request).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
