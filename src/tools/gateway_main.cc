// The weblint CGI gateway binary (paper §5.3). Reads the CGI environment
// (REQUEST_METHOD, QUERY_STRING, CONTENT_TYPE) and, for POST, the request
// body on stdin; writes an HTTP response to stdout.
//
// Run outside a web server with --form to print the submission form, or
// pipe a form-urlencoded body in with REQUEST_METHOD=POST set.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "core/linter.h"
#include "gateway/gateway.h"
#include "net/fetcher.h"
#include "net/socket_fetcher.h"
#include "util/args.h"
#include "util/strings.h"

namespace {

using namespace weblint;

std::string ReadStdin() {
  std::string content;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), stdin)) > 0) {
    content.append(buffer, n);
  }
  return content;
}

std::map<std::string, std::string> CgiEnvironment() {
  std::map<std::string, std::string> env;
  for (const char* name : {"REQUEST_METHOD", "QUERY_STRING", "CONTENT_TYPE"}) {
    if (const char* value = std::getenv(name); value != nullptr) {
      env[name] = value;
    }
  }
  return env;
}

int Run(int argc, char** argv) {
  ArgParser parser;
  bool form_only = false;
  bool no_http_header = false;
  bool show_help = false;
  std::string cache_dir;
  std::string fetch_timeout_arg;
  std::string fetch_retries_arg;
  std::string max_fetch_bytes_arg;
  std::string max_redirects_arg;
  parser.AddFlag("--form", "print the submission form and exit", &form_only);
  parser.AddFlag("--no-header", "omit the Content-Type response header", &no_http_header);
  parser.AddOption("--cache-dir",
                   "persist lint results here; repeated submissions of the same page "
                   "are served from cache",
                   &cache_dir);
  parser.AddOption("--fetch-timeout", "total milliseconds allowed to retrieve a submitted URL",
                   &fetch_timeout_arg);
  parser.AddOption("--fetch-retries", "retry a failed retrieval this many times",
                   &fetch_retries_arg);
  parser.AddOption("--max-fetch-bytes", "abandon responses whose body exceeds this many bytes",
                   &max_fetch_bytes_arg);
  parser.AddOption("--max-redirects", "follow at most this many redirect hops per retrieval",
                   &max_redirects_arg);
  parser.AddFlag("--help", "show this help", &show_help);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "weblint-gateway: %s\n", s.message().c_str());
    return 2;
  }
  if (show_help) {
    std::fputs(parser.Help("weblint-gateway", "CGI gateway for weblint").c_str(), stdout);
    return 0;
  }

  Weblint lint;
  const auto parse_fetch_knob = [](const std::string& arg, const char* flag,
                                   std::uint32_t* out) {
    if (arg.empty()) {
      return true;
    }
    std::uint32_t value = 0;
    if (!ParseUint(arg, &value)) {
      std::fprintf(stderr, "weblint-gateway: %s expects a non-negative integer, got %s\n", flag,
                   arg.c_str());
      return false;
    }
    *out = value;
    return true;
  };
  std::uint32_t max_fetch_bytes32 = 0;
  if (!parse_fetch_knob(fetch_timeout_arg, "--fetch-timeout", &lint.config().fetch_timeout_ms) ||
      !parse_fetch_knob(fetch_retries_arg, "--fetch-retries", &lint.config().fetch_retries) ||
      !parse_fetch_knob(max_fetch_bytes_arg, "--max-fetch-bytes", &max_fetch_bytes32) ||
      !parse_fetch_knob(max_redirects_arg, "--max-redirects", &lint.config().max_redirects)) {
    return 2;
  }
  if (!max_fetch_bytes_arg.empty()) {
    lint.config().max_fetch_bytes = max_fetch_bytes32;
  }
  if (!cache_dir.empty()) {
    // The CGI binary is one request per process: only the persistent tier
    // can serve "the same popular URLs over and over" across invocations.
    lint.config().cache_dir = cache_dir;
    lint.EnableCache();
  }
  // URL submissions: http goes over a real socket under the configured
  // fetch policy, file:// stays on disk.
  struct SchemeRoutingFetcher : UrlFetcher {
    explicit SchemeRoutingFetcher(FetchPolicy policy) : socket(policy) {}
    HttpResponse Get(const Url& url) override {
      return url.scheme == "http" ? socket.Get(url) : file.Get(url);
    }
    HttpResponse Head(const Url& url) override {
      return url.scheme == "http" ? socket.Head(url) : file.Head(url);
    }
    FileFetcher file;
    SocketFetcher socket;
  };
  SchemeRoutingFetcher fetcher(FetchPolicyFromConfig(lint.config()));
  Gateway gateway(lint, &fetcher);

  if (!no_http_header) {
    std::fputs("Content-Type: text/html\r\n\r\n", stdout);
  }
  if (form_only) {
    std::fputs(gateway.FormPage().c_str(), stdout);
    return 0;
  }

  const std::map<std::string, std::string> env = CgiEnvironment();
  const bool is_post = env.contains("REQUEST_METHOD") && env.at("REQUEST_METHOD") == "POST";
  auto request = ParseCgiRequest(env, is_post ? ReadStdin() : std::string());
  if (!request.ok()) {
    std::fprintf(stderr, "weblint-gateway: %s\n", request.error().c_str());
    return 2;
  }
  std::fputs(gateway.HandleRequest(*request).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
