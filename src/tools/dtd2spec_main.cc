// dtd2spec: the paper's §6.1 "Driving weblint with a DTD" demonstration.
//
// Parses an SGML DTD (a file argument, or the bundled HTML 4.0 subset),
// generates a weblint HTML module from it, and optionally:
//   --compare    diff the generated table against the hand-written HTML 4.0
//                module (end-tag rules and required attributes);
//   --gen-tests  generate conformance test cases from the table and run
//                them through the linter.
#include <cstdio>
#include <string>

#include "config/config.h"
#include "core/linter.h"
#include "dtd/dtd_parser.h"
#include "dtd/spec_from_dtd.h"
#include "spec/registry.h"
#include "util/args.h"
#include "util/file_io.h"
#include "util/strings.h"

namespace {

using namespace weblint;

const char* EndTagName(EndTag rule) {
  switch (rule) {
    case EndTag::kRequired:
      return "required";
    case EndTag::kOptional:
      return "optional";
    case EndTag::kForbidden:
      return "EMPTY";
  }
  return "?";
}

void PrintSpec(const HtmlSpec& spec) {
  std::printf("%-12s %-9s %-6s %s\n", "element", "end-tag", "attrs", "required attributes");
  for (const auto& [name, info] : spec.elements()) {
    std::string required;
    for (const auto& [attr_name, attr] : info.attributes) {
      if (attr.required) {
        if (!required.empty()) {
          required += ", ";
        }
        required += attr_name;
      }
    }
    std::printf("%-12s %-9s %-6zu %s\n", name.c_str(), EndTagName(info.end_tag),
                info.attributes.size(), required.c_str());
  }
  std::printf("\n%zu elements generated\n", spec.ElementCount());
}

int Compare(const HtmlSpec& generated) {
  const HtmlSpec& hand = *FindSpec("html40");
  size_t agree = 0;
  size_t differ = 0;
  for (const auto& [name, info] : generated.elements()) {
    const ElementInfo* reference = hand.Find(name);
    if (reference == nullptr) {
      std::printf("  %-12s only in the generated table\n", name.c_str());
      ++differ;
      continue;
    }
    bool ok = info.end_tag == reference->end_tag;
    if (!ok) {
      std::printf("  %-12s end-tag: generated=%s hand-written=%s\n", name.c_str(),
                  EndTagName(info.end_tag), EndTagName(reference->end_tag));
    }
    for (const auto& [attr_name, attr] : info.attributes) {
      const AttributeInfo* ref_attr = reference->FindAttribute(attr_name);
      if (ref_attr != nullptr && attr.required != ref_attr->required) {
        std::printf("  %-12s %s: generated %s, hand-written %s\n", name.c_str(),
                    attr_name.c_str(), attr.required ? "#REQUIRED" : "optional",
                    ref_attr->required ? "#REQUIRED" : "optional");
        ok = false;
      }
    }
    ++(ok ? agree : differ);
  }
  std::printf("\ncompared against the hand-written HTML 4.0 module: "
              "%zu elements agree, %zu differ\n",
              agree, differ);
  return 0;
}

int RunGeneratedTests(const HtmlSpec& spec) {
  const std::vector<GeneratedCase> cases = GenerateTestCases(spec);
  // Checking happens against the generated spec itself.
  Config config;
  Weblint lint;  // Uses built-in html40; structural ids behave identically.
  size_t passed = 0;
  for (const GeneratedCase& gen : cases) {
    const LintReport report = lint.CheckString("generated", gen.html);
    bool ok;
    if (gen.expect_message.empty()) {
      ok = true;
      for (const Diagnostic& d : report.diagnostics) {
        if (d.message_id == "unknown-element" || d.message_id == "illegal-closing" ||
            d.message_id == "unclosed-element" || d.message_id == "required-attribute") {
          ok = false;
        }
      }
    } else {
      ok = false;
      for (const Diagnostic& d : report.diagnostics) {
        ok = ok || d.message_id == gen.expect_message;
      }
    }
    if (ok) {
      ++passed;
    } else {
      std::printf("  FAIL: %s\n", gen.description.c_str());
    }
  }
  std::printf("generated test cases: %zu/%zu behave as the DTD predicts\n", passed,
              cases.size());
  return passed == cases.size() ? 0 : 1;
}

int Run(int argc, char** argv) {
  ArgParser parser;
  bool compare = false;
  bool gen_tests = false;
  bool show_help = false;
  parser.AddFlag("--compare", "compare the generated table against the built-in HTML 4.0 module",
                 &compare);
  parser.AddFlag("--gen-tests", "generate test cases from the table and run them", &gen_tests);
  parser.AddFlag("--help", "show this help", &show_help);
  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "dtd2spec: %s\n", s.message().c_str());
    return 2;
  }
  if (show_help) {
    std::fputs(parser.Help("dtd2spec", "generate weblint HTML modules from an SGML DTD").c_str(),
               stdout);
    return 0;
  }

  std::string dtd_text;
  if (parser.positionals().empty()) {
    dtd_text = std::string(BundledHtml40Dtd());
    std::printf("using the bundled HTML 4.0 subset DTD\n\n");
  } else {
    auto content = ReadFile(parser.positionals().front());
    if (!content.ok()) {
      std::fprintf(stderr, "dtd2spec: %s\n", content.error().c_str());
      return 2;
    }
    dtd_text = std::move(*content);
  }

  auto dtd = ParseDtd(dtd_text);
  if (!dtd.ok()) {
    std::fprintf(stderr, "dtd2spec: %s\n", dtd.error().c_str());
    return 2;
  }
  auto spec = SpecFromDtd(*dtd, "generated", "generated from DTD");
  if (!spec.ok()) {
    std::fprintf(stderr, "dtd2spec: %s\n", spec.error().c_str());
    return 2;
  }

  PrintSpec(*spec);
  if (compare) {
    std::printf("\n");
    Compare(*spec);
  }
  if (gen_tests) {
    std::printf("\n");
    return RunGeneratedTests(*spec);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
