// The weblint command-line tool (paper §4.2/§4.4/§4.5).
//
// "The weblint script is now a wrapper around the modules ... with
// documentation for the user who doesn't want to know about the existence
// of the modules."
//
// Exit status follows lint convention: 0 clean, 1 problems found, 2 usage
// or I/O error.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "util/file_io.h"

#include "config/config.h"
#include "core/linter.h"
#include "core/framework.h"
#include "core/site_checker.h"
#include "robot/page_weight.h"
#include "net/fetcher.h"
#include "net/socket_fetcher.h"
#include "telemetry/log.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/args.h"
#include "util/strings.h"
#include "warnings/catalog.h"
#include "warnings/emitter.h"

namespace {

using namespace weblint;

std::string ReadStdin() {
  std::string content;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), stdin)) > 0) {
    content.append(buffer, n);
  }
  return content;
}

void ListWarnings() {
  std::printf("%-24s %-8s %-8s %s\n", "identifier", "category", "default", "description");
  for (const MessageInfo& info : AllMessages()) {
    std::printf("%-24s %-8s %-8s %s\n", std::string(info.id).c_str(),
                std::string(CategoryName(info.category)).c_str(),
                info.default_enabled ? "on" : "off", std::string(info.description).c_str());
  }
  std::printf("\n%zu messages, %zu enabled by default\n", MessageCount(), DefaultEnabledCount());
}

int Run(int argc, char** argv) {
  ArgParser parser;
  bool short_output = false;
  bool verbose_output = false;
  bool recurse = false;
  bool list_warnings = false;
  bool urls_mode = false;
  bool weigh_pages = false;
  bool show_help = false;
  std::vector<std::string> enables;
  std::vector<std::string> disables;
  std::vector<std::string> extensions;
  std::string html_version;
  std::string user_config;
  std::string site_config;
  std::string jobs_arg;
  std::string cache_dir;
  bool no_cache = false;
  bool cache_stats = false;
  std::string fetch_timeout_arg;
  std::string fetch_retries_arg;
  std::string max_fetch_bytes_arg;
  std::string max_redirects_arg;
  bool metrics_dump = false;
  std::string trace_out;
  std::string log_level_arg;
  std::string log_file_arg;

  parser.AddFlag("-s", "short output: line N: message", &short_output);
  parser.AddFlag("-v", "verbose output: include message identifiers and descriptions",
                 &verbose_output);
  parser.AddOption("-e", "enable warning(s), comma-separated identifiers", &enables);
  parser.AddOption("-d", "disable warning(s), comma-separated identifiers", &disables);
  parser.AddOption("-x", "enable vendor extension: netscape or microsoft", &extensions);
  parser.AddFlag("-R", "recurse into directories; adds directory-index and orphan-page checks",
                 &recurse);
  parser.AddOption("-j", "parallel lint jobs for -R site checking (0 = one per core, 1 = serial)",
                   &jobs_arg);
  parser.AddOption("--cache-dir",
                   "persist lint results here; unchanged pages are served from cache",
                   &cache_dir);
  parser.AddFlag("--no-cache", "disable the lint-result cache entirely", &no_cache);
  parser.AddFlag("--cache-stats", "print cache hit/miss/store counters after the run",
                 &cache_stats);
  parser.AddFlag("-l", "list all warning identifiers and exit", &list_warnings);
  parser.AddOption("-f", "use this user configuration file instead of ~/.weblintrc",
                   &user_config);
  parser.AddOption("--site-config", "site-wide configuration file (read before the user file)",
                   &site_config);
  parser.AddOption("--html-version", "HTML version to check against: html40 (default) or html32",
                   &html_version);
  parser.AddFlag("--url", "treat operands as file:// URLs and retrieve them", &urls_mode);
  parser.AddOption("--fetch-timeout", "total milliseconds allowed to retrieve one URL",
                   &fetch_timeout_arg);
  parser.AddOption("--fetch-retries", "retry a failed retrieval this many times",
                   &fetch_retries_arg);
  parser.AddOption("--max-fetch-bytes", "abandon responses whose body exceeds this many bytes",
                   &max_fetch_bytes_arg);
  parser.AddOption("--max-redirects", "follow at most this many redirect hops per retrieval",
                   &max_redirects_arg);
  parser.AddFlag("--weight",
                 "report page weight and estimated modem download times after checking",
                 &weigh_pages);
  parser.AddFlag("--metrics", "print Prometheus-text telemetry to stderr after the run",
                 &metrics_dump);
  parser.AddOption("--trace-out", "write a Chrome trace-event JSON timeline of the run here",
                   &trace_out);
  parser.AddOption("--log-level",
                   "emit structured JSON log lines at this level and above "
                   "(debug|info|warn|error)",
                   &log_level_arg);
  parser.AddOption("--log-file", "append structured log lines here instead of stderr",
                   &log_file_arg);
  parser.AddFlag("--help", "show this help", &show_help);

  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "weblint: %s\n", s.message().c_str());
    return 2;
  }
  if (show_help) {
    std::fputs(parser.Help("weblint", "syntax and style checker for HTML").c_str(), stdout);
    return 0;
  }
  if (list_warnings) {
    ListWarnings();
    return 0;
  }

  std::string log_error;
  const std::unique_ptr<StructuredLog> log =
      InstallLogFromFlags(log_level_arg, log_file_arg, &log_error);
  if (!log_error.empty()) {
    std::fprintf(stderr, "weblint: %s\n", log_error.c_str());
    return 2;
  }

  // Configuration layering: site file, user file, then switches (§4.4).
  Config config;
  if (user_config.empty()) {
    if (const char* home = std::getenv("HOME"); home != nullptr) {
      user_config = std::string(home) + "/.weblintrc";
    }
  }
  if (Status s = LoadStandardConfig(site_config, user_config, &config); !s.ok()) {
    std::fprintf(stderr, "weblint: %s\n", s.message().c_str());
    return 2;
  }
  for (const std::string& list : enables) {
    for (std::string_view id : Split(list, ',')) {
      if (Status s = config.warnings.Enable(Trim(id)); !s.ok()) {
        std::fprintf(stderr, "weblint: %s\n", s.message().c_str());
        return 2;
      }
    }
  }
  for (const std::string& list : disables) {
    for (std::string_view id : Split(list, ',')) {
      if (Status s = config.warnings.Disable(Trim(id)); !s.ok()) {
        std::fprintf(stderr, "weblint: %s\n", s.message().c_str());
        return 2;
      }
    }
  }
  for (const std::string& ext : extensions) {
    const std::string lower = AsciiLower(ext);
    if (lower != "netscape" && lower != "microsoft") {
      std::fprintf(stderr, "weblint: unknown extension %s\n", ext.c_str());
      return 2;
    }
    config.enabled_extensions.insert(lower);
  }
  if (!html_version.empty()) {
    config.spec_id = AsciiLower(html_version);
  }
  config.output_style = short_output   ? OutputStyle::kShort
                        : verbose_output ? OutputStyle::kVerbose
                                         : OutputStyle::kTraditional;
  config.recurse = recurse;
  if (!jobs_arg.empty()) {
    std::uint32_t jobs = 0;
    if (!ParseUint(jobs_arg, &jobs)) {
      std::fprintf(stderr, "weblint: -j expects a non-negative integer, got %s\n",
                   jobs_arg.c_str());
      return 2;
    }
    config.jobs = jobs;
  }
  config.use_cache = !no_cache;
  config.cache_dir = cache_dir;
  config.cache_stats = cache_stats;

  const auto parse_fetch_knob = [](const std::string& arg, const char* flag,
                                   std::uint32_t* out) {
    if (arg.empty()) {
      return true;
    }
    std::uint32_t value = 0;
    if (!ParseUint(arg, &value)) {
      std::fprintf(stderr, "weblint: %s expects a non-negative integer, got %s\n", flag,
                   arg.c_str());
      return false;
    }
    *out = value;
    return true;
  };
  std::uint32_t max_fetch_bytes32 = 0;
  if (!parse_fetch_knob(fetch_timeout_arg, "--fetch-timeout", &config.fetch_timeout_ms) ||
      !parse_fetch_knob(fetch_retries_arg, "--fetch-retries", &config.fetch_retries) ||
      !parse_fetch_knob(max_fetch_bytes_arg, "--max-fetch-bytes", &max_fetch_bytes32) ||
      !parse_fetch_knob(max_redirects_arg, "--max-redirects", &config.max_redirects)) {
    return 2;
  }
  if (!max_fetch_bytes_arg.empty()) {
    config.max_fetch_bytes = max_fetch_bytes32;
  }

  // Telemetry: one process registry behind --metrics (and implicitly behind
  // --cache-stats, whose counters live in the cache either way); a tracer
  // behind --trace-out. Neither is wired up unless asked for, so the default
  // run stays exactly the pre-telemetry code path.
  MetricsRegistry registry;
  std::unique_ptr<Tracer> tracer;
  if (!trace_out.empty()) {
    tracer = std::make_unique<Tracer>();
    Tracer::Install(tracer.get());
  }

  Weblint lint(config);
  if (metrics_dump) {
    lint.EnableMetrics(&registry);
  }
  lint.EnableCache();  // Honours use_cache / cache_dir from the config.
  StreamEmitter emitter(std::cout, config.output_style);

  std::vector<std::string> operands = parser.positionals();
  if (operands.empty()) {
    operands.push_back("-");
  }

  size_t problems = 0;
  for (const std::string& operand : operands) {
    if (operand == "-") {
      const LintReport report = lint.CheckString("stdin", ReadStdin(), &emitter);
      problems += report.diagnostics.size();
      continue;
    }
    if (urls_mode) {
      // http URLs go over a real socket; everything else stays on disk.
      FileFetcher file_fetcher;
      SocketFetcher socket_fetcher(FetchPolicyFromConfig(config));
      UrlFetcher& fetcher = ParseUrl(operand).scheme == "http"
                                ? static_cast<UrlFetcher&>(socket_fetcher)
                                : file_fetcher;
      auto report = lint.CheckUrl(operand, fetcher, &emitter);
      if (!report.ok()) {
        std::fprintf(stderr, "weblint: %s\n", report.error().c_str());
        return 2;
      }
      problems += report->diagnostics.size();
      continue;
    }
    // Non-HTML documents the outer framework claims (e.g. stylesheets).
    if (!IsDirectory(operand) && !LooksLikeHtml(Basename(operand))) {
      const CheckerFramework framework = CheckerFramework::Standard(lint);
      if (framework.ForPath(operand) != nullptr) {
        auto report = framework.CheckFile(operand, &emitter);
        if (!report.ok()) {
          std::fprintf(stderr, "weblint: %s\n", report.error().c_str());
          return 2;
        }
        problems += report->diagnostics.size();
        continue;
      }
    }
    if (recurse && IsDirectory(operand)) {
      SiteChecker checker(lint);
      auto site = checker.CheckSite(operand, &emitter);
      if (!site.ok()) {
        std::fprintf(stderr, "weblint: %s\n", site.error().c_str());
        return 2;
      }
      problems += site->TotalDiagnostics();
      continue;
    }
    auto report = lint.CheckFile(operand, &emitter);
    if (!report.ok()) {
      std::fprintf(stderr, "weblint: %s\n", report.error().c_str());
      return 2;
    }
    problems += report->diagnostics.size();

    if (weigh_pages) {
      // Page weight with resources resolved on the local filesystem
      // (paper section 3.6: estimated download times for modem speeds).
      auto content = ReadFile(operand);
      if (content.ok()) {
        std::error_code ec;
        const std::string absolute = std::filesystem::absolute(operand, ec).string();
        FileFetcher fetcher;
        const Url page_url = ParseUrl("file://" + (ec ? operand : absolute));
        const PageWeight weight = MeasurePageWeight(*content, *report, page_url, fetcher);
        std::printf("%s: %zu bytes HTML + %zu bytes in %zu resource(s)", operand.c_str(),
                    weight.html_bytes, weight.resource_bytes, weight.resource_count);
        if (weight.missing_resources > 0) {
          std::printf(" (%zu missing)", weight.missing_resources);
        }
        std::printf("\n");
        for (const ModemEstimate& estimate : EstimateDownloadTimes(weight)) {
          std::printf("  %-12s %6.1f s\n", estimate.label.c_str(), estimate.seconds);
        }
      }
    }
  }

  if (cache_stats && lint.cache() != nullptr) {
    std::fputs(FormatCacheStats(lint.cache()->stats()).c_str(), stderr);
  }
  if (metrics_dump) {
    std::fputs(registry.RenderPrometheus().c_str(), stderr);
  }
  if (tracer != nullptr) {
    Tracer::Install(nullptr);
    if (Status s = WriteFile(trace_out, tracer->DumpChromeTrace()); !s.ok()) {
      std::fprintf(stderr, "weblint: cannot write trace: %s\n", s.message().c_str());
      return 2;
    }
  }
  return problems == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
