// The poacher robot CLI (paper §4.5): weblint over a site traversal, with
// basic link validation.
//
// Modes:
//   poacher --root DIR [start.html]   crawl a site on the local filesystem
//   poacher --demo [pages]            crawl a generated in-memory site
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "corpus/site_generator.h"
#include "core/linter.h"
#include "crawl/frontier.h"
#include "net/async_fetcher.h"
#include "net/fetcher.h"
#include "net/socket_fetcher.h"
#include "net/virtual_web.h"
#include "robot/poacher.h"
#include "telemetry/log.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/args.h"
#include "util/file_io.h"
#include "util/strings.h"
#include "warnings/emitter.h"

namespace {

using namespace weblint;

void PrintReport(const PoacherReport& report) {
  std::printf("\n--- poacher summary ---\n");
  std::printf("pages checked:     %zu\n", report.pages.size());
  std::printf("fetch failures:    %zu\n", report.stats.fetch_failures);
  std::printf("pages degraded:    %zu\n", report.stats.pages_degraded);
  std::printf("robots.txt skips:  %zu\n", report.stats.skipped_robots);
  std::printf("diagnostics:       %zu\n", report.TotalDiagnostics());
  std::printf("broken links:      %zu\n", report.broken_links.size());
  for (const LinkProblem& problem : report.broken_links) {
    std::printf("  %d %s (from %s)\n", problem.status, problem.target.c_str(),
                problem.page.c_str());
  }
  std::printf("redirected links:  %zu\n", report.redirected_links.size());
  for (const LinkProblem& problem : report.redirected_links) {
    std::printf("  %s -> %s (from %s)\n", problem.target.c_str(), problem.fixed.c_str(),
                problem.page.c_str());
  }
}

int Run(int argc, char** argv) {
  ArgParser parser;
  std::string root;
  std::string http_url;
  std::string prefetch_arg;
  bool demo = false;
  bool short_output = false;
  bool show_help = false;
  std::string max_pages = "10000";
  std::string jobs_arg;
  std::string cache_dir;
  bool no_cache = false;
  bool cache_stats = false;
  bool fetch_stats = false;
  std::string fetch_timeout_arg;
  std::string fetch_retries_arg;
  std::string max_fetch_bytes_arg;
  std::string max_redirects_arg;
  bool metrics_dump = false;
  std::string trace_out;
  std::string progress_arg;
  std::string shards_arg;
  std::string per_host_delay_arg;
  std::string frontier_dir;
  bool resume = false;
  std::string log_level_arg;
  std::string log_file_arg;
  parser.AddOption("--root", "serve the site from this directory (file crawl)", &root);
  parser.AddOption("--http", "crawl a live HTTP origin starting from this URL", &http_url);
  parser.AddOption("--prefetch",
                   "overlap up to this many page fetches ahead of linting (0 = fetch "
                   "then process; with --http this multiplexes fetches on one reactor)",
                   &prefetch_arg);
  parser.AddFlag("--demo", "crawl a generated in-memory demonstration site", &demo);
  parser.AddFlag("-s", "short diagnostic format", &short_output);
  parser.AddOption("--max-pages", "stop after this many pages", &max_pages);
  parser.AddOption("-j", "parallel lint jobs (0 = one per core, 1 = serial)", &jobs_arg);
  parser.AddOption("--cache-dir",
                   "persist lint results here; unchanged pages are served from cache",
                   &cache_dir);
  parser.AddFlag("--no-cache", "disable the lint-result cache entirely", &no_cache);
  parser.AddFlag("--cache-stats", "print cache hit/miss/store counters after the run",
                 &cache_stats);
  parser.AddOption("--fetch-timeout", "total milliseconds allowed to retrieve one page",
                   &fetch_timeout_arg);
  parser.AddOption("--fetch-retries", "retry a failed retrieval this many times",
                   &fetch_retries_arg);
  parser.AddOption("--max-fetch-bytes", "abandon responses whose body exceeds this many bytes",
                   &max_fetch_bytes_arg);
  parser.AddOption("--max-redirects", "follow at most this many redirect hops per retrieval",
                   &max_redirects_arg);
  parser.AddFlag("--fetch-stats", "print crawl fetch counters after the run", &fetch_stats);
  parser.AddFlag("--metrics", "print Prometheus-text telemetry to stderr after the run",
                 &metrics_dump);
  parser.AddOption("--trace-out", "write a Chrome trace-event JSON timeline of the run here",
                   &trace_out);
  parser.AddOption("--progress",
                   "print a heartbeat line to stderr every this-many milliseconds of crawl",
                   &progress_arg);
  parser.AddOption("--shards",
                   "crawl through a sharded frontier with this many host-hash shards "
                   "(enables frontier mode; output is identical at any shard count)",
                   &shards_arg);
  parser.AddOption("--per-host-delay",
                   "politeness: wait at least this many milliseconds between fetches "
                   "to the same host (enables frontier mode)",
                   &per_host_delay_arg);
  parser.AddOption("--frontier-dir",
                   "journal the crawl frontier here so an interrupted run can be "
                   "resumed (enables frontier mode)",
                   &frontier_dir);
  parser.AddFlag("--resume",
                 "resume a crawl from --frontier-dir: completed pages replay from "
                 "the journal instead of refetching",
                 &resume);
  parser.AddOption("--log-level",
                   "emit structured JSON log lines at this level and above "
                   "(debug|info|warn|error)",
                   &log_level_arg);
  parser.AddOption("--log-file", "append structured log lines here instead of stderr",
                   &log_file_arg);
  parser.AddFlag("--help", "show this help", &show_help);

  if (Status s = parser.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "poacher: %s\n", s.message().c_str());
    return 2;
  }
  if (show_help || (!demo && root.empty() && http_url.empty())) {
    std::fputs(parser.Help("poacher", "weblint robot: lint every page of a site").c_str(),
               stdout);
    return show_help ? 0 : 2;
  }

  std::string log_error;
  const std::unique_ptr<StructuredLog> log =
      InstallLogFromFlags(log_level_arg, log_file_arg, &log_error);
  if (!log_error.empty()) {
    std::fprintf(stderr, "poacher: %s\n", log_error.c_str());
    return 2;
  }

  Weblint lint;
  PoacherOptions options;
  std::uint32_t limit = 0;
  if (ParseUint(max_pages, &limit) && limit > 0) {
    options.crawl.max_pages = limit;
  }
  if (!jobs_arg.empty()) {
    std::uint32_t jobs = 0;
    if (!ParseUint(jobs_arg, &jobs)) {
      std::fprintf(stderr, "poacher: -j expects a non-negative integer, got %s\n",
                   jobs_arg.c_str());
      return 2;
    }
    lint.config().jobs = jobs;
  }
  const auto parse_fetch_knob = [](const std::string& arg, const char* flag,
                                   std::uint32_t* out) {
    if (arg.empty()) {
      return true;
    }
    std::uint32_t value = 0;
    if (!ParseUint(arg, &value)) {
      std::fprintf(stderr, "poacher: %s expects a non-negative integer, got %s\n", flag,
                   arg.c_str());
      return false;
    }
    *out = value;
    return true;
  };
  std::uint32_t max_fetch_bytes32 = 0;
  if (!parse_fetch_knob(fetch_timeout_arg, "--fetch-timeout", &lint.config().fetch_timeout_ms) ||
      !parse_fetch_knob(fetch_retries_arg, "--fetch-retries", &lint.config().fetch_retries) ||
      !parse_fetch_knob(max_fetch_bytes_arg, "--max-fetch-bytes", &max_fetch_bytes32) ||
      !parse_fetch_knob(max_redirects_arg, "--max-redirects", &lint.config().max_redirects)) {
    return 2;
  }
  if (!max_fetch_bytes_arg.empty()) {
    lint.config().max_fetch_bytes = max_fetch_bytes32;
  }
  lint.config().fetch_stats = fetch_stats;
  // The crawl enforces the same policy the single-URL path derives from the
  // config: one knob set governs every retrieval the tools make.
  options.crawl.fetch_policy = FetchPolicyFromConfig(lint.config());
  options.crawl.max_redirects = static_cast<int>(lint.config().max_redirects);
  if (!prefetch_arg.empty()) {
    std::uint32_t prefetch = 0;
    if (!ParseUint(prefetch_arg, &prefetch)) {
      std::fprintf(stderr, "poacher: --prefetch expects a non-negative integer, got %s\n",
                   prefetch_arg.c_str());
      return 2;
    }
    options.crawl.prefetch = prefetch;
  }
  lint.config().use_cache = !no_cache;
  lint.config().cache_dir = cache_dir;

  // Telemetry: one process registry collects lint, cache, and crawl series
  // when --metrics asks for a dump or --progress needs latency quantiles;
  // a tracer records the run when --trace-out names a file.
  MetricsRegistry registry;
  std::unique_ptr<Tracer> tracer;
  if (!trace_out.empty()) {
    tracer = std::make_unique<Tracer>();
    Tracer::Install(tracer.get());
  }
  if (!progress_arg.empty()) {
    std::uint32_t interval_ms = 0;
    if (!ParseUint(progress_arg, &interval_ms) || interval_ms == 0) {
      std::fprintf(stderr, "poacher: --progress expects a positive millisecond interval, got %s\n",
                   progress_arg.c_str());
      return 2;
    }
    options.progress_interval_ms = interval_ms;
  }
  if (metrics_dump || options.progress_interval_ms != 0) {
    lint.EnableMetrics(&registry);
  }

  // Frontier mode: any frontier knob switches the crawl onto the sharded,
  // journaled frontier. The flags compose — --shards alone is an in-memory
  // sharded crawl, --frontier-dir adds the crash-safe journal, --resume
  // replays a previous journal from that directory before fetching.
  std::unique_ptr<Frontier> frontier;
  if (!shards_arg.empty() || !per_host_delay_arg.empty() || !frontier_dir.empty() || resume) {
    if (resume && frontier_dir.empty()) {
      std::fprintf(stderr, "poacher: --resume requires --frontier-dir\n");
      return 2;
    }
    FrontierOptions frontier_options;
    if (!shards_arg.empty()) {
      std::uint32_t shards = 0;
      if (!ParseUint(shards_arg, &shards) || shards == 0) {
        std::fprintf(stderr, "poacher: --shards expects a positive integer, got %s\n",
                     shards_arg.c_str());
        return 2;
      }
      frontier_options.shards = shards;
    }
    if (!per_host_delay_arg.empty()) {
      std::uint32_t delay_ms = 0;
      if (!ParseUint(per_host_delay_arg, &delay_ms)) {
        std::fprintf(stderr,
                     "poacher: --per-host-delay expects a non-negative millisecond count, "
                     "got %s\n",
                     per_host_delay_arg.c_str());
        return 2;
      }
      frontier_options.per_host_delay_us = static_cast<std::uint64_t>(delay_ms) * 1000;
    }
    frontier_options.dir = frontier_dir;
    frontier_options.resume = resume;
    frontier_options.metrics =
        metrics_dump || options.progress_interval_ms != 0 ? &registry : nullptr;
    frontier = std::make_unique<Frontier>(std::move(frontier_options));
    if (Status s = frontier->Open(); !s.ok()) {
      std::fprintf(stderr, "poacher: cannot open frontier: %s\n", s.message().c_str());
      return 2;
    }
    options.frontier = frontier.get();
  }
  const auto finish_telemetry = [&]() {
    if (metrics_dump) {
      std::fputs(registry.RenderPrometheus().c_str(), stderr);
    }
    if (tracer == nullptr) {
      return true;
    }
    Tracer::Install(nullptr);
    if (Status s = WriteFile(trace_out, tracer->DumpChromeTrace()); !s.ok()) {
      std::fprintf(stderr, "poacher: cannot write trace: %s\n", s.message().c_str());
      return false;
    }
    return true;
  };

  lint.EnableCache();
  StreamEmitter emitter(std::cout,
                        short_output ? OutputStyle::kShort : OutputStyle::kTraditional);

  if (demo) {
    SiteSpec spec;
    spec.pages = 12;
    if (!parser.positionals().empty()) {
      std::uint32_t pages = 0;
      if (!ParseUint(parser.positionals().front(), &pages) || pages == 0) {
        std::fprintf(stderr, "poacher: --demo page count must be a positive integer, got %s\n",
                     parser.positionals().front().c_str());
        return 2;
      }
      spec.pages = pages;
    }
    spec.broken_links = 2;
    spec.redirects = 1;
    spec.private_pages = 2;
    VirtualWeb web;
    const GeneratedSite site = GenerateSite(spec);
    PopulateVirtualWeb(site, &web);
    Poacher poacher(lint, web, options);
    const PoacherReport report = poacher.Run(site.IndexUrl(), &emitter);
    PrintReport(report);
    if (fetch_stats) {
      std::fputs(FormatFetchStats(report.stats.fetch).c_str(), stderr);
    }
    if (cache_stats && lint.cache() != nullptr) {
      std::fputs(FormatCacheStats(lint.cache()->stats()).c_str(), stderr);
    }
    std::printf("(demo site: %zu pages, %zu seeded broken links, %zu private pages)\n",
                site.pages.size(), site.broken_link_count, site.private_paths.size());
    return finish_telemetry() ? 0 : 2;
  }

  const auto run_crawl = [&](UrlFetcher& fetcher, const std::string& start) {
    Poacher poacher(lint, fetcher, options);
    const PoacherReport report = poacher.Run(start, &emitter);
    PrintReport(report);
    if (fetch_stats) {
      std::fputs(FormatFetchStats(report.stats.fetch).c_str(), stderr);
    }
    if (cache_stats && lint.cache() != nullptr) {
      std::fputs(FormatCacheStats(lint.cache()->stats()).c_str(), stderr);
    }
    if (!finish_telemetry()) {
      return 2;
    }
    return report.TotalDiagnostics() + report.broken_links.size() == 0 ? 0 : 1;
  };

  if (!http_url.empty()) {
    // Live HTTP crawl. With --prefetch the fetcher is the reactor-backed
    // AsyncFetcher (one thread multiplexing up to `prefetch` retrievals);
    // without it, the blocking socket path, one fetch at a time.
    FetchPolicy policy = options.crawl.fetch_policy;
    policy.max_redirects = options.crawl.max_redirects < 0
                               ? 0
                               : static_cast<std::uint32_t>(options.crawl.max_redirects);
    if (options.crawl.prefetch > 0) {
      AsyncFetcher::Options async_options;
      async_options.policy = policy;
      async_options.max_inflight = options.crawl.prefetch;
      async_options.metrics = metrics_dump ? &registry : nullptr;
      AsyncFetcher fetcher(async_options);
      return run_crawl(fetcher, http_url);
    }
    SocketFetcher fetcher(policy);
    return run_crawl(fetcher, http_url);
  }

  FileFetcher fetcher(root);
  const std::string start =
      parser.positionals().empty() ? "index.html" : parser.positionals().front();
  return run_crawl(fetcher, start);
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
