// Poacher: weblint over a site crawl, plus basic link validation
// (paper §4.5: "A robot can be used to invoke weblint on all accessible
// pages on a site. I have written one, called poacher ... Poacher also
// performs basic link validation." and §3.5: broken-link robots "merely
// consist of sending a HEAD request, and reporting all URLs which result in
// a 404 response code. Smarter robots will handle redirects (fixing the
// links)").
#ifndef WEBLINT_ROBOT_POACHER_H_
#define WEBLINT_ROBOT_POACHER_H_

#include <functional>
#include <string>
#include <vector>

#include "core/linter.h"
#include "robot/robot.h"
#include "warnings/emitter.h"

namespace weblint {

struct PoacherOptions {
  CrawlOptions crawl;
  bool validate_links = true;  // HEAD-check links that the crawl won't fetch.

  // Non-null: crawl through this (already Open()ed) frontier instead of the
  // in-memory queue — sharded per-host scheduling, politeness budgets,
  // content-digest dedupe (duplicate pages report as aliases), and a
  // crash-safe journal. On a resumed frontier the recovered prefix replays
  // its journaled reports before anything is fetched, so the final output
  // is byte-identical to an uninterrupted run.
  Frontier* frontier = nullptr;

  // Progress heartbeat (`poacher --progress MS`): at most one line per
  // `progress_interval_ms` of crawl-clock time, plus a final line when the
  // crawl drains. Each line samples pages submitted/degraded, the runner's
  // queue depth, and p50/p95 page-lint latency from the Weblint's registry
  // (zeros when no registry is attached). 0 disables the heartbeat.
  std::uint64_t progress_interval_ms = 0;
  // Heartbeat destination; null writes to stderr. Tests install a sink and
  // a FakeClock (crawl.clock) to assert exact lines.
  std::function<void(const std::string&)> progress_sink;
};

// Synthesizes the report emitted for a page whose retrieval degraded below
// the HTTP layer: one structured `fetch-failed` error diagnostic carrying
// the classified outcome, in place of the page's lint results. Exposed so
// tests can assert the exact shape.
LintReport MakeFetchFailedReport(const Url& url, const FetchResult& result);

// Synthesizes the report emitted for a page whose body digest matched an
// earlier page's (`canonical`): one duplicate-content warning in place of a
// second identical lint. Deterministic, so journal replay rebuilds it
// byte-identically. Exposed so tests can assert the exact shape.
LintReport MakeDuplicateContentReport(const Url& url, const std::string& canonical);

// A link whose target did not answer 200.
struct LinkProblem {
  std::string page;    // URL of the page containing the link.
  std::string target;  // The resolved link target.
  int status = 0;      // Response status (404, 410, 5xx...).
  std::string fixed;   // For redirects: where the link should point now.
};

struct PoacherReport {
  std::vector<LintReport> pages;
  std::vector<LinkProblem> broken_links;
  std::vector<LinkProblem> redirected_links;
  CrawlStats stats;

  size_t TotalDiagnostics() const {
    size_t n = 0;
    for (const LintReport& page : pages) {
      n += page.diagnostics.size();
    }
    return n;
  }
};

class Poacher {
 public:
  Poacher(const Weblint& weblint, UrlFetcher& fetcher, PoacherOptions options = {})
      : weblint_(weblint), fetcher_(fetcher), options_(std::move(options)) {}

  // Crawls from `start_url`, linting every page retrieved and validating
  // every outbound link. If `emitter` is non-null, page diagnostics stream
  // to it as produced.
  PoacherReport Run(std::string_view start_url, Emitter* emitter = nullptr);

 private:
  const Weblint& weblint_;
  UrlFetcher& fetcher_;
  PoacherOptions options_;
};

}  // namespace weblint

#endif  // WEBLINT_ROBOT_POACHER_H_
