#include "robot/page_weight.h"

#include <set>

namespace weblint {

double PageWeight::SecondsAt(std::uint64_t bits_per_second, double per_request_s) const {
  if (bits_per_second == 0) {
    return 0;
  }
  const double transfer =
      static_cast<double>(TotalBytes()) * 8.0 / static_cast<double>(bits_per_second);
  const double requests = static_cast<double>(1 + resource_count + missing_resources);
  return transfer + requests * per_request_s;
}

PageWeight MeasurePageWeight(std::string_view html, const LintReport& report,
                             const Url& page_url, UrlFetcher& fetcher) {
  PageWeight weight;
  weight.html_bytes = html.size();

  std::set<std::string> fetched;
  for (const LinkRef& link : report.links) {
    if (!link.is_resource) {
      continue;
    }
    Url resolved = ResolveUrl(page_url, link.url);
    resolved.StripFragment();
    const std::string key = resolved.Serialize();
    if (!fetched.insert(key).second) {
      continue;  // The browser cache fetches each resource once.
    }
    const HttpResponse response = fetcher.Get(resolved);
    if (!response.ok()) {
      ++weight.missing_resources;
      continue;
    }
    ++weight.resource_count;
    weight.resource_bytes += response.body.size();
  }
  return weight;
}

std::vector<ModemEstimate> EstimateDownloadTimes(const PageWeight& weight) {
  std::vector<ModemEstimate> estimates;
  const std::pair<const char*, std::uint64_t> kSpeeds[] = {
      {"14.4k modem", 14400},
      {"28.8k modem", 28800},
      {"56k modem", 56000},
      {"128k ISDN", 128000},
  };
  for (const auto& [label, bps] : kSpeeds) {
    estimates.push_back(ModemEstimate{label, bps, weight.SecondsAt(bps)});
  }
  return estimates;
}

}  // namespace weblint
