// The web-traversal engine (the WWW::Robot analog, paper [5]): breadth-first
// crawl of a site through a UrlFetcher, honouring robots.txt, with a
// per-page callback. Poacher builds weblint-over-a-crawl on top of this
// (paper §4.5: "A robot can be used to invoke weblint on all accessible
// pages on a site").
#ifndef WEBLINT_ROBOT_ROBOT_H_
#define WEBLINT_ROBOT_ROBOT_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "crawl/frontier.h"
#include "crawl/robots_cache.h"
#include "net/fetch_policy.h"
#include "net/fetcher.h"
#include "net/robust_fetcher.h"
#include "robot/robots_txt.h"
#include "util/clock.h"
#include "util/url.h"

namespace weblint {

class AsyncUrlFetcher;  // async_fetcher.h

struct CrawlOptions {
  std::string agent = "poacher/2.0";
  size_t max_pages = 10000;
  int max_redirects = 5;  // Copied into fetch_policy.max_redirects at crawl start.
  bool honor_robots_txt = true;
  bool stay_on_host = true;  // Only follow links to the start URL's host.

  // Pipelined crawl window: up to this many page fetches outstanding ahead
  // of processing (0 = the classic fetch-then-process loop). Results are
  // consumed strictly in issue order and the consume side runs the exact
  // sequential visit logic, so page-level output (handler/failure calls,
  // visited/redirect/failure maps, page counters) is identical at any
  // window size; only wire-level counters can exceed the sequential run's
  // (a redirect collapsing onto a URL already in the window costs a fetch
  // whose result is discarded). Overlap needs an AsyncUrlFetcher
  // (async_fetcher.h) — with a plain blocking fetcher each issue completes
  // inline, which degenerates to exactly the sequential request order.
  size_t prefetch = 0;

  // Robustness contract for every retrieval the crawl makes (pages and
  // robots.txt): deadlines, bounded retries, size caps. A fetch that
  // exhausts the policy degrades to a per-page outcome; it never hangs or
  // aborts the crawl.
  FetchPolicy fetch_policy;
  // Time source for deadlines/backoff; null = system clock. Fault-injection
  // tests share a FakeClock between the crawl and the FaultyWeb.
  Clock* clock = nullptr;
  // Registry for the crawl fetcher's wire series (weblint_fetch_*); null
  // leaves the fetcher unregistered. Poacher fills this in from its
  // Weblint's registry so one scrape covers lint, cache, and crawl.
  MetricsRegistry* metrics = nullptr;
};

struct CrawlStats {
  size_t pages_fetched = 0;     // Successful HTML retrievals.
  size_t fetch_failures = 0;    // Complete replies with non-2xx status.
  size_t pages_degraded = 0;    // Transport-level failures (timeout, refusal,
                                // truncation, ...) that became per-page
                                // fetch-failed outcomes.
  size_t skipped_robots = 0;    // URLs excluded by robots.txt.
  size_t skipped_offsite = 0;   // URLs on other hosts (stay_on_host).
  size_t skipped_duplicate = 0; // Already-visited URLs.
  FetchStats fetch;             // Wire-level counters (attempts, retries, ...).
};

// Extracts link targets (A HREF, plus SRC-style references when
// `include_resources`) from an HTML body, using the weblint tokenizer.
std::vector<std::string> ExtractLinks(std::string_view html, bool include_resources = false);

class Robot {
 public:
  // Called for each page retrieved with 2xx. Returning extra URLs (absolute
  // or relative to the page) adds them to the crawl frontier in addition to
  // the links the robot extracts itself.
  using PageHandler =
      std::function<void(const Url& url, const HttpResponse& response)>;

  // Called for each page whose retrieval degraded below the HTTP layer
  // (outcome != kOk: timeout, refusal, truncation, oversize, malformed
  // reply, redirect loop). Fired in crawl order, so downstream output built
  // from it is deterministic.
  using FailureHandler = std::function<void(const Url& url, const FetchResult& result)>;

  Robot(UrlFetcher& fetcher, CrawlOptions options)
      : fetcher_(fetcher), options_(std::move(options)) {}

  // Frontier-mode callbacks (Crawl over a Frontier). Sequence numbers key
  // the frontier's journal: the caller passes `seq` back through
  // Frontier::AttachPayload once the page's lint report is serialized.
  struct FrontierHooks {
    // A fetched page whose content digest is new: lint it.
    std::function<void(std::uint64_t seq, const Url& url, const HttpResponse& response)>
        on_page;
    // Retrieval degraded below HTTP (same contract as FailureHandler).
    std::function<void(const Url& url, const FetchResult& result)> on_failure;
    // The page's body digest matched `canonical`'s: report as an alias of
    // the canonical page instead of linting it again.
    std::function<void(const Url& url, const std::string& canonical)> on_alias;
    // Replay one journal-recovered outcome (kPage-with-payload, kAlias, or
    // kDegraded) in its original slot. Return false for a kPage whose
    // payload no longer deserializes; the robot then re-fetches it (redo).
    std::function<bool(const RecoveredOutcome& outcome)> on_replay;
  };

  // Crawls from `start`; visits every reachable same-host HTML page.
  CrawlStats Crawl(const Url& start, const PageHandler& handler);
  CrawlStats Crawl(const Url& start, const PageHandler& handler,
                   const FailureHandler& on_failure);

  // Frontier mode: URLs flow through `frontier` (sharded per-host queues,
  // politeness budgets, content-digest dedupe, journaled resume). Consume
  // order is strict seq order, so output is byte-identical at any shard
  // count, politeness delay, or prefetch window — and a resumed crawl
  // replays its recovered prefix before fetching anything new. The
  // frontier must be Open()ed by the caller.
  CrawlStats Crawl(const Url& start, Frontier& frontier, const FrontierHooks& hooks);

  // URLs visited (fetched or attempted) during the last Crawl.
  const std::set<std::string>& visited() const { return visited_; }

  // Redirect hops observed during the crawl: requested URL -> final URL.
  // "Smarter robots will handle redirects (fixing the links)" — paper §3.5.
  const std::map<std::string, std::string>& redirects_seen() const { return redirects_seen_; }

  // URLs whose retrieval failed during the crawl, with the response status.
  const std::map<std::string, int>& failures_seen() const { return failures_seen_; }

 private:
  const RobotsTxt& RobotsFor(const Url& url);
  // Null `stats` = quiet pre-check (the pipelined issue stage): no skip
  // counters are touched; the consume stage recounts with real stats.
  bool ShouldVisit(const Url& url, const Url& start, CrawlStats* stats);
  CrawlStats CrawlSequential(const Url& start, const PageHandler& handler,
                             const FailureHandler& on_failure, RobustFetcher& robust);
  // The prefetch>0 path. Exactly one of `async`/`sync` is non-null.
  CrawlStats CrawlPipelined(const Url& start, const PageHandler& handler,
                            const FailureHandler& on_failure, AsyncUrlFetcher* async,
                            RobustFetcher* sync);
  // Frontier mode (blocking and prefetch). Exactly one of `async`/`sync`
  // is non-null.
  CrawlStats CrawlFrontier(const Url& start, Frontier& frontier,
                           const FrontierHooks& hooks, AsyncUrlFetcher* async,
                           RobustFetcher* sync);

  UrlFetcher& fetcher_;
  CrawlOptions options_;
  RobustFetcher* robust_ = nullptr;  // Valid only during Crawl().
  std::set<std::string> visited_;
  std::map<std::string, std::string> redirects_seen_;
  std::map<std::string, int> failures_seen_;
  // TTL'd per-host robots.txt policies (allow-all negative entries on fetch
  // failure); lazily built so it sees the final options_. Replaces the old
  // forever-per-crawl authority map.
  std::unique_ptr<RobotsCache> robots_;
};

}  // namespace weblint

#endif  // WEBLINT_ROBOT_ROBOT_H_
