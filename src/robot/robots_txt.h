// Forwarding shim: RobotsTxt moved to src/crawl (the crawl subsystem owns
// robots policy now that the frontier's RobotsCache sits in front of it).
// Kept so existing includes keep compiling; new code should include
// "crawl/robots_txt.h" directly.
#ifndef WEBLINT_ROBOT_ROBOTS_TXT_SHIM_H_
#define WEBLINT_ROBOT_ROBOTS_TXT_SHIM_H_

#include "crawl/robots_txt.h"  // IWYU pragma: export

#endif  // WEBLINT_ROBOT_ROBOTS_TXT_SHIM_H_
