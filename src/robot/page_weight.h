// Page weight and modem download estimates (paper §3.6: the WebTechs meta
// service "can also generate a weight for your web page, including
// estimated download times for different modem speeds"; §2 asks "How usable
// is your site by people accessing it via a modem?").
#ifndef WEBLINT_ROBOT_PAGE_WEIGHT_H_
#define WEBLINT_ROBOT_PAGE_WEIGHT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/report.h"
#include "net/fetcher.h"

namespace weblint {

struct PageWeight {
  size_t html_bytes = 0;
  size_t resource_bytes = 0;   // Embedded resources (IMG SRC, SCRIPT SRC...).
  size_t resource_count = 0;   // Distinct resources fetched.
  size_t missing_resources = 0;  // SRC-style references that answered != 2xx.

  size_t TotalBytes() const { return html_bytes + resource_bytes; }

  // Estimated download seconds at `bits_per_second`, with `per_request_s`
  // connection overhead per HTTP request (1 for the page + one per
  // resource). 1990s modems had no pipelining.
  double SecondsAt(std::uint64_t bits_per_second, double per_request_s = 0.3) const;
};

// One row of the classic modem table.
struct ModemEstimate {
  std::string label;  // "14.4k"
  std::uint64_t bits_per_second = 0;
  double seconds = 0;
};

// Measures the weight of an already-checked page: `report` supplies the
// HTML size (via lines/links) — pass the body explicitly — and the SRC-style
// resource references, which are fetched through `fetcher` to size them.
// Each distinct resource is fetched once.
PageWeight MeasurePageWeight(std::string_view html, const LintReport& report,
                             const Url& page_url, UrlFetcher& fetcher);

// The standard report rows: 14.4k, 28.8k, 56k modems plus 128k ISDN.
std::vector<ModemEstimate> EstimateDownloadTimes(const PageWeight& weight);

}  // namespace weblint

#endif  // WEBLINT_ROBOT_PAGE_WEIGHT_H_
