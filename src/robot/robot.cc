#include "robot/robot.h"

#include <condition_variable>
#include <memory>
#include <mutex>

#include "html/tokenizer.h"
#include "net/async_fetcher.h"
#include "util/strings.h"

namespace weblint {

namespace {

struct LinkSource {
  std::string_view element;
  std::string_view attribute;
  bool resource;
};
constexpr LinkSource kLinkSources[] = {
    {"a", "href", false},     {"area", "href", false},  {"link", "href", false},
    {"frame", "src", false},  {"iframe", "src", false}, {"img", "src", true},
    {"script", "src", true},  {"embed", "src", true},   {"body", "background", true},
    {"input", "src", true},   {"object", "data", true}, {"bgsound", "src", true},
};

// URL key for the visited set: no fragment, default path.
std::string VisitKey(const Url& url) {
  Url key = url;
  key.StripFragment();
  if (key.path.empty()) {
    key.path = "/";
  }
  return key.Serialize();
}

bool IsHtmlResponse(const HttpResponse& response) {
  const std::string_view type = response.Header("content-type");
  return type.empty() || IContains(type, "html");
}

}  // namespace

std::vector<std::string> ExtractLinks(std::string_view html, bool include_resources) {
  std::vector<std::string> links;
  Tokenizer tokenizer(html);
  Token token;
  while (tokenizer.Next(&token)) {
    if (token.kind != TokenKind::kStartTag) {
      continue;
    }
    for (const LinkSource& source : kLinkSources) {
      if (!IEquals(token.name, source.element)) {
        continue;
      }
      if (source.resource && !include_resources) {
        continue;
      }
      for (const Attribute& attr : token.attributes) {
        if (IEquals(attr.name, source.attribute) && attr.has_value && !attr.value.empty() &&
            !attr.unterminated_quote) {
          links.push_back(attr.value);
        }
      }
    }
  }
  return links;
}

const RobotsTxt& Robot::RobotsFor(const Url& url) {
  const std::string authority = url.Authority();
  const auto it = robots_cache_.find(authority);
  if (it != robots_cache_.end()) {
    return it->second;
  }
  Url robots_url;
  robots_url.scheme = url.scheme;
  robots_url.has_authority = true;
  robots_url.host = url.host;
  robots_url.port = url.port;
  robots_url.path = "/robots.txt";
  // Policy-bounded like every other crawl request: a host whose robots.txt
  // stalls costs one degraded fetch, not the crawl. A missing or degraded
  // robots.txt means "no restrictions".
  const HttpResponse response =
      robust_ != nullptr ? robust_->Get(robots_url) : fetcher_.Get(robots_url);
  RobotsTxt robots;
  if (response.ok()) {
    robots = RobotsTxt::Parse(response.body, options_.agent);
  }
  return robots_cache_.emplace(authority, std::move(robots)).first->second;
}

bool Robot::ShouldVisit(const Url& url, const Url& start, CrawlStats* stats) {
  if (!url.scheme.empty() && url.scheme != "http" && url.scheme != "https" &&
      url.scheme != "file") {
    return false;  // mailto:, javascript:, news: ...
  }
  if (options_.stay_on_host && !IEquals(url.host, start.host)) {
    if (stats != nullptr) {
      ++stats->skipped_offsite;
    }
    return false;
  }
  if (options_.honor_robots_txt && !RobotsFor(url).Allows(url.path)) {
    if (stats != nullptr) {
      ++stats->skipped_robots;
    }
    return false;
  }
  return true;
}

CrawlStats Robot::Crawl(const Url& start, const PageHandler& handler) {
  return Crawl(start, handler, FailureHandler());
}

CrawlStats Robot::Crawl(const Url& start, const PageHandler& handler,
                        const FailureHandler& on_failure) {
  visited_.clear();
  redirects_seen_.clear();
  failures_seen_.clear();

  // Every wire request this crawl makes goes through the policy layer:
  // deadlines, bounded retries with deterministic backoff, redirect-hop
  // and size caps, classified outcomes.
  FetchPolicy policy = options_.fetch_policy;
  policy.max_redirects = options_.max_redirects < 0
                             ? 0
                             : static_cast<std::uint32_t>(options_.max_redirects);

  if (options_.prefetch > 0) {
    // An async-capable fetcher already applies its own policy (retries,
    // deadlines, redirects) inside its loop, so it is not re-wrapped —
    // robots.txt requests reach it through fetcher_.Get. A plain blocking
    // fetcher is wrapped as usual and issued inline.
    if (auto* async = dynamic_cast<AsyncUrlFetcher*>(&fetcher_)) {
      robust_ = nullptr;
      return CrawlPipelined(start, handler, on_failure, async, nullptr);
    }
    RobustFetcher robust(fetcher_, policy, options_.clock, options_.metrics);
    robust_ = &robust;
    CrawlStats stats = CrawlPipelined(start, handler, on_failure, nullptr, &robust);
    stats.fetch = robust.stats();
    robust_ = nullptr;
    return stats;
  }

  RobustFetcher robust(fetcher_, policy, options_.clock, options_.metrics);
  robust_ = &robust;
  CrawlStats stats = CrawlSequential(start, handler, on_failure, robust);
  stats.fetch = robust.stats();
  robust_ = nullptr;
  return stats;
}

CrawlStats Robot::CrawlSequential(const Url& start, const PageHandler& handler,
                                  const FailureHandler& on_failure, RobustFetcher& robust) {
  CrawlStats stats;
  std::deque<Url> frontier;
  frontier.push_back(start);

  while (!frontier.empty() && stats.pages_fetched < options_.max_pages) {
    const Url url = frontier.front();
    frontier.pop_front();

    const std::string key = VisitKey(url);
    if (!visited_.insert(key).second) {
      ++stats.skipped_duplicate;
      continue;
    }
    if (!ShouldVisit(url, start, &stats)) {
      continue;
    }

    FetchResult fetched = robust.FetchPage(url);
    if (!fetched.ok()) {
      // Transport-level degradation: the page never answered usably. One
      // structured per-page outcome; the crawl moves on.
      ++stats.pages_degraded;
      failures_seen_.emplace(key, 0);
      if (on_failure) {
        on_failure(url, fetched);
      }
      continue;
    }
    const HttpResponse& response = fetched.response;
    const Url& final_url = fetched.final_url;
    if (!response.ok()) {
      ++stats.fetch_failures;
      failures_seen_.emplace(key, response.status);
      continue;
    }
    const std::string final_key = VisitKey(final_url);
    if (final_key != key) {
      redirects_seen_.emplace(key, final_key);
      if (!visited_.insert(final_key).second) {
        // The final target was already processed under its own URL.
        continue;
      }
    }
    ++stats.pages_fetched;

    if (handler) {
      handler(final_url, response);
    }
    if (!IsHtmlResponse(response)) {
      continue;
    }
    for (const std::string& link : ExtractLinks(response.body)) {
      const Url resolved = ResolveUrl(final_url, link);
      if (resolved.IsOpaque()) {
        continue;
      }
      if (!visited_.contains(VisitKey(resolved))) {
        frontier.push_back(resolved);
      }
    }
  }
  return stats;
}

CrawlStats Robot::CrawlPipelined(const Url& start, const PageHandler& handler,
                                 const FailureHandler& on_failure, AsyncUrlFetcher* async,
                                 RobustFetcher* sync) {
  CrawlStats stats;
  const FetchStats async_before = async != nullptr ? async->SnapshotStats() : FetchStats{};

  // Completion slots are shared with the fetcher's loop thread; the sync
  // block is shared_ptr-held so callbacks of fetches abandoned at max_pages
  // can land after this frame is gone.
  struct SyncBlock {
    std::mutex mu;
    std::condition_variable cv;
  };
  struct Slot {
    bool ready = false;
    FetchResult result;
  };
  struct WindowItem {
    Url url;
    std::string key;
    bool fetched = false;  // false = filtered at issue time, no wire fetch.
    std::shared_ptr<Slot> slot;
  };
  auto shared = std::make_shared<SyncBlock>();

  std::deque<Url> frontier;
  frontier.push_back(start);
  std::deque<WindowItem> window;
  std::set<std::string> issued;  // Keys dequeued by the issue stage.
  size_t fetches_in_window = 0;

  // Issue stage: dequeue one frontier URL and start its fetch unless the
  // issue-order state already rules it out. Decisions here depend only on
  // `issued` and the (deterministic) robots/offsite checks — never on
  // consume progress — so the set of wire fetches is a pure function of the
  // URL sequence and the window size, not of fetch timing.
  auto issue_one = [&] {
    WindowItem item;
    item.url = frontier.front();
    frontier.pop_front();
    item.key = VisitKey(item.url);
    if (issued.insert(item.key).second && ShouldVisit(item.url, start, nullptr)) {
      item.fetched = true;
      item.slot = std::make_shared<Slot>();
      ++fetches_in_window;
      if (async != nullptr) {
        async->FetchPageAsync(item.url, [shared, slot = item.slot](FetchResult result) {
          {
            std::lock_guard<std::mutex> lock(shared->mu);
            slot->result = std::move(result);
            slot->ready = true;
          }
          shared->cv.notify_all();
        });
      } else {
        // Blocking fetcher: the issue completes inline, so the wire sees
        // exactly the sequential request order whatever the window size.
        item.slot->result = sync->FetchPage(item.url);
        item.slot->ready = true;
      }
    }
    window.push_back(std::move(item));
  };

  // Consume stage: the sequential loop body, verbatim, applied in issue
  // order. Everything the crawl publishes (visited_, maps, counters,
  // handler calls) is written only here.
  auto consume_one = [&] {
    WindowItem item = std::move(window.front());
    window.pop_front();
    if (item.fetched) {
      --fetches_in_window;
    }
    const std::string& key = item.key;
    if (!visited_.insert(key).second) {
      ++stats.skipped_duplicate;
      return;
    }
    if (!ShouldVisit(item.url, start, &stats)) {
      return;
    }
    FetchResult fetched = std::move(item.slot->result);
    if (!fetched.ok()) {
      ++stats.pages_degraded;
      failures_seen_.emplace(key, 0);
      if (on_failure) {
        on_failure(item.url, fetched);
      }
      return;
    }
    const HttpResponse& response = fetched.response;
    const Url& final_url = fetched.final_url;
    if (!response.ok()) {
      ++stats.fetch_failures;
      failures_seen_.emplace(key, response.status);
      return;
    }
    const std::string final_key = VisitKey(final_url);
    if (final_key != key) {
      redirects_seen_.emplace(key, final_key);
      if (!visited_.insert(final_key).second) {
        return;  // The final target was already processed under its own URL.
      }
    }
    ++stats.pages_fetched;
    if (handler) {
      handler(final_url, response);
    }
    if (!IsHtmlResponse(response)) {
      return;
    }
    for (const std::string& link : ExtractLinks(response.body)) {
      const Url resolved = ResolveUrl(final_url, link);
      if (resolved.IsOpaque()) {
        continue;
      }
      if (!visited_.contains(VisitKey(resolved))) {
        frontier.push_back(resolved);
      }
    }
  };

  // Driver: consume a ready head eagerly, otherwise keep the window full,
  // otherwise wait for the head's fetch. Eager consumption is what makes
  // the inline (blocking-fetcher) mode replicate the sequential crawl bit
  // for bit: each issue's result is processed before the next issue.
  while (stats.pages_fetched < options_.max_pages) {
    if (!window.empty()) {
      bool head_ready = !window.front().fetched;
      if (!head_ready) {
        std::lock_guard<std::mutex> lock(shared->mu);
        head_ready = window.front().slot->ready;
      }
      if (head_ready) {
        consume_one();
        continue;
      }
    }
    if (!frontier.empty() && fetches_in_window < options_.prefetch) {
      issue_one();
      continue;
    }
    if (window.empty()) {
      break;  // Frontier exhausted too (else issue_one would have run).
    }
    std::unique_lock<std::mutex> lock(shared->mu);
    const std::shared_ptr<Slot>& head = window.front().slot;
    shared->cv.wait(lock, [&] { return head->ready; });
  }
  // Fetches still in the window when max_pages hit are abandoned; their
  // results land in orphaned slots and are never published.

  if (async != nullptr) {
    const FetchStats after = async->SnapshotStats();
    stats.fetch.requests = after.requests - async_before.requests;
    stats.fetch.attempts = after.attempts - async_before.attempts;
    stats.fetch.retries = after.retries - async_before.retries;
    stats.fetch.redirects_followed = after.redirects_followed - async_before.redirects_followed;
    stats.fetch.bytes_fetched = after.bytes_fetched - async_before.bytes_fetched;
    for (size_t i = 0; i < stats.fetch.by_outcome.size(); ++i) {
      stats.fetch.by_outcome[i] = after.by_outcome[i] - async_before.by_outcome[i];
    }
  }
  return stats;
}

}  // namespace weblint
