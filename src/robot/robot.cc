#include "robot/robot.h"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>

#include "html/tokenizer.h"
#include "net/async_fetcher.h"
#include "telemetry/trace_context.h"
#include "util/digest.h"
#include "util/strings.h"

namespace weblint {

namespace {

struct LinkSource {
  std::string_view element;
  std::string_view attribute;
  bool resource;
};
constexpr LinkSource kLinkSources[] = {
    {"a", "href", false},     {"area", "href", false},  {"link", "href", false},
    {"frame", "src", false},  {"iframe", "src", false}, {"img", "src", true},
    {"script", "src", true},  {"embed", "src", true},   {"body", "background", true},
    {"input", "src", true},   {"object", "data", true}, {"bgsound", "src", true},
};

// URL key for the visited set: no fragment, default path.
std::string VisitKey(const Url& url) {
  Url key = url;
  key.StripFragment();
  if (key.path.empty()) {
    key.path = "/";
  }
  return key.Serialize();
}

bool IsHtmlResponse(const HttpResponse& response) {
  const std::string_view type = response.Header("content-type");
  return type.empty() || IContains(type, "html");
}

}  // namespace

std::vector<std::string> ExtractLinks(std::string_view html, bool include_resources) {
  std::vector<std::string> links;
  Tokenizer tokenizer(html);
  Token token;
  while (tokenizer.Next(&token)) {
    if (token.kind != TokenKind::kStartTag) {
      continue;
    }
    for (const LinkSource& source : kLinkSources) {
      if (!IEquals(token.name, source.element)) {
        continue;
      }
      if (source.resource && !include_resources) {
        continue;
      }
      for (const Attribute& attr : token.attributes) {
        if (IEquals(attr.name, source.attribute) && attr.has_value && !attr.value.empty() &&
            !attr.unterminated_quote) {
          links.push_back(std::string(attr.value));
        }
      }
    }
  }
  return links;
}

const RobotsTxt& Robot::RobotsFor(const Url& url) {
  if (robots_ == nullptr) {
    RobotsCache::Options cache_options;
    cache_options.clock = options_.clock;
    cache_options.metrics = options_.metrics;
    robots_ = std::make_unique<RobotsCache>(cache_options);
  }
  return robots_->Get(
      url.Authority(), options_.agent,
      [&](const std::string&) -> std::optional<std::string> {
        Url robots_url;
        robots_url.scheme = url.scheme;
        robots_url.has_authority = true;
        robots_url.host = url.host;
        robots_url.port = url.port;
        robots_url.path = "/robots.txt";
        // Policy-bounded like every other crawl request: a host whose
        // robots.txt stalls costs one degraded fetch, not the crawl. A
        // missing or degraded robots.txt means "no restrictions" — the
        // cache remembers that as a short-TTL negative entry instead of
        // re-probing on every page.
        const HttpResponse response =
            robust_ != nullptr ? robust_->Get(robots_url) : fetcher_.Get(robots_url);
        if (!response.ok()) {
          return std::nullopt;
        }
        return response.body;
      });
}

bool Robot::ShouldVisit(const Url& url, const Url& start, CrawlStats* stats) {
  if (!url.scheme.empty() && url.scheme != "http" && url.scheme != "https" &&
      url.scheme != "file") {
    return false;  // mailto:, javascript:, news: ...
  }
  if (options_.stay_on_host && !IEquals(url.host, start.host)) {
    if (stats != nullptr) {
      ++stats->skipped_offsite;
    }
    return false;
  }
  if (options_.honor_robots_txt && !RobotsFor(url).Allows(url.path)) {
    if (stats != nullptr) {
      ++stats->skipped_robots;
    }
    return false;
  }
  return true;
}

CrawlStats Robot::Crawl(const Url& start, const PageHandler& handler) {
  return Crawl(start, handler, FailureHandler());
}

CrawlStats Robot::Crawl(const Url& start, const PageHandler& handler,
                        const FailureHandler& on_failure) {
  visited_.clear();
  redirects_seen_.clear();
  failures_seen_.clear();

  // Every wire request this crawl makes goes through the policy layer:
  // deadlines, bounded retries with deterministic backoff, redirect-hop
  // and size caps, classified outcomes.
  FetchPolicy policy = options_.fetch_policy;
  policy.max_redirects = options_.max_redirects < 0
                             ? 0
                             : static_cast<std::uint32_t>(options_.max_redirects);

  if (options_.prefetch > 0) {
    // An async-capable fetcher already applies its own policy (retries,
    // deadlines, redirects) inside its loop, so it is not re-wrapped —
    // robots.txt requests reach it through fetcher_.Get. A plain blocking
    // fetcher is wrapped as usual and issued inline.
    if (auto* async = dynamic_cast<AsyncUrlFetcher*>(&fetcher_)) {
      robust_ = nullptr;
      return CrawlPipelined(start, handler, on_failure, async, nullptr);
    }
    RobustFetcher robust(fetcher_, policy, options_.clock, options_.metrics);
    robust_ = &robust;
    CrawlStats stats = CrawlPipelined(start, handler, on_failure, nullptr, &robust);
    stats.fetch = robust.stats();
    robust_ = nullptr;
    return stats;
  }

  RobustFetcher robust(fetcher_, policy, options_.clock, options_.metrics);
  robust_ = &robust;
  CrawlStats stats = CrawlSequential(start, handler, on_failure, robust);
  stats.fetch = robust.stats();
  robust_ = nullptr;
  return stats;
}

CrawlStats Robot::Crawl(const Url& start, Frontier& frontier, const FrontierHooks& hooks) {
  visited_.clear();
  redirects_seen_.clear();
  failures_seen_.clear();

  FetchPolicy policy = options_.fetch_policy;
  policy.max_redirects = options_.max_redirects < 0
                             ? 0
                             : static_cast<std::uint32_t>(options_.max_redirects);

  if (options_.prefetch > 0) {
    if (auto* async = dynamic_cast<AsyncUrlFetcher*>(&fetcher_)) {
      robust_ = nullptr;
      return CrawlFrontier(start, frontier, hooks, async, nullptr);
    }
  }
  RobustFetcher robust(fetcher_, policy, options_.clock, options_.metrics);
  robust_ = &robust;
  CrawlStats stats = CrawlFrontier(start, frontier, hooks, nullptr, &robust);
  stats.fetch = robust.stats();
  robust_ = nullptr;
  return stats;
}

CrawlStats Robot::CrawlFrontier(const Url& start, Frontier& frontier,
                                const FrontierHooks& hooks, AsyncUrlFetcher* async,
                                RobustFetcher* sync) {
  CrawlStats stats;
  Clock* clock = options_.clock != nullptr ? options_.clock : Clock::System();
  const FetchStats async_before = async != nullptr ? async->SnapshotStats() : FetchStats{};

  struct SyncBlock {
    std::mutex mu;
    std::condition_variable cv;
    size_t completions = 0;
  };
  struct Slot {
    bool fetched = false;   // A wire fetch was issued for this seq.
    bool ready = false;     // Result (or a skip) is available.
    bool skipped = false;   // robots.txt refused the path at issue time.
    bool observed = false;  // Driver saw the completion; host slot released.
    std::uint64_t trace_id = 0;  // Begun at issue, adopted+ended at consume.
    FetchResult result;
  };
  auto shared = std::make_shared<SyncBlock>();
  std::map<std::uint64_t, std::shared_ptr<Slot>> window;  // Issued, unconsumed.
  size_t fetches_in_window = 0;
  size_t fetches_outstanding = 0;
  size_t completions_seen = 0;

  auto fetch_blocking = [&](const Url& url) -> FetchResult {
    if (sync != nullptr) {
      return sync->FetchPage(url);
    }
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    FetchResult out;
    async->FetchPageAsync(url, [&](FetchResult result) {
      {
        std::lock_guard<std::mutex> lock(mu);
        out = std::move(result);
        done = true;
      }
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return out;
  };

  auto enqueue_links = [&](const Url& base, std::string_view body) {
    for (const std::string& link : ExtractLinks(body)) {
      const Url resolved = ResolveUrl(base, link);
      if (resolved.IsOpaque() ||
          (!resolved.scheme.empty() && resolved.scheme != "http" &&
           resolved.scheme != "https" && resolved.scheme != "file")) {
        continue;
      }
      if (options_.stay_on_host && !IEquals(resolved.host, start.host)) {
        frontier.CountOffsite();
        continue;
      }
      frontier.Enqueue(VisitKey(resolved));
    }
  };

  // One fetched-OK page, shared by the live and redo paths: redirect
  // collapse, content-digest dedupe, then the page or alias hook plus the
  // journal completion record.
  auto publish_page = [&](std::uint64_t seq, const std::string& key,
                          const FetchResult& fetched, bool redo) {
    const HttpResponse& response = fetched.response;
    const Url& final_url = fetched.final_url;
    const std::string final_key = VisitKey(final_url);
    if (final_key != key) {
      redirects_seen_.emplace(key, final_key);
      if (!visited_.insert(final_key).second) {
        ++stats.skipped_duplicate;
        frontier.CompleteSkip(seq, FrontierSkip::kDuplicateTarget, final_key);
        return;
      }
    }
    ++stats.pages_fetched;
    const std::uint64_t digest = HashBytesBulk(response.body);
    const std::string display = final_url.Serialize();
    if (!redo && IsHtmlResponse(response)) {
      // Links journal before the page's completion record: a crash between
      // the two re-fetches the page on resume but never loses its links.
      enqueue_links(final_url, response.body);
    }
    if (const auto owner = frontier.AliasOwner(digest, seq); owner.has_value()) {
      if (hooks.on_alias) {
        hooks.on_alias(final_url, *owner);
      }
      frontier.CompleteAlias(seq, display, *owner, digest);
    } else {
      if (hooks.on_page) {
        hooks.on_page(seq, final_url, response);
      }
      frontier.CompletePage(seq, display, digest);
    }
  };

  // Consume one seq — strict seq order; the only writer of visited_, the
  // maps, the stats, and the hooks, exactly like the pipelined consume
  // stage, so output is independent of fetch issue order.
  auto consume = [&](std::uint64_t seq, Slot& slot) {
    const std::string key = frontier.KeyFor(seq);
    // Adopt the trace issue() began (0 for robots skips: no fetch, no trace).
    RequestTrace trace(TraceRecorder::Current(), slot.trace_id);
    visited_.insert(key);
    if (slot.skipped) {
      ++stats.skipped_robots;
      frontier.CompleteSkip(seq, FrontierSkip::kRobots);
      frontier.Flush().ok();
      return;
    }
    FetchResult fetched = std::move(slot.result);
    if (!fetched.ok()) {
      trace.set_error(true);
      ++stats.pages_degraded;
      failures_seen_.emplace(key, 0);
      if (hooks.on_failure) {
        hooks.on_failure(ParseUrl(key), fetched);
      }
      frontier.CompleteDegraded(seq, static_cast<std::uint32_t>(fetched.outcome),
                                fetched.detail);
      frontier.Flush().ok();
      return;
    }
    if (!fetched.response.ok()) {
      trace.set_error(true);
      ++stats.fetch_failures;
      failures_seen_.emplace(key, fetched.response.status);
      frontier.CompleteHttpFail(seq, fetched.response.status);
      frontier.Flush().ok();
      return;
    }
    publish_page(seq, key, fetched, /*redo=*/false);
    frontier.Flush().ok();
  };

  // Seed a fresh frontier; a resumed one already holds the start URL.
  if (frontier.total_enqueued() == 0) {
    frontier.Enqueue(VisitKey(start));
  }

  // ---- Replay phase: re-publish the recovered prefix in seq order. ----
  std::uint64_t next_consume = 0;
  for (const RecoveredOutcome& outcome : frontier.recovered()) {
    const std::uint64_t seq = outcome.record.seq;
    next_consume = seq + 1;
    const std::string& key = outcome.key;
    visited_.insert(key);
    switch (outcome.record.type) {
      case JournalRecordType::kSkip:
        if (outcome.record.status == static_cast<std::uint32_t>(FrontierSkip::kRobots)) {
          ++stats.skipped_robots;
        } else {
          if (!outcome.record.text.empty()) {
            redirects_seen_.emplace(key, outcome.record.text);
          }
          ++stats.skipped_duplicate;
        }
        break;
      case JournalRecordType::kHttpFail:
        ++stats.fetch_failures;
        failures_seen_.emplace(key, static_cast<int>(outcome.record.status));
        break;
      case JournalRecordType::kDegraded:
        ++stats.pages_degraded;
        failures_seen_.emplace(key, 0);
        if (hooks.on_replay) {
          hooks.on_replay(outcome);
        }
        break;
      case JournalRecordType::kAlias: {
        const std::string final_key = VisitKey(ParseUrl(outcome.record.text));
        if (final_key != key) {
          redirects_seen_.emplace(key, final_key);
          visited_.insert(final_key);
        }
        ++stats.pages_fetched;
        if (hooks.on_replay) {
          hooks.on_replay(outcome);
        }
        break;
      }
      case JournalRecordType::kPage: {
        const std::string final_key = VisitKey(ParseUrl(outcome.record.text));
        if (final_key != key) {
          redirects_seen_.emplace(key, final_key);
          visited_.insert(final_key);
        }
        if (outcome.has_payload && hooks.on_replay && hooks.on_replay(outcome)) {
          ++stats.pages_fetched;
          break;
        }
        // Redo: the journal proves the page completed but its lint payload
        // is gone (crashed before AttachPayload, or no longer
        // deserializes). Re-fetch inline at this slot — politeness still
        // applies — without re-extracting links (journaled already).
        if (const std::uint64_t wait = frontier.TouchHostForIssue(key); wait > 0) {
          frontier.NoteStall();
          clock->SleepMicros(wait);
        }
        RequestTrace trace(TraceRecorder::Current(), key);
        FetchResult fetched = fetch_blocking(ParseUrl(key));
        if (!fetched.ok()) {
          trace.set_error(true);
          ++stats.pages_degraded;
          failures_seen_.emplace(key, 0);
          if (hooks.on_failure) {
            hooks.on_failure(ParseUrl(key), fetched);
          }
          frontier.CompleteDegraded(seq, static_cast<std::uint32_t>(fetched.outcome),
                                    fetched.detail);
        } else if (!fetched.response.ok()) {
          trace.set_error(true);
          ++stats.fetch_failures;
          failures_seen_.emplace(key, fetched.response.status);
          frontier.CompleteHttpFail(seq, fetched.response.status);
        } else {
          publish_page(seq, key, fetched, /*redo=*/true);
        }
        frontier.Flush().ok();
        break;
      }
      default:
        break;
    }
  }

  // ---- Live phase: issue (claim + fetch) and consume (seq order). ----
  const size_t window_cap = std::max<size_t>(options_.prefetch, 1);

  auto observe = [&] {
    std::lock_guard<std::mutex> lock(shared->mu);
    completions_seen = shared->completions;
    for (auto& [seq, slot] : window) {
      if (slot->ready && !slot->observed) {
        slot->observed = true;
        frontier.OnFetchDone(seq);
        --fetches_outstanding;
      }
    }
  };

  auto issue = [&](const FrontierClaim& claim) {
    const Url url = ParseUrl(claim.url);
    auto slot = std::make_shared<Slot>();
    if (options_.honor_robots_txt && !RobotsFor(url).Allows(url.path)) {
      slot->skipped = true;
      slot->ready = true;
      slot->observed = true;
      frontier.OnFetchDone(claim.seq);  // No wire fetch; free the host slot.
      window.emplace(claim.seq, std::move(slot));
      return;
    }
    slot->fetched = true;
    ++fetches_in_window;
    ++fetches_outstanding;
    // The page's trace opens at fetch issue and is closed by consume().
    if (TraceRecorder* recorder = TraceRecorder::Current(); recorder != nullptr) {
      slot->trace_id = recorder->Begin(claim.url);
    }
    if (async != nullptr) {
      async->FetchPageAsync(url, [shared, slot](FetchResult result) {
        TraceContextScope trace_scope(slot->trace_id);
        {
          std::lock_guard<std::mutex> lock(shared->mu);
          slot->result = std::move(result);
          slot->ready = true;
          ++shared->completions;
        }
        shared->cv.notify_all();
      });
    } else {
      // Blocking fetcher: the issue completes inline, so the wire sees the
      // claim order directly.
      {
        TraceContextScope trace_scope(slot->trace_id);
        slot->result = sync->FetchPage(url);
      }
      std::lock_guard<std::mutex> lock(shared->mu);
      slot->ready = true;
      ++shared->completions;
    }
    window.emplace(claim.seq, std::move(slot));
  };

  while (stats.pages_fetched < options_.max_pages &&
         next_consume < frontier.total_enqueued()) {
    observe();
    const auto head = window.find(next_consume);
    const bool head_issued = head != window.end();
    if (head_issued && head->second->observed) {
      std::shared_ptr<Slot> slot = head->second;
      window.erase(next_consume);
      if (slot->fetched) {
        --fetches_in_window;
      }
      consume(next_consume, *slot);
      ++next_consume;
      continue;
    }
    const bool window_full = fetches_in_window >= window_cap;
    std::optional<FrontierClaim> claim;
    if (!window_full) {
      claim = frontier.ClaimNextReady(/*only_head=*/false);
    } else if (!head_issued) {
      // The consume head is exempt from the window cap — without this a
      // full window of later seqs would deadlock against in-order consume.
      claim = frontier.ClaimNextReady(/*only_head=*/true);
    }
    if (claim.has_value()) {
      issue(*claim);
      continue;
    }
    if (fetches_outstanding > 0) {
      // Wake on any completion; politeness readiness bounds the wait when
      // the head is unissued and only time stands in the way.
      const std::optional<std::uint64_t> wait_us =
          head_issued ? std::nullopt : frontier.MicrosUntilNextReady(window_full);
      std::unique_lock<std::mutex> lock(shared->mu);
      if (shared->completions != completions_seen) {
        continue;  // A result landed since observe(); go collect it.
      }
      if (wait_us.has_value()) {
        frontier.NoteStall();
        shared->cv.wait_for(lock,
                            std::chrono::microseconds(std::max<std::uint64_t>(*wait_us, 1)),
                            [&] { return shared->completions != completions_seen; });
      } else {
        shared->cv.wait(lock, [&] { return shared->completions != completions_seen; });
      }
      continue;
    }
    // Nothing in flight: blocked purely on a politeness delay. Sleep it off
    // on the injected clock (FakeClock tests advance instantly).
    if (const std::optional<std::uint64_t> wait_us =
            frontier.MicrosUntilNextReady(window_full && !head_issued);
        wait_us.has_value()) {
      frontier.NoteStall();
      clock->SleepMicros(std::max<std::uint64_t>(*wait_us, 1));
      continue;
    }
    break;  // Defensive: nothing outstanding and nothing can become ready.
  }
  // Fetches still in the window when max_pages hit are abandoned; their
  // seqs stay pending in the journal and a --resume picks them back up.

  stats.skipped_duplicate += frontier.duplicate_count();
  stats.skipped_offsite += frontier.offsite_count();
  if (async != nullptr) {
    const FetchStats after = async->SnapshotStats();
    stats.fetch.requests = after.requests - async_before.requests;
    stats.fetch.attempts = after.attempts - async_before.attempts;
    stats.fetch.retries = after.retries - async_before.retries;
    stats.fetch.redirects_followed = after.redirects_followed - async_before.redirects_followed;
    stats.fetch.bytes_fetched = after.bytes_fetched - async_before.bytes_fetched;
    for (size_t i = 0; i < stats.fetch.by_outcome.size(); ++i) {
      stats.fetch.by_outcome[i] = after.by_outcome[i] - async_before.by_outcome[i];
    }
  }
  return stats;
}

CrawlStats Robot::CrawlSequential(const Url& start, const PageHandler& handler,
                                  const FailureHandler& on_failure, RobustFetcher& robust) {
  CrawlStats stats;
  std::deque<Url> frontier;
  frontier.push_back(start);

  while (!frontier.empty() && stats.pages_fetched < options_.max_pages) {
    const Url url = frontier.front();
    frontier.pop_front();

    const std::string key = VisitKey(url);
    if (!visited_.insert(key).second) {
      ++stats.skipped_duplicate;
      continue;
    }
    if (!ShouldVisit(url, start, &stats)) {
      continue;
    }

    // One trace per crawled page: the fetch's and the handler's spans (and
    // the lint workers', via the runner's scope capture) correlate under it.
    RequestTrace trace(TraceRecorder::Current(), key);
    FetchResult fetched = robust.FetchPage(url);
    if (!fetched.ok()) {
      // Transport-level degradation: the page never answered usably. One
      // structured per-page outcome; the crawl moves on.
      trace.set_error(true);
      ++stats.pages_degraded;
      failures_seen_.emplace(key, 0);
      if (on_failure) {
        on_failure(url, fetched);
      }
      continue;
    }
    const HttpResponse& response = fetched.response;
    const Url& final_url = fetched.final_url;
    if (!response.ok()) {
      trace.set_error(true);
      ++stats.fetch_failures;
      failures_seen_.emplace(key, response.status);
      continue;
    }
    const std::string final_key = VisitKey(final_url);
    if (final_key != key) {
      redirects_seen_.emplace(key, final_key);
      if (!visited_.insert(final_key).second) {
        // The final target was already processed under its own URL.
        continue;
      }
    }
    ++stats.pages_fetched;

    if (handler) {
      handler(final_url, response);
    }
    if (!IsHtmlResponse(response)) {
      continue;
    }
    for (const std::string& link : ExtractLinks(response.body)) {
      const Url resolved = ResolveUrl(final_url, link);
      if (resolved.IsOpaque()) {
        continue;
      }
      if (!visited_.contains(VisitKey(resolved))) {
        frontier.push_back(resolved);
      }
    }
  }
  return stats;
}

CrawlStats Robot::CrawlPipelined(const Url& start, const PageHandler& handler,
                                 const FailureHandler& on_failure, AsyncUrlFetcher* async,
                                 RobustFetcher* sync) {
  CrawlStats stats;
  const FetchStats async_before = async != nullptr ? async->SnapshotStats() : FetchStats{};

  // Completion slots are shared with the fetcher's loop thread; the sync
  // block is shared_ptr-held so callbacks of fetches abandoned at max_pages
  // can land after this frame is gone.
  struct SyncBlock {
    std::mutex mu;
    std::condition_variable cv;
  };
  struct Slot {
    bool ready = false;
    FetchResult result;
  };
  struct WindowItem {
    Url url;
    std::string key;
    bool fetched = false;  // false = filtered at issue time, no wire fetch.
    std::uint64_t trace_id = 0;  // Begun at issue, adopted+ended at consume.
    std::shared_ptr<Slot> slot;
  };
  auto shared = std::make_shared<SyncBlock>();

  std::deque<Url> frontier;
  frontier.push_back(start);
  std::deque<WindowItem> window;
  std::set<std::string> issued;  // Keys dequeued by the issue stage.
  size_t fetches_in_window = 0;

  // Issue stage: dequeue one frontier URL and start its fetch unless the
  // issue-order state already rules it out. Decisions here depend only on
  // `issued` and the (deterministic) robots/offsite checks — never on
  // consume progress — so the set of wire fetches is a pure function of the
  // URL sequence and the window size, not of fetch timing.
  auto issue_one = [&] {
    WindowItem item;
    item.url = frontier.front();
    frontier.pop_front();
    item.key = VisitKey(item.url);
    if (issued.insert(item.key).second && ShouldVisit(item.url, start, nullptr)) {
      item.fetched = true;
      item.slot = std::make_shared<Slot>();
      ++fetches_in_window;
      // The page's trace opens when its fetch is issued (fetch latency is
      // part of the page's story) and is adopted + closed by consume_one.
      TraceRecorder* recorder = TraceRecorder::Current();
      if (recorder != nullptr) {
        item.trace_id = recorder->Begin(item.key);
      }
      if (async != nullptr) {
        const std::uint64_t trace_id = item.trace_id;
        async->FetchPageAsync(
            item.url, [shared, slot = item.slot, trace_id](FetchResult result) {
              TraceContextScope trace_scope(trace_id);
              {
                std::lock_guard<std::mutex> lock(shared->mu);
                slot->result = std::move(result);
                slot->ready = true;
              }
              shared->cv.notify_all();
            });
      } else {
        // Blocking fetcher: the issue completes inline, so the wire sees
        // exactly the sequential request order whatever the window size.
        TraceContextScope trace_scope(item.trace_id);
        item.slot->result = sync->FetchPage(item.url);
        item.slot->ready = true;
      }
    }
    window.push_back(std::move(item));
  };

  // Consume stage: the sequential loop body, verbatim, applied in issue
  // order. Everything the crawl publishes (visited_, maps, counters,
  // handler calls) is written only here.
  auto consume_one = [&] {
    WindowItem item = std::move(window.front());
    window.pop_front();
    if (item.fetched) {
      --fetches_in_window;
    }
    const std::string& key = item.key;
    // Adopt the trace the issue stage began; ends (and samples) on return.
    RequestTrace trace(TraceRecorder::Current(), item.trace_id);
    if (!visited_.insert(key).second) {
      ++stats.skipped_duplicate;
      return;
    }
    if (!ShouldVisit(item.url, start, &stats)) {
      return;
    }
    FetchResult fetched = std::move(item.slot->result);
    if (!fetched.ok()) {
      trace.set_error(true);
      ++stats.pages_degraded;
      failures_seen_.emplace(key, 0);
      if (on_failure) {
        on_failure(item.url, fetched);
      }
      return;
    }
    const HttpResponse& response = fetched.response;
    const Url& final_url = fetched.final_url;
    if (!response.ok()) {
      trace.set_error(true);
      ++stats.fetch_failures;
      failures_seen_.emplace(key, response.status);
      return;
    }
    const std::string final_key = VisitKey(final_url);
    if (final_key != key) {
      redirects_seen_.emplace(key, final_key);
      if (!visited_.insert(final_key).second) {
        return;  // The final target was already processed under its own URL.
      }
    }
    ++stats.pages_fetched;
    if (handler) {
      handler(final_url, response);
    }
    if (!IsHtmlResponse(response)) {
      return;
    }
    for (const std::string& link : ExtractLinks(response.body)) {
      const Url resolved = ResolveUrl(final_url, link);
      if (resolved.IsOpaque()) {
        continue;
      }
      if (!visited_.contains(VisitKey(resolved))) {
        frontier.push_back(resolved);
      }
    }
  };

  // Driver: consume a ready head eagerly, otherwise keep the window full,
  // otherwise wait for the head's fetch. Eager consumption is what makes
  // the inline (blocking-fetcher) mode replicate the sequential crawl bit
  // for bit: each issue's result is processed before the next issue.
  while (stats.pages_fetched < options_.max_pages) {
    if (!window.empty()) {
      bool head_ready = !window.front().fetched;
      if (!head_ready) {
        std::lock_guard<std::mutex> lock(shared->mu);
        head_ready = window.front().slot->ready;
      }
      if (head_ready) {
        consume_one();
        continue;
      }
    }
    if (!frontier.empty() && fetches_in_window < options_.prefetch) {
      issue_one();
      continue;
    }
    if (window.empty()) {
      break;  // Frontier exhausted too (else issue_one would have run).
    }
    std::unique_lock<std::mutex> lock(shared->mu);
    const std::shared_ptr<Slot>& head = window.front().slot;
    shared->cv.wait(lock, [&] { return head->ready; });
  }
  // Fetches still in the window when max_pages hit are abandoned; their
  // results land in orphaned slots and are never published.

  if (async != nullptr) {
    const FetchStats after = async->SnapshotStats();
    stats.fetch.requests = after.requests - async_before.requests;
    stats.fetch.attempts = after.attempts - async_before.attempts;
    stats.fetch.retries = after.retries - async_before.retries;
    stats.fetch.redirects_followed = after.redirects_followed - async_before.redirects_followed;
    stats.fetch.bytes_fetched = after.bytes_fetched - async_before.bytes_fetched;
    for (size_t i = 0; i < stats.fetch.by_outcome.size(); ++i) {
      stats.fetch.by_outcome[i] = after.by_outcome[i] - async_before.by_outcome[i];
    }
  }
  return stats;
}

}  // namespace weblint
