#include "robot/robot.h"

#include "html/tokenizer.h"
#include "util/strings.h"

namespace weblint {

namespace {

struct LinkSource {
  std::string_view element;
  std::string_view attribute;
  bool resource;
};
constexpr LinkSource kLinkSources[] = {
    {"a", "href", false},     {"area", "href", false},  {"link", "href", false},
    {"frame", "src", false},  {"iframe", "src", false}, {"img", "src", true},
    {"script", "src", true},  {"embed", "src", true},   {"body", "background", true},
    {"input", "src", true},   {"object", "data", true}, {"bgsound", "src", true},
};

// URL key for the visited set: no fragment, default path.
std::string VisitKey(const Url& url) {
  Url key = url;
  key.StripFragment();
  if (key.path.empty()) {
    key.path = "/";
  }
  return key.Serialize();
}

bool IsHtmlResponse(const HttpResponse& response) {
  const std::string_view type = response.Header("content-type");
  return type.empty() || IContains(type, "html");
}

}  // namespace

std::vector<std::string> ExtractLinks(std::string_view html, bool include_resources) {
  std::vector<std::string> links;
  Tokenizer tokenizer(html);
  Token token;
  while (tokenizer.Next(&token)) {
    if (token.kind != TokenKind::kStartTag) {
      continue;
    }
    for (const LinkSource& source : kLinkSources) {
      if (!IEquals(token.name, source.element)) {
        continue;
      }
      if (source.resource && !include_resources) {
        continue;
      }
      for (const Attribute& attr : token.attributes) {
        if (IEquals(attr.name, source.attribute) && attr.has_value && !attr.value.empty() &&
            !attr.unterminated_quote) {
          links.push_back(attr.value);
        }
      }
    }
  }
  return links;
}

const RobotsTxt& Robot::RobotsFor(const Url& url) {
  const std::string authority = url.Authority();
  const auto it = robots_cache_.find(authority);
  if (it != robots_cache_.end()) {
    return it->second;
  }
  Url robots_url;
  robots_url.scheme = url.scheme;
  robots_url.has_authority = true;
  robots_url.host = url.host;
  robots_url.port = url.port;
  robots_url.path = "/robots.txt";
  // Policy-bounded like every other crawl request: a host whose robots.txt
  // stalls costs one degraded fetch, not the crawl. A missing or degraded
  // robots.txt means "no restrictions".
  const HttpResponse response =
      robust_ != nullptr ? robust_->Get(robots_url) : fetcher_.Get(robots_url);
  RobotsTxt robots;
  if (response.ok()) {
    robots = RobotsTxt::Parse(response.body, options_.agent);
  }
  return robots_cache_.emplace(authority, std::move(robots)).first->second;
}

bool Robot::ShouldVisit(const Url& url, const Url& start, CrawlStats* stats) {
  if (!url.scheme.empty() && url.scheme != "http" && url.scheme != "https" &&
      url.scheme != "file") {
    return false;  // mailto:, javascript:, news: ...
  }
  if (options_.stay_on_host && !IEquals(url.host, start.host)) {
    ++stats->skipped_offsite;
    return false;
  }
  if (options_.honor_robots_txt && !RobotsFor(url).Allows(url.path)) {
    ++stats->skipped_robots;
    return false;
  }
  return true;
}

CrawlStats Robot::Crawl(const Url& start, const PageHandler& handler) {
  return Crawl(start, handler, FailureHandler());
}

CrawlStats Robot::Crawl(const Url& start, const PageHandler& handler,
                        const FailureHandler& on_failure) {
  CrawlStats stats;
  visited_.clear();
  redirects_seen_.clear();
  failures_seen_.clear();

  // Every wire request this crawl makes goes through the policy layer:
  // deadlines, bounded retries with deterministic backoff, redirect-hop
  // and size caps, classified outcomes.
  FetchPolicy policy = options_.fetch_policy;
  policy.max_redirects = options_.max_redirects < 0
                             ? 0
                             : static_cast<std::uint32_t>(options_.max_redirects);
  RobustFetcher robust(fetcher_, policy, options_.clock, options_.metrics);
  robust_ = &robust;

  std::deque<Url> frontier;
  frontier.push_back(start);

  while (!frontier.empty() && stats.pages_fetched < options_.max_pages) {
    const Url url = frontier.front();
    frontier.pop_front();

    const std::string key = VisitKey(url);
    if (!visited_.insert(key).second) {
      ++stats.skipped_duplicate;
      continue;
    }
    if (!ShouldVisit(url, start, &stats)) {
      continue;
    }

    FetchResult fetched = robust.FetchPage(url);
    if (!fetched.ok()) {
      // Transport-level degradation: the page never answered usably. One
      // structured per-page outcome; the crawl moves on.
      ++stats.pages_degraded;
      failures_seen_.emplace(key, 0);
      if (on_failure) {
        on_failure(url, fetched);
      }
      continue;
    }
    const HttpResponse& response = fetched.response;
    const Url& final_url = fetched.final_url;
    if (!response.ok()) {
      ++stats.fetch_failures;
      failures_seen_.emplace(key, response.status);
      continue;
    }
    const std::string final_key = VisitKey(final_url);
    if (final_key != key) {
      redirects_seen_.emplace(key, final_key);
      if (!visited_.insert(final_key).second) {
        // The final target was already processed under its own URL.
        continue;
      }
    }
    ++stats.pages_fetched;

    if (handler) {
      handler(final_url, response);
    }
    if (!IsHtmlResponse(response)) {
      continue;
    }
    for (const std::string& link : ExtractLinks(response.body)) {
      const Url resolved = ResolveUrl(final_url, link);
      if (resolved.IsOpaque()) {
        continue;
      }
      if (!visited_.contains(VisitKey(resolved))) {
        frontier.push_back(resolved);
      }
    }
  }
  stats.fetch = robust.stats();
  robust_ = nullptr;
  return stats;
}

}  // namespace weblint
