#include "robot/poacher.h"

#include <set>

#include "core/parallel_runner.h"
#include "util/strings.h"

namespace weblint {

LintReport MakeFetchFailedReport(const Url& url, const FetchResult& result) {
  LintReport report;
  report.name = url.Serialize();
  Diagnostic diagnostic;
  diagnostic.message_id = "fetch-failed";
  diagnostic.category = Category::kError;
  diagnostic.file = report.name;
  diagnostic.message = StrFormat("unable to retrieve page: %s", result.detail);
  report.diagnostics.push_back(std::move(diagnostic));
  return report;
}

PoacherReport Poacher::Run(std::string_view start_url, Emitter* emitter) {
  PoacherReport report;
  const Url start = ParseUrl(start_url);

  // Links seen across the crawl: target -> one referencing page (first wins;
  // one report per broken target keeps the output readable).
  std::map<std::string, std::string> link_origins;

  // The crawl itself is sequential (the frontier depends on each response),
  // but linting each retrieved page is independent work: the handler hands
  // the body to the runner and the crawl moves on. The runner returns
  // reports in crawl order and streams output deterministically, so the
  // link-origin map below (first referrer wins) is crawl-order stable.
  ParallelLintRunner runner(weblint_, ParallelLintRunner::ResolveJobs(weblint_.config().jobs),
                            emitter);
  std::vector<Url> page_urls;

  Robot robot(fetcher_, options_.crawl);
  report.stats = robot.Crawl(
      start,
      [&](const Url& url, const HttpResponse& response) {
        runner.SubmitString(url.Serialize(), response.body);
        page_urls.push_back(url);
      },
      [&](const Url& url, const FetchResult& degraded) {
        // Graceful degradation: the page that never answered usably gets
        // one fetch-failed diagnostic in its crawl-order slot — output
        // stays byte-identical at every -j, and the run never aborts.
        runner.SubmitReport(MakeFetchFailedReport(url, degraded));
        page_urls.push_back(url);
      });

  for (Result<LintReport>& checked : runner.Finish()) {
    LintReport page = std::move(checked).value();  // CheckString cannot fail.
    const Url& url = page_urls[report.pages.size()];
    for (const LinkRef& link : page.links) {
      const Url resolved = ResolveUrl(url, link.url);
      if (resolved.IsOpaque() ||
          (!resolved.scheme.empty() && resolved.scheme != "http" && resolved.scheme != "https" &&
           resolved.scheme != "file")) {
        continue;
      }
      link_origins.emplace(resolved.Serialize(), url.Serialize());
    }
    report.pages.push_back(std::move(page));
  }

  // Pages the crawl itself failed to retrieve are broken links (the crawl
  // only reached them by following a link).
  for (const auto& [target, status] : robot.failures_seen()) {
    const auto origin = link_origins.find(target);
    LinkProblem problem;
    problem.page = origin != link_origins.end() ? origin->second : std::string(start_url);
    problem.target = target;
    problem.status = status;
    report.broken_links.push_back(std::move(problem));
  }

  // Redirect hops the crawl itself observed are link-fixing hints.
  for (const auto& [from, to] : robot.redirects_seen()) {
    const auto origin = link_origins.find(from);
    LinkProblem problem;
    problem.page = origin != link_origins.end() ? origin->second : std::string(start_url);
    problem.target = from;
    problem.status = 302;
    problem.fixed = to;
    report.redirected_links.push_back(std::move(problem));
  }

  if (!options_.validate_links) {
    return report;
  }

  // Validate links the crawl didn't already prove good. Pages the robot
  // fetched successfully need no HEAD request. HEAD checks run under the
  // same robustness policy as the crawl (a link to a stalled host costs one
  // bounded probe); their wire counters merge into the crawl's stats.
  FetchPolicy head_policy = options_.crawl.fetch_policy;
  head_policy.max_redirects = options_.crawl.max_redirects < 0
                                  ? 0
                                  : static_cast<std::uint32_t>(options_.crawl.max_redirects);
  RobustFetcher head_fetcher(fetcher_, head_policy, options_.crawl.clock);
  for (const auto& [target, origin] : link_origins) {
    Url url = ParseUrl(target);
    url.fragment.clear();
    if (robot.visited().contains(url.Serialize())) {
      continue;  // Crawled; a failure would already show in stats.
    }
    const HttpResponse response = head_fetcher.Head(url);
    if (response.IsRedirect()) {
      LinkProblem problem;
      problem.page = origin;
      problem.target = target;
      problem.status = response.status;
      problem.fixed = std::string(response.Header("location"));
      report.redirected_links.push_back(std::move(problem));
      continue;
    }
    if (!response.ok()) {
      LinkProblem problem;
      problem.page = origin;
      problem.target = target;
      problem.status = response.status;
      report.broken_links.push_back(std::move(problem));
    }
  }
  report.stats.fetch.MergeFrom(head_fetcher.stats());
  return report;
}

}  // namespace weblint
