#include "robot/poacher.h"

#include <cstdio>
#include <mutex>
#include <set>

#include "cache/report_serdes.h"
#include "core/parallel_runner.h"
#include "telemetry/log.h"
#include "util/clock.h"
#include "util/strings.h"

namespace weblint {

LintReport MakeFetchFailedReport(const Url& url, const FetchResult& result) {
  LintReport report;
  report.name = url.Serialize();
  Diagnostic diagnostic;
  diagnostic.message_id = "fetch-failed";
  diagnostic.category = Category::kError;
  diagnostic.file = report.name;
  diagnostic.message = StrFormat("unable to retrieve page: %s", result.detail);
  report.diagnostics.push_back(std::move(diagnostic));
  return report;
}

LintReport MakeDuplicateContentReport(const Url& url, const std::string& canonical) {
  LintReport report;
  report.name = url.Serialize();
  Diagnostic diagnostic;
  diagnostic.message_id = "duplicate-content";
  diagnostic.category = Category::kWarning;
  diagnostic.file = report.name;
  diagnostic.message =
      StrFormat("page body is byte-identical to %s; linted once", canonical);
  report.diagnostics.push_back(std::move(diagnostic));
  return report;
}

PoacherReport Poacher::Run(std::string_view start_url, Emitter* emitter) {
  PoacherReport report;
  const Url start = ParseUrl(start_url);

  // One registry covers the whole run: unless the caller wired the crawl to
  // its own registry, the crawl fetcher's wire series land next to the
  // Weblint's lint/cache series, so one scrape (or --metrics dump) sees the
  // entire pipeline.
  CrawlOptions crawl_options = options_.crawl;
  if (crawl_options.metrics == nullptr) {
    crawl_options.metrics = weblint_.metrics();
  }

  // Links seen across the crawl: target -> one referencing page (first wins;
  // one report per broken target keeps the output readable).
  std::map<std::string, std::string> link_origins;

  // The crawl itself is sequential (the frontier depends on each response),
  // but linting each retrieved page is independent work: the handler hands
  // the body to the runner and the crawl moves on. The runner returns
  // reports in crawl order and streams output deterministically, so the
  // link-origin map below (first referrer wins) is crawl-order stable.
  ParallelLintRunner runner(weblint_, ParallelLintRunner::ResolveJobs(weblint_.config().jobs),
                            emitter);
  std::vector<Url> page_urls;

  // Heartbeat state. The heartbeat samples the crawl clock (so FakeClock
  // tests control exactly when lines fire) and reads latency quantiles out
  // of the registry the runner's page histogram lands in.
  Clock* progress_clock = crawl_options.clock != nullptr ? crawl_options.clock : Clock::System();
  std::uint64_t last_beat_ms = options_.progress_interval_ms != 0
                                   ? progress_clock->NowMicros() / 1000
                                   : 0;
  size_t pages_degraded = 0;
  const auto emit_progress = [&](bool force) {
    if (options_.progress_interval_ms == 0) {
      return;
    }
    const std::uint64_t now_ms = progress_clock->NowMicros() / 1000;
    if (!force && now_ms - last_beat_ms < options_.progress_interval_ms) {
      return;
    }
    last_beat_ms = now_ms;
    HistogramSnapshot latency;
    if (weblint_.metrics() != nullptr) {
      latency = weblint_.metrics()->HistogramValues("weblint_page_lint_micros");
    }
    const std::string line =
        StrFormat("[poacher] pages=%d degraded=%d queue=%d p50_us=%d p95_us=%d",
                  page_urls.size(), pages_degraded, runner.pending(), latency.Quantile(0.5),
                  latency.Quantile(0.95));
    // The human heartbeat line keeps its exact shape (tests assert it);
    // the same sample also goes out as a structured event when a log is
    // installed, for pipelines that want the crawl's pulse as JSON.
    WEBLINT_LOG(kInfo, "crawl", "heartbeat",
                {{"pages", std::to_string(page_urls.size())},
                 {"degraded", std::to_string(pages_degraded)},
                 {"queue", std::to_string(runner.pending())},
                 {"p50_us", std::to_string(latency.Quantile(0.5))},
                 {"p95_us", std::to_string(latency.Quantile(0.95))}});
    if (options_.progress_sink) {
      options_.progress_sink(line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  };

  // Frontier mode: slot index -> frontier seq, so the report observer
  // (worker threads, completion order) can journal each finished lint
  // against the right crawl record. Function scope: workers may still fire
  // the observer any time up to runner.Finish().
  std::mutex slots_mu;
  std::map<size_t, std::uint64_t> slot_to_seq;
  size_t next_slot = 0;  // Driver-thread mirror of the runner's slot count.

  Robot robot(fetcher_, crawl_options);
  if (options_.frontier != nullptr) {
    Frontier& frontier = *options_.frontier;
    // Registered *before* any SubmitString: in serial mode the observer
    // fires inside the submit call.
    runner.SetReportObserver(
        [&slots_mu, &slot_to_seq, f = &frontier](size_t index, const LintReport& lint_report) {
          std::uint64_t seq = 0;
          {
            std::lock_guard<std::mutex> lock(slots_mu);
            const auto it = slot_to_seq.find(index);
            if (it == slot_to_seq.end()) {
              return;
            }
            seq = it->second;
          }
          f->AttachPayload(seq, SerializeLintReport(lint_report));
        });

    Robot::FrontierHooks hooks;
    hooks.on_page = [&](std::uint64_t seq, const Url& url, const HttpResponse& response) {
      {
        std::lock_guard<std::mutex> lock(slots_mu);
        slot_to_seq.emplace(next_slot, seq);
      }
      runner.SubmitString(url.Serialize(), response.body);
      ++next_slot;
      page_urls.push_back(url);
      emit_progress(false);
    };
    hooks.on_failure = [&](const Url& url, const FetchResult& degraded) {
      runner.SubmitReport(MakeFetchFailedReport(url, degraded));
      ++next_slot;
      page_urls.push_back(url);
      ++pages_degraded;
      emit_progress(false);
    };
    hooks.on_alias = [&](const Url& url, const std::string& canonical) {
      runner.SubmitReport(MakeDuplicateContentReport(url, canonical));
      ++next_slot;
      page_urls.push_back(url);
      emit_progress(false);
    };
    hooks.on_replay = [&](const RecoveredOutcome& outcome) {
      switch (outcome.record.type) {
        case JournalRecordType::kPage: {
          std::optional<LintReport> page =
              outcome.has_payload ? DeserializeLintReport(outcome.payload) : std::nullopt;
          if (!page.has_value()) {
            return false;  // Payload lost/corrupt: the robot re-fetches it.
          }
          // record.text is the final display URL (post-redirect), same as
          // the live on_page url.
          page_urls.push_back(ParseUrl(outcome.record.text));
          runner.SubmitReport(std::move(*page));
          ++next_slot;
          emit_progress(false);
          return true;
        }
        case JournalRecordType::kAlias:
          page_urls.push_back(ParseUrl(outcome.record.text));
          runner.SubmitReport(MakeDuplicateContentReport(ParseUrl(outcome.record.text),
                                                         outcome.record.text2));
          ++next_slot;
          emit_progress(false);
          return true;
        case JournalRecordType::kDegraded: {
          FetchResult degraded;
          degraded.outcome = static_cast<FetchOutcome>(outcome.record.status);
          degraded.detail = outcome.record.text;
          const Url url = ParseUrl(outcome.key);
          page_urls.push_back(url);
          runner.SubmitReport(MakeFetchFailedReport(url, degraded));
          ++next_slot;
          ++pages_degraded;
          emit_progress(false);
          return true;
        }
        default:
          return true;  // kSkip / kHttpFail replay inside the robot.
      }
    };
    report.stats = robot.Crawl(start, frontier, hooks);
  } else {
    report.stats = robot.Crawl(
        start,
        [&](const Url& url, const HttpResponse& response) {
          runner.SubmitString(url.Serialize(), response.body);
          page_urls.push_back(url);
          emit_progress(false);
        },
        [&](const Url& url, const FetchResult& degraded) {
          // Graceful degradation: the page that never answered usably gets
          // one fetch-failed diagnostic in its crawl-order slot — output
          // stays byte-identical at every -j, and the run never aborts.
          runner.SubmitReport(MakeFetchFailedReport(url, degraded));
          page_urls.push_back(url);
          ++pages_degraded;
          emit_progress(false);
        });
  }

  std::vector<Result<LintReport>> checked_pages = runner.Finish();
  emit_progress(true);  // Final settled line: queue drained, all pages timed.
  for (Result<LintReport>& checked : checked_pages) {
    LintReport page = std::move(checked).value();  // CheckString cannot fail.
    const Url& url = page_urls[report.pages.size()];
    for (const LinkRef& link : page.links) {
      const Url resolved = ResolveUrl(url, link.url);
      if (resolved.IsOpaque() ||
          (!resolved.scheme.empty() && resolved.scheme != "http" && resolved.scheme != "https" &&
           resolved.scheme != "file")) {
        continue;
      }
      link_origins.emplace(resolved.Serialize(), url.Serialize());
    }
    report.pages.push_back(std::move(page));
  }

  // Pages the crawl itself failed to retrieve are broken links (the crawl
  // only reached them by following a link).
  for (const auto& [target, status] : robot.failures_seen()) {
    const auto origin = link_origins.find(target);
    LinkProblem problem;
    problem.page = origin != link_origins.end() ? origin->second : std::string(start_url);
    problem.target = target;
    problem.status = status;
    report.broken_links.push_back(std::move(problem));
  }

  // Redirect hops the crawl itself observed are link-fixing hints.
  for (const auto& [from, to] : robot.redirects_seen()) {
    const auto origin = link_origins.find(from);
    LinkProblem problem;
    problem.page = origin != link_origins.end() ? origin->second : std::string(start_url);
    problem.target = from;
    problem.status = 302;
    problem.fixed = to;
    report.redirected_links.push_back(std::move(problem));
  }

  if (!options_.validate_links) {
    return report;
  }

  // Validate links the crawl didn't already prove good. Pages the robot
  // fetched successfully need no HEAD request. HEAD checks run under the
  // same robustness policy as the crawl (a link to a stalled host costs one
  // bounded probe); their wire counters merge into the crawl's stats.
  FetchPolicy head_policy = crawl_options.fetch_policy;
  head_policy.max_redirects = crawl_options.max_redirects < 0
                                  ? 0
                                  : static_cast<std::uint32_t>(crawl_options.max_redirects);
  RobustFetcher head_fetcher(fetcher_, head_policy, crawl_options.clock, crawl_options.metrics);
  for (const auto& [target, origin] : link_origins) {
    Url url = ParseUrl(target);
    url.StripFragment();
    if (robot.visited().contains(url.Serialize())) {
      continue;  // Crawled; a failure would already show in stats.
    }
    const HttpResponse response = head_fetcher.Head(url);
    if (response.IsRedirect()) {
      LinkProblem problem;
      problem.page = origin;
      problem.target = target;
      problem.status = response.status;
      problem.fixed = std::string(response.Header("location"));
      report.redirected_links.push_back(std::move(problem));
      continue;
    }
    if (!response.ok()) {
      LinkProblem problem;
      problem.page = origin;
      problem.target = target;
      problem.status = response.status;
      report.broken_links.push_back(std::move(problem));
    }
  }
  report.stats.fetch.MergeFrom(head_fetcher.stats());
  return report;
}

}  // namespace weblint
