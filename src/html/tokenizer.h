// The ad-hoc streaming tokenizer (paper §5.1).
//
// Weblint is not an SGML parser: the tokenizer's job is to keep going over
// broken input, applying heuristics "based on commonly-made mistakes in
// HTML" so that a single authoring error produces one anomalous token rather
// than derailing the rest of the document (cascade minimisation).
//
// Recovery heuristics implemented here:
//  * Unterminated quoted attribute values: if no closing quote is found
//    before the next '<' (or within a bounded window), the value is re-read
//    as ending at the first whitespace or '>' and the token is flagged
//    odd_quotes — this reproduces the paper's §4.2 example, where
//    <A HREF="a.html>here</B> still yields usable <A>, </B> tokens.
//  * A '<' that does not begin a tag (followed by space, digit, another '<',
//    or EOF) is emitted as a kStrayLt token and scanning resumes after it.
//  * Comments track nested "<!--", unterminated-at-EOF, and markup-like
//    content for the comment checks.
//  * SCRIPT / STYLE / XMP / LISTING content is consumed as raw text up to
//    the matching close tag; PLAINTEXT consumes the rest of the file.
//
// WHATWG edge-state coverage (tokenization §13.2.5):
//  * Raw-text end tags follow the "appropriate end tag" rule: "</script"
//    only closes the element when followed by whitespace, '/', '>' or EOF —
//    "</scriptx>" stays content, as in the RCDATA/RAWTEXT end-tag-name
//    states.
//  * SCRIPT content implements the script-data escaped and double-escaped
//    states: "<!--" enters the escaped state (where "</script>" still
//    closes), "<script>" inside it enters double-escaped (where "</script>"
//    is content and merely returns to escaped), and "-->" unwinds either
//    back to plain script data. Commented-out scripts that mention
//    "</script>" therefore no longer end the element early.
//  * Text and comment tokens are validated as UTF-8 with the Hoehrmann DFA
//    (utf8.h) whenever the scan saw a high bit; malformed sequences set
//    Token::invalid_utf8 with a code-point-accurate location rather than
//    passing through silently.
//
// Performance: the scanner is batched, not byte-at-a-time. Text, raw-text,
// comment and quoted-value runs are scanned word-at-a-time (scan.h: SSE2
// with a SWAR fallback) — boundary finding, newline counting and the
// '&'/NUL/high-bit content facts all happen in the same single pass, and
// tokens are zero-copy views into the input, so a token costs no
// allocation. Token boundaries are byte-identical to a per-character
// scanner; the reference oracle in tests/testing/ holds the fast paths to
// that contract differentially.
#ifndef WEBLINT_HTML_TOKENIZER_H_
#define WEBLINT_HTML_TOKENIZER_H_

#include <string_view>
#include <vector>

#include "html/scan.h"
#include "html/token.h"

namespace weblint {

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view input);

  // Produces the next token. Returns false (and leaves *out untouched) at
  // end of input. Never fails on malformed input — malformation is reported
  // through token flags. The token's string fields are views into the
  // input buffer, valid for as long as the caller keeps that buffer alive.
  bool Next(Token* out);

  // Position of the next unconsumed character (1-based).
  SourceLocation location() const { return SourceLocation{line_, column_}; }

  // Total newlines seen so far; after the run this is the line count.
  std::uint32_t lines_consumed() const { return line_; }

 private:
  char Peek(size_t ahead = 0) const;
  bool AtEnd(size_t ahead = 0) const { return pos_ + ahead >= input_.size(); }
  char Take();
  void TakeN(size_t n);
  // Bulk equivalent of Take() for every byte in [pos_, end): advances pos_
  // and updates line/column by counting newlines in batched hops instead of
  // branching per byte. `end` must not exceed input_.size().
  void AdvanceTo(size_t end);
  // AdvanceTo for runs the caller has proven free of '\n'/'\r' (name runs,
  // markup sequences like "<!--"): a pure column bump, no newline rescan.
  void AdvanceNoNewline(size_t end) {
    column_ += static_cast<std::uint32_t>(end - pos_);
    pos_ = end;
  }
  // Applies a ScanRun result that started at pos_: advances to r.stop with
  // the line/column bookkeeping the scan already collected.
  void ApplyScan(const ScanResult& r);
  // Consumes a run of ASCII whitespace (batched).
  void SkipSpaceRun();
  bool LookingAt(std::string_view s) const;
  bool LookingAtIgnoreCase(std::string_view s) const;

  // True if an end tag for `lower_element` opens at `i` under the WHATWG
  // appropriate-end-tag rule ("</name" + whitespace / '/' / '>' / EOF).
  bool IsAppropriateEndTag(size_t i, std::string_view lower_element) const;
  // True if "<script" + terminator opens at `i` (double-escape entry).
  bool IsDoubleEscapeOpen(size_t i) const;

  void LexText(Token* out);
  void LexRawText(Token* out);
  void LexPlaintext(Token* out);
  bool LexMarkup(Token* out);  // False if '<' is stray.
  void LexComment(Token* out);
  void LexDoctypeOrDeclaration(Token* out);
  void LexProcessing(Token* out);
  void LexTag(Token* out, bool is_end_tag);
  void LexAttributes(Token* out);
  // Scans a quoted value with bounded lookahead; applies recovery when the
  // closing quote is missing. Returns the value.
  std::string_view LexQuotedValue(char quote, Attribute* attr);
  // Validates out->text as UTF-8 when the scan saw a high-bit byte.
  void CheckUtf8(Token* out, bool has_high);

  std::string_view input_;
  size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;

  // Raw-text mode: set after a SCRIPT/STYLE/XMP/LISTING start tag; holds the
  // lowercase element name whose end tag terminates the mode.
  std::string_view raw_text_element_;
  bool plaintext_mode_ = false;
};

// Convenience for tests: tokenizes the whole input. The tokens view into
// `input` — the caller's buffer must outlive the returned vector (passing a
// temporary std::string here is a bug; string literals are fine).
std::vector<Token> TokenizeAll(std::string_view input);

}  // namespace weblint

#endif  // WEBLINT_HTML_TOKENIZER_H_
