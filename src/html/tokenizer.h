// The ad-hoc streaming tokenizer (paper §5.1).
//
// Weblint is not an SGML parser: the tokenizer's job is to keep going over
// broken input, applying heuristics "based on commonly-made mistakes in
// HTML" so that a single authoring error produces one anomalous token rather
// than derailing the rest of the document (cascade minimisation).
//
// Recovery heuristics implemented here:
//  * Unterminated quoted attribute values: if no closing quote is found
//    before the next '<' (or within a bounded window), the value is re-read
//    as ending at the first whitespace or '>' and the token is flagged
//    odd_quotes — this reproduces the paper's §4.2 example, where
//    <A HREF="a.html>here</B> still yields usable <A>, </B> tokens.
//  * A '<' that does not begin a tag (followed by space, digit, another '<',
//    or EOF) is emitted as a kStrayLt token and scanning resumes after it.
//  * Comments track nested "<!--", unterminated-at-EOF, and markup-like
//    content for the comment checks.
//  * SCRIPT / STYLE / XMP / LISTING content is consumed as raw text up to
//    the matching close tag; PLAINTEXT consumes the rest of the file.
//
// Performance: the scanner is batched, not byte-at-a-time. Text and
// raw-text runs jump straight to the next '<' with memchr; comments jump
// between '-'/'<' delimiters; names, attribute values and whitespace runs
// scan with a precomputed character-class table (char_class.h); and
// line/column tracking is done in bulk over each skipped run (AdvanceTo)
// rather than per byte. Token boundaries are unchanged — text runs end only
// at '<' (or EOF), so embedded '&', NUL and non-ASCII bytes pass through
// byte-identically to the per-character scanner.
#ifndef WEBLINT_HTML_TOKENIZER_H_
#define WEBLINT_HTML_TOKENIZER_H_

#include <string_view>
#include <vector>

#include "html/token.h"

namespace weblint {

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view input);

  // Produces the next token. Returns false (and leaves *out untouched) at
  // end of input. Never fails on malformed input — malformation is reported
  // through token flags.
  bool Next(Token* out);

  // Position of the next unconsumed character (1-based).
  SourceLocation location() const { return SourceLocation{line_, column_}; }

  // Total newlines seen so far; after the run this is the line count.
  std::uint32_t lines_consumed() const { return line_; }

 private:
  char Peek(size_t ahead = 0) const;
  bool AtEnd(size_t ahead = 0) const { return pos_ + ahead >= input_.size(); }
  char Take();
  void TakeN(size_t n);
  // Bulk equivalent of Take() for every byte in [pos_, end): advances pos_
  // and updates line/column by counting newlines in memchr-sized hops
  // instead of branching per byte. `end` must not exceed input_.size().
  void AdvanceTo(size_t end);
  // AdvanceTo for runs the caller has proven free of '\n'/'\r' (name and
  // unquoted-value runs terminate at whitespace): a pure column bump, no
  // newline rescan.
  void AdvanceNoNewline(size_t end) {
    column_ += static_cast<std::uint32_t>(end - pos_);
    pos_ = end;
  }
  // Consumes a run of ASCII whitespace (batched).
  void SkipSpaceRun();
  bool LookingAt(std::string_view s) const;
  bool LookingAtIgnoreCase(std::string_view s) const;

  void LexText(Token* out);
  bool LexMarkup(Token* out);  // False if '<' is stray.
  void LexComment(Token* out);
  void LexDoctypeOrDeclaration(Token* out);
  void LexProcessing(Token* out);
  void LexTag(Token* out, bool is_end_tag);
  void LexAttributes(Token* out);
  // Scans a quoted value with bounded lookahead; applies recovery when the
  // closing quote is missing. Returns the value.
  std::string LexQuotedValue(char quote, Attribute* attr);

  std::string_view input_;
  size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;

  // Raw-text mode: set after a SCRIPT/STYLE/XMP/LISTING start tag; holds the
  // lowercase element name whose end tag terminates the mode.
  std::string raw_text_element_;
  bool plaintext_mode_ = false;
};

// Convenience for tests: tokenizes the whole input.
std::vector<Token> TokenizeAll(std::string_view input);

}  // namespace weblint

#endif  // WEBLINT_HTML_TOKENIZER_H_
