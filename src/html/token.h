// Token structures produced by the ad-hoc HTML tokenizer (paper §5.1: "the
// file being processed is tokenised into start tags (possibly with
// attributes), text content, and end tags").
#ifndef WEBLINT_HTML_TOKEN_H_
#define WEBLINT_HTML_TOKEN_H_

#include <string>
#include <vector>

#include "util/source_location.h"

namespace weblint {

// How an attribute value was delimited in the source. Weblint warns about
// single quotes (attribute-delimiter) and missing quotes
// (quote-attribute-value), so the tokenizer preserves this.
enum class QuoteStyle {
  kNone,    // value had no quotes (or attribute had no value)
  kDouble,  // "value"
  kSingle,  // 'value'
};

struct Attribute {
  std::string name;   // As written (case preserved for messages).
  std::string value;  // Raw value text, entities NOT expanded.
  bool has_value = false;
  QuoteStyle quote = QuoteStyle::kNone;
  // The opening quote was never closed; the tokenizer recovered by ending
  // the value at the first '>' or whitespace (paper §4.2 odd-quotes case).
  bool unterminated_quote = false;
  SourceLocation location;
};

enum class TokenKind {
  kText,         // character data between tags
  kStartTag,     // <NAME ...>
  kEndTag,       // </NAME>
  kComment,      // <!-- ... -->
  kDoctype,      // <!DOCTYPE ...>
  kDeclaration,  // other <! ... > markup declarations
  kProcessing,   // <? ... >
  kStrayLt,      // a '<' in content that does not open markup
};

struct Token {
  TokenKind kind = TokenKind::kText;
  SourceLocation location;

  // Tag name as written (kStartTag/kEndTag); empty otherwise.
  std::string name;
  std::vector<Attribute> attributes;

  // Content for kText / kComment / kDoctype / kDeclaration / kProcessing.
  std::string text;

  // Raw source between '<' and '>' for tags — used verbatim in messages
  // (the paper prints: odd number of quotes in element <A HREF="a.html>).
  std::string raw;

  // --- recovery / anomaly flags set by the tokenizer -----------------------
  bool odd_quotes = false;         // Odd number of '"' characters in the tag.
  bool net_slash = false;          // SGML NET-style slash: <BR/> or <EM/.
  bool unterminated_tag = false;   // EOF inside the tag.
  bool closed_by_lt = false;       // Tag ended because a new '<' appeared (missing '>').
  bool unterminated_comment = false;  // EOF inside a comment.
  bool nested_comment = false;        // "<!--" occurred inside a comment.
  bool comment_whitespace_close = false;  // Closed by "- ->"-style sequence.
  bool raw_text = false;           // Text captured in SCRIPT/STYLE raw mode.

  bool IsTag() const { return kind == TokenKind::kStartTag || kind == TokenKind::kEndTag; }
};

}  // namespace weblint

#endif  // WEBLINT_HTML_TOKEN_H_
