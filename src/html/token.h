// Token structures produced by the ad-hoc HTML tokenizer (paper §5.1: "the
// file being processed is tokenised into start tags (possibly with
// attributes), text content, and end tags").
//
// Tokens are zero-copy: every string field is a view into the input buffer
// handed to the Tokenizer, so producing a token never allocates or copies
// text. The caller owns the buffer and must keep it alive for as long as
// any token derived from it is in use.
#ifndef WEBLINT_HTML_TOKEN_H_
#define WEBLINT_HTML_TOKEN_H_

#include <string_view>
#include <vector>

#include "util/source_location.h"

namespace weblint {

// How an attribute value was delimited in the source. Weblint warns about
// single quotes (attribute-delimiter) and missing quotes
// (quote-attribute-value), so the tokenizer preserves this.
enum class QuoteStyle {
  kNone,    // value had no quotes (or attribute had no value)
  kDouble,  // "value"
  kSingle,  // 'value'
};

struct Attribute {
  std::string_view name;   // As written (case preserved for messages).
  std::string_view value;  // Raw value text, entities NOT expanded.
  bool has_value = false;
  QuoteStyle quote = QuoteStyle::kNone;
  // The opening quote was never closed; the tokenizer recovered by ending
  // the value at the first '>' or whitespace (paper §4.2 odd-quotes case).
  bool unterminated_quote = false;
  SourceLocation location;
};

enum class TokenKind {
  kText,         // character data between tags
  kStartTag,     // <NAME ...>
  kEndTag,       // </NAME>
  kComment,      // <!-- ... -->
  kDoctype,      // <!DOCTYPE ...>
  kDeclaration,  // other <! ... > markup declarations
  kProcessing,   // <? ... >
  kStrayLt,      // a '<' in content that does not open markup
};

struct Token {
  TokenKind kind = TokenKind::kText;
  SourceLocation location;

  // Tag name as written (kStartTag/kEndTag); empty otherwise.
  std::string_view name;
  std::vector<Attribute> attributes;

  // Content for kText / kComment / kDoctype / kDeclaration / kProcessing.
  std::string_view text;

  // Raw source between '<' and '>' for tags — used verbatim in messages
  // (the paper prints: odd number of quotes in element <A HREF="a.html>).
  std::string_view raw;

  // --- recovery / anomaly flags set by the tokenizer -----------------------
  bool odd_quotes = false;         // Odd number of '"' characters in the tag.
  bool net_slash = false;          // SGML NET-style slash: <BR/> or <EM/.
  bool unterminated_tag = false;   // EOF inside the tag.
  bool closed_by_lt = false;       // Tag ended because a new '<' appeared (missing '>').
  bool unterminated_comment = false;  // EOF inside a comment.
  bool nested_comment = false;        // "<!--" occurred inside a comment.
  bool comment_whitespace_close = false;  // Closed by "- ->"-style sequence.
  bool raw_text = false;           // Text captured in SCRIPT/STYLE raw mode.

  // --- content facts gathered by the scan (kText only) ---------------------
  bool has_amp = false;  // Text contains '&': entity scanning may apply.
  bool has_nul = false;  // Text contains a NUL byte.
  // Text (kText or kComment) contains a malformed UTF-8 sequence; the first
  // one starts at invalid_utf8_at (column counts code points, per utf8.h).
  bool invalid_utf8 = false;
  SourceLocation invalid_utf8_at;

  bool IsTag() const { return kind == TokenKind::kStartTag || kind == TokenKind::kEndTag; }

  // Clears every field for reuse, keeping the attribute vector's capacity —
  // the tokenize/dispatch loop resets one Token per token produced and must
  // not pay an allocation each time.
  void Reset() {
    kind = TokenKind::kText;
    location = SourceLocation{};
    name = {};
    attributes.clear();
    text = {};
    raw = {};
    odd_quotes = false;
    net_slash = false;
    unterminated_tag = false;
    closed_by_lt = false;
    unterminated_comment = false;
    nested_comment = false;
    comment_whitespace_close = false;
    raw_text = false;
    has_amp = false;
    has_nul = false;
    invalid_utf8 = false;
    invalid_utf8_at = SourceLocation{};
  }
};

}  // namespace weblint

#endif  // WEBLINT_HTML_TOKEN_H_
