// Precomputed 256-entry character-class table for the tokenizer's hot
// scanning loops (tag names, attribute names/values, whitespace runs).
//
// One indexed load + bit test replaces the chained range comparisons of
// IsAsciiAlpha/IsAsciiSpace/... in the per-byte loops, and gives the batched
// scanners a single predicate to run to the end of a character run. The
// table is constexpr — built at compile time, shared, and immutable, so it
// is safe to read from every lint worker concurrently.
#ifndef WEBLINT_HTML_CHAR_CLASS_H_
#define WEBLINT_HTML_CHAR_CLASS_H_

#include <array>
#include <cstdint>

namespace weblint {

enum CharClass : std::uint8_t {
  kCharNameStart = 1 << 0,  // ASCII alpha: may open a tag/attribute name.
  kCharName = 1 << 1,       // Alnum or - . _ : — continues a name.
  kCharSpace = 1 << 2,      // ASCII whitespace (space \t \n \r \f \v).
  // Terminators for the batched scanners:
  kCharAttrNameEnd = 1 << 3,       // whitespace, '=', '>', '<'.
  kCharUnquotedValueEnd = 1 << 4,  // whitespace, '>'.
};

inline constexpr std::array<std::uint8_t, 256> kCharClassTable = [] {
  std::array<std::uint8_t, 256> table{};
  for (unsigned c = 0; c < 256; ++c) {
    const bool alpha = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z');
    const bool digit = c >= '0' && c <= '9';
    const bool space =
        c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
    std::uint8_t bits = 0;
    if (alpha) {
      bits |= kCharNameStart;
    }
    if (alpha || digit || c == '-' || c == '.' || c == '_' || c == ':') {
      bits |= kCharName;
    }
    if (space) {
      bits |= kCharSpace | kCharAttrNameEnd | kCharUnquotedValueEnd;
    }
    if (c == '=' || c == '>' || c == '<') {
      bits |= kCharAttrNameEnd;
    }
    if (c == '>') {
      bits |= kCharUnquotedValueEnd;
    }
    table[c] = bits;
  }
  return table;
}();

inline bool HasCharClass(char c, CharClass cls) {
  return (kCharClassTable[static_cast<unsigned char>(c)] & cls) != 0;
}

}  // namespace weblint

#endif  // WEBLINT_HTML_CHAR_CLASS_H_
