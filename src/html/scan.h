// Word-at-a-time run scanning for the tokenizer's hot paths.
//
// Text, raw-text, comment and quoted-value runs all have the same shape:
// skip forward to the first of (up to) two stop bytes while tracking what
// the skipped run contained — newlines for line/column bookkeeping, plus
// '&' / NUL / high-bit presence so later passes (entity scanning, UTF-8
// validation) can be skipped entirely for the common all-ASCII run. Doing
// all of that in one pass replaces the previous scheme of one memchr for
// the boundary plus two more for '\n'/'\r'.
//
// Two implementations share an exact bytewise stepper:
//  * ScanRunSimd — SSE2 (part of the x86-64 baseline): 64-byte windows whose
//    newlines and stop position are resolved from packed pmovmskb bits with
//    popcount/countr_zero — no bytewise re-walk, because text-shaped input
//    has a newline on every line and re-walking would be the common case.
//    Tails and short runs fall back to 16-byte blocks, then bytes.
//  * ScanRunSwar — portable fallback: 8-byte words via the carry-exact
//    zero-lane test (((x & ~H) + ~H) | x) — no false positives, unlike the
//    classic (v - 0x01..) & ~v & 0x80.. shortcut, which can smear across
//    lanes. Differentially tested against the bytewise stepper.
//
// The newline rule matches Tokenizer::Take(): '\n' advances the line, and
// so does '\r' when the *next input byte* is not '\n' — the lookahead reads
// past `end` on purpose, because run boundaries (a '<' after the '\r') must
// not turn a CRLF pair into two newlines.
#ifndef WEBLINT_HTML_SCAN_H_
#define WEBLINT_HTML_SCAN_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace weblint {

struct ScanResult {
  // Absolute index of the first stop byte in [from, end), or `end`.
  size_t stop = 0;
  // Newlines in [from, stop) under the CR/LF rule above.
  std::uint32_t newlines = 0;
  // Absolute index of the last line-advancing byte, or npos if none; the
  // column after the run is stop - last_reset (the byte after a newline is
  // column 1).
  size_t last_reset = std::string_view::npos;
  // Presence flags over [from, stop).
  bool has_amp = false;
  bool has_nul = false;
  bool has_high = false;
};

namespace scan_internal {

// Processes input[i]: returns false (with r->stop = i) if it is a stop
// byte, true after recording its effect otherwise. The CR lookahead uses
// the full input, not the caller's `end`.
inline bool StepByte(std::string_view input, size_t i, char stop1, char stop2, ScanResult* r) {
  const char c = input[i];
  if (c == stop1 || c == stop2) {
    r->stop = i;
    return false;
  }
  if (c == '\n') {
    ++r->newlines;
    r->last_reset = i;
  } else if (c == '\r') {
    if (i + 1 >= input.size() || input[i + 1] != '\n') {
      ++r->newlines;
      r->last_reset = i;
    }
  } else if (c == '&') {
    r->has_amp = true;
  } else if (c == '\0') {
    r->has_nul = true;
  } else if (static_cast<unsigned char>(c) >= 0x80) {
    r->has_high = true;
  }
  return true;
}

inline constexpr std::uint64_t kSwarOnes = 0x0101010101010101ULL;
inline constexpr std::uint64_t kSwarHigh = 0x8080808080808080ULL;

inline std::uint64_t SwarBroadcast(char b) {
  return kSwarOnes * static_cast<std::uint8_t>(b);
}

// 0x80 in every lane of `v` equal to the broadcast byte, 0 elsewhere.
// Exact: bit 7 is masked off before the add, so a lane's carry can never
// reach its neighbour.
inline std::uint64_t SwarLanesEqual(std::uint64_t v, std::uint64_t broadcast) {
  const std::uint64_t x = v ^ broadcast;
  return ~((((x & ~kSwarHigh) + ~kSwarHigh) | x)) & kSwarHigh;
}

}  // namespace scan_internal

// Portable word-at-a-time implementation. See ScanRun for the contract.
inline ScanResult ScanRunSwar(std::string_view input, size_t from, size_t end, char stop1,
                              char stop2) {
  using namespace scan_internal;
  ScanResult r;
  const std::uint64_t b1 = SwarBroadcast(stop1);
  const std::uint64_t b2 = SwarBroadcast(stop2);
  const std::uint64_t lf = SwarBroadcast('\n');
  const std::uint64_t cr = SwarBroadcast('\r');
  const std::uint64_t amp = SwarBroadcast('&');
  size_t i = from;
  while (i + 8 <= end) {
    std::uint64_t v;
    std::memcpy(&v, input.data() + i, 8);
    const std::uint64_t stops = SwarLanesEqual(v, b1) | SwarLanesEqual(v, b2);
    const std::uint64_t newlines = SwarLanesEqual(v, lf) | SwarLanesEqual(v, cr);
    if ((stops | newlines) == 0) {
      if (SwarLanesEqual(v, amp) != 0) {
        r.has_amp = true;
      }
      if (SwarLanesEqual(v, 0) != 0) {
        r.has_nul = true;
      }
      if ((v & kSwarHigh) != 0) {
        r.has_high = true;
      }
      i += 8;
      continue;
    }
    // The word needs positional handling (a stop, or newline bookkeeping):
    // resolve it bytewise so CR/LF pairing and the stop index stay exact.
    for (const size_t word_end = i + 8; i < word_end; ++i) {
      if (!StepByte(input, i, stop1, stop2, &r)) {
        return r;
      }
    }
  }
  for (; i < end; ++i) {
    if (!StepByte(input, i, stop1, stop2, &r)) {
      return r;
    }
  }
  r.stop = end;
  return r;
}

#if defined(__SSE2__)
namespace scan_internal {

// Packs the movemasks of four consecutive 16-byte blocks into one 64-bit
// positional mask: bit j corresponds to window byte j.
inline std::uint64_t Mask64(__m128i m0, __m128i m1, __m128i m2, __m128i m3) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(_mm_movemask_epi8(m0))) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(_mm_movemask_epi8(m1))) << 16) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(_mm_movemask_epi8(m2))) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(_mm_movemask_epi8(m3))) << 48);
}

}  // namespace scan_internal

inline ScanResult ScanRunSimd(std::string_view input, size_t from, size_t end, char stop1,
                              char stop2) {
  using scan_internal::Mask64;
  using scan_internal::StepByte;
  ScanResult r;
  const __m128i b1 = _mm_set1_epi8(stop1);
  const __m128i b2 = _mm_set1_epi8(stop2);
  const __m128i lf = _mm_set1_epi8('\n');
  const __m128i cr = _mm_set1_epi8('\r');
  const __m128i amp = _mm_set1_epi8('&');
  const __m128i zero = _mm_setzero_si128();
  size_t i = from;
  // 64-byte windows. Text-shaped input has a newline every line, so blocks
  // that contain one are the norm, not the exception; instead of re-walking
  // them bytewise, newlines are counted with popcount over a 64-bit
  // positional mask and the CR/LF pairing rule becomes one shift-and-mask.
  // Flag presence accumulates branchlessly in vector registers and is
  // folded into booleans only when the run ends.
  __m128i amp_acc = zero;
  __m128i nul_acc = zero;
  __m128i high_acc = zero;
  while (i + 64 <= end) {
    const char* p = input.data() + i;
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    const __m128i v2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
    const __m128i v3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
    const __m128i s0 = _mm_or_si128(_mm_cmpeq_epi8(v0, b1), _mm_cmpeq_epi8(v0, b2));
    const __m128i s1 = _mm_or_si128(_mm_cmpeq_epi8(v1, b1), _mm_cmpeq_epi8(v1, b2));
    const __m128i s2 = _mm_or_si128(_mm_cmpeq_epi8(v2, b1), _mm_cmpeq_epi8(v2, b2));
    const __m128i s3 = _mm_or_si128(_mm_cmpeq_epi8(v3, b1), _mm_cmpeq_epi8(v3, b2));
    const __m128i l0 = _mm_cmpeq_epi8(v0, lf);
    const __m128i l1 = _mm_cmpeq_epi8(v1, lf);
    const __m128i l2 = _mm_cmpeq_epi8(v2, lf);
    const __m128i l3 = _mm_cmpeq_epi8(v3, lf);
    const __m128i c0 = _mm_cmpeq_epi8(v0, cr);
    const __m128i c1 = _mm_cmpeq_epi8(v1, cr);
    const __m128i c2 = _mm_cmpeq_epi8(v2, cr);
    const __m128i c3 = _mm_cmpeq_epi8(v3, cr);
    const __m128i ev =
        _mm_or_si128(_mm_or_si128(_mm_or_si128(s0, s1), _mm_or_si128(s2, s3)),
                     _mm_or_si128(_mm_or_si128(l0, l1), _mm_or_si128(l2, l3)));
    const __m128i ev_cr =
        _mm_or_si128(_mm_or_si128(c0, c1), _mm_or_si128(c2, c3));
    if (_mm_movemask_epi8(_mm_or_si128(ev, ev_cr)) == 0) {
      // Nothing positional in this window: accumulate flag lanes and move on.
      amp_acc = _mm_or_si128(
          amp_acc, _mm_or_si128(_mm_or_si128(_mm_cmpeq_epi8(v0, amp), _mm_cmpeq_epi8(v1, amp)),
                                _mm_or_si128(_mm_cmpeq_epi8(v2, amp), _mm_cmpeq_epi8(v3, amp))));
      nul_acc = _mm_or_si128(
          nul_acc, _mm_or_si128(_mm_or_si128(_mm_cmpeq_epi8(v0, zero), _mm_cmpeq_epi8(v1, zero)),
                                _mm_or_si128(_mm_cmpeq_epi8(v2, zero), _mm_cmpeq_epi8(v3, zero))));
      high_acc = _mm_or_si128(high_acc,
                              _mm_or_si128(_mm_or_si128(v0, v1), _mm_or_si128(v2, v3)));
      i += 64;
      continue;
    }
    const std::uint64_t stops64 = Mask64(s0, s1, s2, s3);
    const std::uint64_t lf64 = Mask64(l0, l1, l2, l3);
    const std::uint64_t cr64 = Mask64(c0, c1, c2, c3);
    // Bits [0, t) of the window precede the stop; everything at or past the
    // stop is outside the run and must not count.
    std::uint64_t below = ~std::uint64_t{0};
    if (stops64 != 0) {
      const int t = std::countr_zero(stops64);
      below = (t == 0) ? 0 : (below >> (64 - t));
    }
    // A CR counts as a newline unless its follower is an LF. Followers
    // inside the window come from lf64 >> 1; bit 63's follower is the next
    // input byte (full input, matching StepByte's lookahead).
    std::uint64_t standalone_cr = cr64 & ~(lf64 >> 1);
    if ((standalone_cr >> 63) != 0 && i + 64 < input.size() && input[i + 64] == '\n') {
      standalone_cr &= ~(std::uint64_t{1} << 63);
    }
    const std::uint64_t nl = (lf64 | standalone_cr) & below;
    r.newlines += static_cast<std::uint32_t>(std::popcount(nl));
    if (nl != 0) {
      r.last_reset = i + 63 - static_cast<size_t>(std::countl_zero(nl));
    }
    if (stops64 != 0) {
      const std::uint64_t amp64 =
          Mask64(_mm_cmpeq_epi8(v0, amp), _mm_cmpeq_epi8(v1, amp), _mm_cmpeq_epi8(v2, amp),
                 _mm_cmpeq_epi8(v3, amp)) &
          below;
      const std::uint64_t nul64 =
          Mask64(_mm_cmpeq_epi8(v0, zero), _mm_cmpeq_epi8(v1, zero), _mm_cmpeq_epi8(v2, zero),
                 _mm_cmpeq_epi8(v3, zero)) &
          below;
      const std::uint64_t high64 = Mask64(v0, v1, v2, v3) & below;
      r.has_amp = amp64 != 0 || _mm_movemask_epi8(amp_acc) != 0;
      r.has_nul = nul64 != 0 || _mm_movemask_epi8(nul_acc) != 0;
      r.has_high = high64 != 0 || _mm_movemask_epi8(high_acc) != 0;
      r.stop = i + static_cast<size_t>(std::countr_zero(stops64));
      return r;
    }
    // Newlines only: the whole window was consumed.
    amp_acc = _mm_or_si128(
        amp_acc, _mm_or_si128(_mm_or_si128(_mm_cmpeq_epi8(v0, amp), _mm_cmpeq_epi8(v1, amp)),
                              _mm_or_si128(_mm_cmpeq_epi8(v2, amp), _mm_cmpeq_epi8(v3, amp))));
    nul_acc = _mm_or_si128(
        nul_acc, _mm_or_si128(_mm_or_si128(_mm_cmpeq_epi8(v0, zero), _mm_cmpeq_epi8(v1, zero)),
                              _mm_or_si128(_mm_cmpeq_epi8(v2, zero), _mm_cmpeq_epi8(v3, zero))));
    high_acc =
        _mm_or_si128(high_acc, _mm_or_si128(_mm_or_si128(v0, v1), _mm_or_si128(v2, v3)));
    i += 64;
  }
  r.has_amp = _mm_movemask_epi8(amp_acc) != 0;
  r.has_nul = _mm_movemask_epi8(nul_acc) != 0;
  r.has_high = _mm_movemask_epi8(high_acc) != 0;
  // 16-byte blocks for the tail (and for whole runs shorter than a window);
  // blocks with positional events are re-walked bytewise.
  while (i + 16 <= end) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(input.data() + i));
    const __m128i stops = _mm_or_si128(_mm_cmpeq_epi8(v, b1), _mm_cmpeq_epi8(v, b2));
    const __m128i newlines = _mm_or_si128(_mm_cmpeq_epi8(v, lf), _mm_cmpeq_epi8(v, cr));
    if (_mm_movemask_epi8(_mm_or_si128(stops, newlines)) == 0) {
      if (!r.has_amp && _mm_movemask_epi8(_mm_cmpeq_epi8(v, amp)) != 0) {
        r.has_amp = true;
      }
      if (!r.has_nul && _mm_movemask_epi8(_mm_cmpeq_epi8(v, zero)) != 0) {
        r.has_nul = true;
      }
      if (!r.has_high && _mm_movemask_epi8(v) != 0) {
        r.has_high = true;
      }
      i += 16;
      continue;
    }
    for (const size_t block_end = i + 16; i < block_end; ++i) {
      if (!StepByte(input, i, stop1, stop2, &r)) {
        return r;
      }
    }
  }
  for (; i < end; ++i) {
    if (!StepByte(input, i, stop1, stop2, &r)) {
      return r;
    }
  }
  r.stop = end;
  return r;
}
#endif  // __SSE2__

#if defined(__SSE2__)
// AVX2 widening of the windowed scan, selected at runtime (the build
// targets the x86-64 SSE2 baseline; the target attribute lets this one
// function use 32-byte registers anyway). Structure mirrors ScanRunSimd:
// 64-byte windows, positional 64-bit masks, vector flag accumulators.
__attribute__((target("avx2"))) inline std::uint64_t ScanMask64Avx2(__m256i m0, __m256i m1) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(_mm256_movemask_epi8(m0))) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(_mm256_movemask_epi8(m1)))
          << 32);
}

template <bool kTwoStops>
__attribute__((target("avx2"))) inline ScanResult ScanRunAvx2Impl(std::string_view input,
                                                                  size_t from, size_t end,
                                                                  char stop1, char stop2) {
  ScanResult r;
  const __m256i b1 = _mm256_set1_epi8(stop1);
  const __m256i b2 = _mm256_set1_epi8(stop2);
  const __m256i lf = _mm256_set1_epi8('\n');
  const __m256i cr = _mm256_set1_epi8('\r');
  const __m256i amp = _mm256_set1_epi8('&');
  const __m256i zero = _mm256_setzero_si256();
  __m256i amp_acc = zero;
  // Min-accumulator for NUL detection: a zero lane survives every min, so
  // one compare at the end replaces a cmpeq per window.
  __m256i nul_min = _mm256_set1_epi8(static_cast<char>(0xFF));
  __m256i high_acc = zero;
  size_t i = from;
  while (i + 64 <= end) {
    const char* p = input.data() + i;
    const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
    __m256i s0 = _mm256_cmpeq_epi8(v0, b1);
    __m256i s1 = _mm256_cmpeq_epi8(v1, b1);
    if constexpr (kTwoStops) {
      s0 = _mm256_or_si256(s0, _mm256_cmpeq_epi8(v0, b2));
      s1 = _mm256_or_si256(s1, _mm256_cmpeq_epi8(v1, b2));
    }
    const __m256i l0 = _mm256_cmpeq_epi8(v0, lf);
    const __m256i l1 = _mm256_cmpeq_epi8(v1, lf);
    const __m256i c0 = _mm256_cmpeq_epi8(v0, cr);
    const __m256i c1 = _mm256_cmpeq_epi8(v1, cr);
    const __m256i ev =
        _mm256_or_si256(_mm256_or_si256(_mm256_or_si256(s0, s1), _mm256_or_si256(l0, l1)),
                        _mm256_or_si256(c0, c1));
    if (_mm256_movemask_epi8(ev) == 0) {
      amp_acc = _mm256_or_si256(
          amp_acc, _mm256_or_si256(_mm256_cmpeq_epi8(v0, amp), _mm256_cmpeq_epi8(v1, amp)));
      nul_min = _mm256_min_epu8(nul_min, _mm256_min_epu8(v0, v1));
      high_acc = _mm256_or_si256(high_acc, _mm256_or_si256(v0, v1));
      i += 64;
      continue;
    }
    const std::uint64_t stops64 = ScanMask64Avx2(s0, s1);
    const std::uint64_t lf64 = ScanMask64Avx2(l0, l1);
    const std::uint64_t cr64 = ScanMask64Avx2(c0, c1);
    std::uint64_t below = ~std::uint64_t{0};
    if (stops64 != 0) {
      const int t = std::countr_zero(stops64);
      below = (t == 0) ? 0 : (below >> (64 - t));
    }
    std::uint64_t standalone_cr = cr64 & ~(lf64 >> 1);
    if ((standalone_cr >> 63) != 0 && i + 64 < input.size() && input[i + 64] == '\n') {
      standalone_cr &= ~(std::uint64_t{1} << 63);
    }
    const std::uint64_t nl = (lf64 | standalone_cr) & below;
    r.newlines += static_cast<std::uint32_t>(std::popcount(nl));
    if (nl != 0) {
      r.last_reset = i + 63 - static_cast<size_t>(std::countl_zero(nl));
    }
    if (stops64 != 0) {
      const std::uint64_t amp64 =
          ScanMask64Avx2(_mm256_cmpeq_epi8(v0, amp), _mm256_cmpeq_epi8(v1, amp)) & below;
      const std::uint64_t nul64 =
          ScanMask64Avx2(_mm256_cmpeq_epi8(v0, zero), _mm256_cmpeq_epi8(v1, zero)) & below;
      const std::uint64_t high64 = ScanMask64Avx2(v0, v1) & below;
      r.has_amp = amp64 != 0 || _mm256_movemask_epi8(amp_acc) != 0;
      r.has_nul =
          nul64 != 0 ||
          _mm256_movemask_epi8(_mm256_cmpeq_epi8(nul_min, zero)) != 0;
      r.has_high = high64 != 0 || _mm256_movemask_epi8(high_acc) != 0;
      r.stop = i + static_cast<size_t>(std::countr_zero(stops64));
      return r;
    }
    amp_acc = _mm256_or_si256(
        amp_acc, _mm256_or_si256(_mm256_cmpeq_epi8(v0, amp), _mm256_cmpeq_epi8(v1, amp)));
    nul_min = _mm256_min_epu8(nul_min, _mm256_min_epu8(v0, v1));
    high_acc = _mm256_or_si256(high_acc, _mm256_or_si256(v0, v1));
    i += 64;
  }
  const bool acc_amp = _mm256_movemask_epi8(amp_acc) != 0;
  const bool acc_nul = _mm256_movemask_epi8(_mm256_cmpeq_epi8(nul_min, zero)) != 0;
  const bool acc_high = _mm256_movemask_epi8(high_acc) != 0;
  // Delegate the sub-window tail to the SSE2 scan and merge: its indices
  // are already absolute, and a later last_reset supersedes an earlier one.
  const ScanResult tail = ScanRunSimd(input, i, end, stop1, stop2);
  r.stop = tail.stop;
  r.newlines += tail.newlines;
  if (tail.last_reset != std::string_view::npos) {
    r.last_reset = tail.last_reset;
  }
  r.has_amp = r.has_amp || acc_amp || tail.has_amp;
  r.has_nul = r.has_nul || acc_nul || tail.has_nul;
  r.has_high = r.has_high || acc_high || tail.has_high;
  return r;
}

inline ScanResult ScanRunAvx2(std::string_view input, size_t from, size_t end, char stop1,
                              char stop2) {
  return stop1 == stop2 ? ScanRunAvx2Impl<false>(input, from, end, stop1, stop2)
                        : ScanRunAvx2Impl<true>(input, from, end, stop1, stop2);
}

inline bool ScanHasAvx2() {
  static const bool kAvx2 = __builtin_cpu_supports("avx2") != 0;
  return kAvx2;
}
#endif  // __SSE2__

// Scans input[from, end) for the first occurrence of stop1 or stop2 (pass
// the same byte twice for a single stop), recording newlines and '&' / NUL
// / high-bit presence over the skipped run. `end` must not exceed
// input.size(); the CR lookahead deliberately peeks the full input.
inline ScanResult ScanRun(std::string_view input, size_t from, size_t end, char stop1,
                          char stop2) {
#if defined(__SSE2__)
  if (ScanHasAvx2()) {
    return ScanRunAvx2(input, from, end, stop1, stop2);
  }
  return ScanRunSimd(input, from, end, stop1, stop2);
#else
  return ScanRunSwar(input, from, end, stop1, stop2);
#endif
}

}  // namespace weblint

#endif  // WEBLINT_HTML_SCAN_H_
