#include "html/entities.h"

#include <algorithm>
#include <cstring>

#include "util/strings.h"

namespace weblint {

namespace {

struct EntityEntry {
  const char* name;
  std::uint32_t code_point;
};

// The full HTML 4.0 entity set: 24.2 HTMLlat1 (96), 24.3 HTMLsymbol (124),
// 24.4 HTMLspecial (32) — 252 names. Sorted by strcmp for binary search.
constexpr EntityEntry kEntities[] = {
    {"AElig", 198},    {"Aacute", 193},   {"Acirc", 194},    {"Agrave", 192},
    {"Alpha", 913},    {"Aring", 197},    {"Atilde", 195},   {"Auml", 196},
    {"Beta", 914},     {"Ccedil", 199},   {"Chi", 935},      {"Dagger", 8225},
    {"Delta", 916},    {"ETH", 208},      {"Eacute", 201},   {"Ecirc", 202},
    {"Egrave", 200},   {"Epsilon", 917},  {"Eta", 919},      {"Euml", 203},
    {"Gamma", 915},    {"Iacute", 205},   {"Icirc", 206},    {"Igrave", 204},
    {"Iota", 921},     {"Iuml", 207},     {"Kappa", 922},    {"Lambda", 923},
    {"Mu", 924},       {"Ntilde", 209},   {"Nu", 925},       {"OElig", 338},
    {"Oacute", 211},   {"Ocirc", 212},    {"Ograve", 210},   {"Omega", 937},
    {"Omicron", 927},  {"Oslash", 216},   {"Otilde", 213},   {"Ouml", 214},
    {"Phi", 934},      {"Pi", 928},       {"Prime", 8243},   {"Psi", 936},
    {"Rho", 929},      {"Scaron", 352},   {"Sigma", 931},    {"THORN", 222},
    {"Tau", 932},      {"Theta", 920},    {"Uacute", 218},   {"Ucirc", 219},
    {"Ugrave", 217},   {"Upsilon", 933},  {"Uuml", 220},     {"Xi", 926},
    {"Yacute", 221},   {"Yuml", 376},     {"Zeta", 918},     {"aacute", 225},
    {"acirc", 226},    {"acute", 180},    {"aelig", 230},    {"agrave", 224},
    {"alefsym", 8501}, {"alpha", 945},    {"amp", 38},       {"and", 8743},
    {"ang", 8736},     {"aring", 229},    {"asymp", 8776},   {"atilde", 227},
    {"auml", 228},     {"bdquo", 8222},   {"beta", 946},     {"brvbar", 166},
    {"bull", 8226},    {"cap", 8745},     {"ccedil", 231},   {"cedil", 184},
    {"cent", 162},     {"chi", 967},      {"circ", 710},     {"clubs", 9827},
    {"cong", 8773},    {"copy", 169},     {"crarr", 8629},   {"cup", 8746},
    {"curren", 164},   {"dArr", 8659},    {"dagger", 8224},  {"darr", 8595},
    {"deg", 176},      {"delta", 948},    {"diams", 9830},   {"divide", 247},
    {"eacute", 233},   {"ecirc", 234},    {"egrave", 232},   {"empty", 8709},
    {"emsp", 8195},    {"ensp", 8194},    {"epsilon", 949},  {"equiv", 8801},
    {"eta", 951},      {"eth", 240},      {"euml", 235},     {"euro", 8364},
    {"exist", 8707},   {"fnof", 402},     {"forall", 8704},  {"frac12", 189},
    {"frac14", 188},   {"frac34", 190},   {"frasl", 8260},   {"gamma", 947},
    {"ge", 8805},      {"gt", 62},        {"hArr", 8660},    {"harr", 8596},
    {"hearts", 9829},  {"hellip", 8230},  {"iacute", 237},   {"icirc", 238},
    {"iexcl", 161},    {"igrave", 236},   {"image", 8465},   {"infin", 8734},
    {"int", 8747},     {"iota", 953},     {"iquest", 191},   {"isin", 8712},
    {"iuml", 239},     {"kappa", 954},    {"lArr", 8656},    {"lambda", 955},
    {"lang", 9001},    {"laquo", 171},    {"larr", 8592},    {"lceil", 8968},
    {"ldquo", 8220},   {"le", 8804},      {"lfloor", 8970},  {"lowast", 8727},
    {"loz", 9674},     {"lrm", 8206},     {"lsaquo", 8249},  {"lsquo", 8216},
    {"lt", 60},        {"macr", 175},     {"mdash", 8212},   {"micro", 181},
    {"middot", 183},   {"minus", 8722},   {"mu", 956},       {"nabla", 8711},
    {"nbsp", 160},     {"ndash", 8211},   {"ne", 8800},      {"ni", 8715},
    {"not", 172},      {"notin", 8713},   {"nsub", 8836},    {"ntilde", 241},
    {"nu", 957},       {"oacute", 243},   {"ocirc", 244},    {"oelig", 339},
    {"ograve", 242},   {"oline", 8254},   {"omega", 969},    {"omicron", 959},
    {"oplus", 8853},   {"or", 8744},      {"ordf", 170},     {"ordm", 186},
    {"oslash", 248},   {"otilde", 245},   {"otimes", 8855},  {"ouml", 246},
    {"para", 182},     {"part", 8706},    {"permil", 8240},  {"perp", 8869},
    {"phi", 966},      {"pi", 960},       {"piv", 982},      {"plusmn", 177},
    {"pound", 163},    {"prime", 8242},   {"prod", 8719},    {"prop", 8733},
    {"psi", 968},      {"quot", 34},      {"rArr", 8658},    {"radic", 8730},
    {"rang", 9002},    {"raquo", 187},    {"rarr", 8594},    {"rceil", 8969},
    {"rdquo", 8221},   {"real", 8476},    {"reg", 174},      {"rfloor", 8971},
    {"rho", 961},      {"rlm", 8207},     {"rsaquo", 8250},  {"rsquo", 8217},
    {"sbquo", 8218},   {"scaron", 353},   {"sdot", 8901},    {"sect", 167},
    {"shy", 173},      {"sigma", 963},    {"sigmaf", 962},   {"sim", 8764},
    {"spades", 9824},  {"sub", 8834},     {"sube", 8838},    {"sum", 8721},
    {"sup", 8835},     {"sup1", 185},     {"sup2", 178},     {"sup3", 179},
    {"supe", 8839},    {"szlig", 223},    {"tau", 964},      {"there4", 8756},
    {"theta", 952},    {"thetasym", 977}, {"thinsp", 8201},  {"thorn", 254},
    {"tilde", 732},    {"times", 215},    {"trade", 8482},   {"uArr", 8657},
    {"uacute", 250},   {"uarr", 8593},    {"ucirc", 251},    {"ugrave", 249},
    {"uml", 168},      {"upsih", 978},    {"upsilon", 965},  {"uuml", 252},
    {"weierp", 8472},  {"xi", 958},       {"yacute", 253},   {"yen", 165},
    {"yuml", 255},     {"zeta", 950},     {"zwj", 8205},     {"zwnj", 8204},
};

constexpr size_t kEntityCount = sizeof(kEntities) / sizeof(kEntities[0]);

}  // namespace

std::optional<std::uint32_t> LookupEntity(std::string_view name) {
  const EntityEntry* begin = kEntities;
  const EntityEntry* end = kEntities + kEntityCount;
  const EntityEntry* it =
      std::lower_bound(begin, end, name, [](const EntityEntry& e, std::string_view key) {
        return std::string_view(e.name) < key;
      });
  if (it != end && std::string_view(it->name) == name) {
    return it->code_point;
  }
  return std::nullopt;
}

size_t EntityCount() { return kEntityCount; }

std::vector<EntityRef> ScanEntities(std::string_view text, SourceLocation base) {
  std::vector<EntityRef> refs;
  std::uint32_t line = base.line;
  std::uint32_t column = base.column;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n' || (c == '\r' && (i + 1 >= text.size() || text[i + 1] != '\n'))) {
      ++line;
      column = 1;
      continue;
    }
    if (c != '&') {
      ++column;
      continue;
    }

    EntityRef ref;
    ref.location = SourceLocation{line, column};
    size_t j = i + 1;
    if (j < text.size() && text[j] == '#') {
      // Numeric reference: &#123; or &#x7F;.
      ref.kind = EntityRef::Kind::kNumeric;
      ++j;
      bool hex = false;
      if (j < text.size() && (text[j] == 'x' || text[j] == 'X')) {
        hex = true;
        ++j;
      }
      const size_t digits_start = j;
      std::uint64_t value = 0;
      while (j < text.size() &&
             (hex ? IsAsciiHexDigit(text[j]) : IsAsciiDigit(text[j]))) {
        const char d = text[j];
        const int dv = IsAsciiDigit(d)    ? d - '0'
                       : (d >= 'a' && d <= 'f') ? d - 'a' + 10
                                                : d - 'A' + 10;
        value = value * (hex ? 16 : 10) + static_cast<std::uint64_t>(dv);
        if (value > 0x10FFFF) {
          value = 0x110000;  // Saturate: out of Unicode range.
        }
        ++j;
      }
      ref.name = std::string(text.substr(digits_start, j - digits_start));
      ref.valid_number = j > digits_start && value <= 0x10FFFF && value > 0;
      ref.terminated = j < text.size() && text[j] == ';';
    } else if (j < text.size() && IsAsciiAlpha(text[j])) {
      ref.kind = EntityRef::Kind::kNamed;
      const size_t name_start = j;
      while (j < text.size() && IsAsciiAlnum(text[j])) {
        ++j;
      }
      ref.name = std::string(text.substr(name_start, j - name_start));
      ref.known = LookupEntity(ref.name).has_value();
      ref.terminated = j < text.size() && text[j] == ';';
    } else {
      ref.kind = EntityRef::Kind::kBareAmp;
    }
    refs.push_back(std::move(ref));
    ++column;  // Only the '&' itself; subsequent chars advance normally.
  }
  return refs;
}

}  // namespace weblint
