#include "html/entities.h"

#include <algorithm>
#include <cstring>

#include "html/scan.h"
#include "html/utf8.h"
#include "util/strings.h"

namespace weblint {

namespace {

struct EntityEntry {
  const char* name;
  std::uint32_t code_point;
};

// The full HTML 4.0 entity set: 24.2 HTMLlat1 (96), 24.3 HTMLsymbol (124),
// 24.4 HTMLspecial (32) — 252 names. Sorted by strcmp for binary search.
constexpr EntityEntry kEntities[] = {
    {"AElig", 198},    {"Aacute", 193},   {"Acirc", 194},    {"Agrave", 192},
    {"Alpha", 913},    {"Aring", 197},    {"Atilde", 195},   {"Auml", 196},
    {"Beta", 914},     {"Ccedil", 199},   {"Chi", 935},      {"Dagger", 8225},
    {"Delta", 916},    {"ETH", 208},      {"Eacute", 201},   {"Ecirc", 202},
    {"Egrave", 200},   {"Epsilon", 917},  {"Eta", 919},      {"Euml", 203},
    {"Gamma", 915},    {"Iacute", 205},   {"Icirc", 206},    {"Igrave", 204},
    {"Iota", 921},     {"Iuml", 207},     {"Kappa", 922},    {"Lambda", 923},
    {"Mu", 924},       {"Ntilde", 209},   {"Nu", 925},       {"OElig", 338},
    {"Oacute", 211},   {"Ocirc", 212},    {"Ograve", 210},   {"Omega", 937},
    {"Omicron", 927},  {"Oslash", 216},   {"Otilde", 213},   {"Ouml", 214},
    {"Phi", 934},      {"Pi", 928},       {"Prime", 8243},   {"Psi", 936},
    {"Rho", 929},      {"Scaron", 352},   {"Sigma", 931},    {"THORN", 222},
    {"Tau", 932},      {"Theta", 920},    {"Uacute", 218},   {"Ucirc", 219},
    {"Ugrave", 217},   {"Upsilon", 933},  {"Uuml", 220},     {"Xi", 926},
    {"Yacute", 221},   {"Yuml", 376},     {"Zeta", 918},     {"aacute", 225},
    {"acirc", 226},    {"acute", 180},    {"aelig", 230},    {"agrave", 224},
    {"alefsym", 8501}, {"alpha", 945},    {"amp", 38},       {"and", 8743},
    {"ang", 8736},     {"aring", 229},    {"asymp", 8776},   {"atilde", 227},
    {"auml", 228},     {"bdquo", 8222},   {"beta", 946},     {"brvbar", 166},
    {"bull", 8226},    {"cap", 8745},     {"ccedil", 231},   {"cedil", 184},
    {"cent", 162},     {"chi", 967},      {"circ", 710},     {"clubs", 9827},
    {"cong", 8773},    {"copy", 169},     {"crarr", 8629},   {"cup", 8746},
    {"curren", 164},   {"dArr", 8659},    {"dagger", 8224},  {"darr", 8595},
    {"deg", 176},      {"delta", 948},    {"diams", 9830},   {"divide", 247},
    {"eacute", 233},   {"ecirc", 234},    {"egrave", 232},   {"empty", 8709},
    {"emsp", 8195},    {"ensp", 8194},    {"epsilon", 949},  {"equiv", 8801},
    {"eta", 951},      {"eth", 240},      {"euml", 235},     {"euro", 8364},
    {"exist", 8707},   {"fnof", 402},     {"forall", 8704},  {"frac12", 189},
    {"frac14", 188},   {"frac34", 190},   {"frasl", 8260},   {"gamma", 947},
    {"ge", 8805},      {"gt", 62},        {"hArr", 8660},    {"harr", 8596},
    {"hearts", 9829},  {"hellip", 8230},  {"iacute", 237},   {"icirc", 238},
    {"iexcl", 161},    {"igrave", 236},   {"image", 8465},   {"infin", 8734},
    {"int", 8747},     {"iota", 953},     {"iquest", 191},   {"isin", 8712},
    {"iuml", 239},     {"kappa", 954},    {"lArr", 8656},    {"lambda", 955},
    {"lang", 9001},    {"laquo", 171},    {"larr", 8592},    {"lceil", 8968},
    {"ldquo", 8220},   {"le", 8804},      {"lfloor", 8970},  {"lowast", 8727},
    {"loz", 9674},     {"lrm", 8206},     {"lsaquo", 8249},  {"lsquo", 8216},
    {"lt", 60},        {"macr", 175},     {"mdash", 8212},   {"micro", 181},
    {"middot", 183},   {"minus", 8722},   {"mu", 956},       {"nabla", 8711},
    {"nbsp", 160},     {"ndash", 8211},   {"ne", 8800},      {"ni", 8715},
    {"not", 172},      {"notin", 8713},   {"nsub", 8836},    {"ntilde", 241},
    {"nu", 957},       {"oacute", 243},   {"ocirc", 244},    {"oelig", 339},
    {"ograve", 242},   {"oline", 8254},   {"omega", 969},    {"omicron", 959},
    {"oplus", 8853},   {"or", 8744},      {"ordf", 170},     {"ordm", 186},
    {"oslash", 248},   {"otilde", 245},   {"otimes", 8855},  {"ouml", 246},
    {"para", 182},     {"part", 8706},    {"permil", 8240},  {"perp", 8869},
    {"phi", 966},      {"pi", 960},       {"piv", 982},      {"plusmn", 177},
    {"pound", 163},    {"prime", 8242},   {"prod", 8719},    {"prop", 8733},
    {"psi", 968},      {"quot", 34},      {"rArr", 8658},    {"radic", 8730},
    {"rang", 9002},    {"raquo", 187},    {"rarr", 8594},    {"rceil", 8969},
    {"rdquo", 8221},   {"real", 8476},    {"reg", 174},      {"rfloor", 8971},
    {"rho", 961},      {"rlm", 8207},     {"rsaquo", 8250},  {"rsquo", 8217},
    {"sbquo", 8218},   {"scaron", 353},   {"sdot", 8901},    {"sect", 167},
    {"shy", 173},      {"sigma", 963},    {"sigmaf", 962},   {"sim", 8764},
    {"spades", 9824},  {"sub", 8834},     {"sube", 8838},    {"sum", 8721},
    {"sup", 8835},     {"sup1", 185},     {"sup2", 178},     {"sup3", 179},
    {"supe", 8839},    {"szlig", 223},    {"tau", 964},      {"there4", 8756},
    {"theta", 952},    {"thetasym", 977}, {"thinsp", 8201},  {"thorn", 254},
    {"tilde", 732},    {"times", 215},    {"trade", 8482},   {"uArr", 8657},
    {"uacute", 250},   {"uarr", 8593},    {"ucirc", 251},    {"ugrave", 249},
    {"uml", 168},      {"upsih", 978},    {"upsilon", 965},  {"uuml", 252},
    {"weierp", 8472},  {"xi", 958},       {"yacute", 253},   {"yen", 165},
    {"yuml", 255},     {"zeta", 950},     {"zwj", 8205},     {"zwnj", 8204},
};

constexpr size_t kEntityCount = sizeof(kEntities) / sizeof(kEntities[0]);

}  // namespace

std::optional<std::uint32_t> LookupEntity(std::string_view name) {
  const EntityEntry* begin = kEntities;
  const EntityEntry* end = kEntities + kEntityCount;
  const EntityEntry* it =
      std::lower_bound(begin, end, name, [](const EntityEntry& e, std::string_view key) {
        return std::string_view(e.name) < key;
      });
  if (it != end && std::string_view(it->name) == name) {
    return it->code_point;
  }
  return std::nullopt;
}

size_t EntityCount() { return kEntityCount; }

namespace {

// windows-1252 bytes 80-9F as Unicode (WHATWG numeric-reference remap).
// Five holes (81, 8D, 8F, 90, 9D) map to themselves.
constexpr std::uint32_t kWindows1252[32] = {
    0x20AC, 0x0081, 0x201A, 0x0192, 0x201E, 0x2026, 0x2020, 0x2021,
    0x02C6, 0x2030, 0x0160, 0x2039, 0x0152, 0x008D, 0x017D, 0x008F,
    0x0090, 0x2018, 0x2019, 0x201C, 0x201D, 0x2022, 0x2013, 0x2014,
    0x02DC, 0x2122, 0x0161, 0x203A, 0x0153, 0x009D, 0x017E, 0x0178,
};

}  // namespace

DecodedNumber DecodeNumericReference(std::uint64_t value) {
  DecodedNumber d;
  if (value == 0 || value > 0x10FFFF || (value >= 0xD800 && value <= 0xDFFF)) {
    return d;  // U+FFFD, invalid.
  }
  d.valid = true;
  if (value >= 0x80 && value <= 0x9F) {
    d.code_point = kWindows1252[value - 0x80];
    d.remapped = d.code_point != value;
  } else {
    d.code_point = static_cast<std::uint32_t>(value);
  }
  return d;
}

std::vector<EntityRef> ScanEntities(std::string_view text, SourceLocation base) {
  std::vector<EntityRef> refs;
  std::uint32_t line = base.line;
  std::uint32_t column = base.column;
  size_t i = 0;
  while (i < text.size()) {
    // Hop to the next '&' word-at-a-time; the scan batches the newline
    // bookkeeping for the skipped run.
    const ScanResult r = ScanRun(text, i, text.size(), '&', '&');
    line += r.newlines;
    if (r.last_reset != std::string_view::npos) {
      column = static_cast<std::uint32_t>(r.stop - r.last_reset);
    } else {
      column += static_cast<std::uint32_t>(r.stop - i);
    }
    i = r.stop;
    if (i >= text.size()) {
      break;
    }

    EntityRef ref;
    ref.location = SourceLocation{line, column};
    ref.offset = i;
    size_t j = i + 1;
    if (j < text.size() && text[j] == '#') {
      // Numeric reference: &#123; or &#x7F;.
      ref.kind = EntityRef::Kind::kNumeric;
      ++j;
      bool hex = false;
      if (j < text.size() && (text[j] == 'x' || text[j] == 'X')) {
        hex = true;
        ++j;
      }
      const size_t digits_start = j;
      std::uint64_t value = 0;
      while (j < text.size() &&
             (hex ? IsAsciiHexDigit(text[j]) : IsAsciiDigit(text[j]))) {
        const char d = text[j];
        const int dv = IsAsciiDigit(d)    ? d - '0'
                       : (d >= 'a' && d <= 'f') ? d - 'a' + 10
                                                : d - 'A' + 10;
        value = value * (hex ? 16 : 10) + static_cast<std::uint64_t>(dv);
        if (value > 0x10FFFF) {
          value = 0x110000;  // Saturate: out of Unicode range.
        }
        ++j;
      }
      ref.name = text.substr(digits_start, j - digits_start);
      if (j > digits_start) {
        const DecodedNumber decoded = DecodeNumericReference(value);
        ref.code_point = decoded.code_point;
        ref.valid_number = decoded.valid;
        ref.remapped = decoded.remapped;
      }
      ref.terminated = j < text.size() && text[j] == ';';
      ref.length = (j - i) + (ref.terminated ? 1 : 0);
    } else if (j < text.size() && IsAsciiAlpha(text[j])) {
      ref.kind = EntityRef::Kind::kNamed;
      const size_t name_start = j;
      while (j < text.size() && IsAsciiAlnum(text[j])) {
        ++j;
      }
      ref.name = text.substr(name_start, j - name_start);
      if (const auto code_point = LookupEntity(ref.name)) {
        ref.known = true;
        ref.code_point = *code_point;
      }
      ref.terminated = j < text.size() && text[j] == ';';
      ref.length = (j - i) + (ref.terminated ? 1 : 0);
    } else {
      ref.kind = EntityRef::Kind::kBareAmp;
    }
    refs.push_back(std::move(ref));
    ++column;  // Only the '&' itself; subsequent chars advance normally.
    ++i;
  }
  return refs;
}

std::string DecodeCharacterReferences(std::string_view text) {
  const std::vector<EntityRef> refs = ScanEntities(text, SourceLocation{});
  std::string out;
  out.reserve(text.size());
  size_t copied = 0;
  for (const EntityRef& ref : refs) {
    const bool decodes =
        (ref.kind == EntityRef::Kind::kNamed && ref.known) ||
        (ref.kind == EntityRef::Kind::kNumeric && !ref.name.empty());
    if (!decodes) {
      continue;  // Unknown name, digitless "&#", bare '&': stays literal.
    }
    out.append(text.substr(copied, ref.offset - copied));
    AppendUtf8(ref.code_point, &out);
    copied = ref.offset + ref.length;
  }
  out.append(text.substr(copied));
  return out;
}

}  // namespace weblint
