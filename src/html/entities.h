// HTML 4.0 character entity knowledge (the HTMLlat1, HTMLsymbol, and
// HTMLspecial entity sets) plus a scanner that classifies every '&' use in
// text content for the unknown-entity / unterminated-entity /
// literal-metacharacter checks.
#ifndef WEBLINT_HTML_ENTITIES_H_
#define WEBLINT_HTML_ENTITIES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/source_location.h"

namespace weblint {

// Looks up a named entity ("amp", "nbsp", "Auml"). Entity names are
// case-SENSITIVE per SGML ("AMP" is not an HTML 4.0 entity). Returns the
// Unicode code point, or nullopt if unknown.
std::optional<std::uint32_t> LookupEntity(std::string_view name);

// Number of named entities known (HTML 4.0 defines 252).
size_t EntityCount();

// One '&' occurrence found in character data.
struct EntityRef {
  enum class Kind {
    kNamed,      // &name; or &name (see `terminated`)
    kNumeric,    // &#123; or &#x1F;
    kBareAmp,    // '&' followed by something that cannot start a reference
  };
  Kind kind = Kind::kBareAmp;
  std::string name;          // For kNamed: the name; for kNumeric: the digits.
  bool terminated = false;   // A ';' followed the reference.
  bool known = false;        // kNamed: name is in the HTML 4.0 table.
  bool valid_number = false; // kNumeric: parsed and in Unicode range.
  SourceLocation location;   // Absolute position of the '&'.
};

// Scans `text` (one text token's content) for entity references. `base` is
// the absolute location of text[0]; positions in the result are absolute.
std::vector<EntityRef> ScanEntities(std::string_view text, SourceLocation base);

}  // namespace weblint

#endif  // WEBLINT_HTML_ENTITIES_H_
