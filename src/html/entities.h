// HTML 4.0 character entity knowledge (the HTMLlat1, HTMLsymbol, and
// HTMLspecial entity sets) plus a scanner that classifies every '&' use in
// text content for the unknown-entity / unterminated-entity /
// literal-metacharacter checks, and the numeric-reference decoding rules
// (WHATWG §13.2.5.80: out-of-range, surrogate and zero references become
// U+FFFD; C1 controls are remapped through windows-1252).
#ifndef WEBLINT_HTML_ENTITIES_H_
#define WEBLINT_HTML_ENTITIES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/source_location.h"

namespace weblint {

// Looks up a named entity ("amp", "nbsp", "Auml"). Entity names are
// case-SENSITIVE per SGML ("AMP" is not an HTML 4.0 entity). Returns the
// Unicode code point, or nullopt if unknown.
std::optional<std::uint32_t> LookupEntity(std::string_view name);

// Number of named entities known (HTML 4.0 defines 252).
size_t EntityCount();

// What a numeric character reference's value decodes to under the WHATWG
// rules. Zero, surrogates (D800-DFFF) and values above 10FFFF are parse
// errors that decode to U+FFFD; C1 controls (80-9F) decode through the
// windows-1252 mapping (legacy pages write &#151; meaning an em dash).
struct DecodedNumber {
  std::uint32_t code_point = 0xFFFD;
  bool valid = false;    // False for the U+FFFD error cases above.
  bool remapped = false; // True when the windows-1252 remap changed the value.
};
DecodedNumber DecodeNumericReference(std::uint64_t value);

// One '&' occurrence found in character data.
struct EntityRef {
  enum class Kind {
    kNamed,      // &name; or &name (see `terminated`)
    kNumeric,    // &#123; or &#x1F;
    kBareAmp,    // '&' followed by something that cannot start a reference
  };
  Kind kind = Kind::kBareAmp;
  // For kNamed: the name; for kNumeric: the digits. Views into the scanned
  // text — valid for as long as the caller keeps that buffer alive.
  std::string_view name;
  bool terminated = false;   // A ';' followed the reference.
  bool known = false;        // kNamed: name is in the HTML 4.0 table.
  bool valid_number = false; // kNumeric: digits present and decodes cleanly
                             // (zero / surrogate / out-of-range fail).
  bool remapped = false;     // kNumeric: windows-1252 C1 remap applied.
  // Decoded scalar: the table value for known named refs, the (possibly
  // remapped, possibly U+FFFD) value for numeric refs with digits.
  std::uint32_t code_point = 0;
  size_t offset = 0;         // Index of the '&' in the scanned text.
  size_t length = 1;         // Bytes from '&' through the reference's end
                             // (';' included when terminated).
  SourceLocation location;   // Absolute position of the '&'.
};

// Scans `text` (one text token's content) for entity references. `base` is
// the absolute location of text[0]; positions in the result are absolute.
std::vector<EntityRef> ScanEntities(std::string_view text, SourceLocation base);

// Decodes character references in `text` the way a browser would: known
// named refs (terminated or not) and numeric refs with digits are replaced
// by the UTF-8 encoding of their decoded scalar (U+FFFD for the invalid
// numeric cases); unknown names, digitless "&#", and bare '&' stay literal.
std::string DecodeCharacterReferences(std::string_view text);

}  // namespace weblint

#endif  // WEBLINT_HTML_ENTITIES_H_
