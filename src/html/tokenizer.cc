#include "html/tokenizer.h"

#include <algorithm>
#include <cstring>

#include "html/char_class.h"
#include "html/utf8.h"
#include "util/strings.h"

namespace weblint {

namespace {

// Upper bound on the closing-quote search: a quote that has not closed
// within this window is treated as a runaway (authoring error). The window
// bounds worst-case rescanning when a tag contains several runaway quotes;
// legitimate values far larger than any real-world attribute still fit.
constexpr size_t kMaxQuoteLookahead = 65536;

bool IsNameStart(char c) { return HasCharClass(c, kCharNameStart); }
bool IsNameChar(char c) { return HasCharClass(c, kCharName); }

// Index of the next `c` in s[from, to), or npos.
size_t FindByte(std::string_view s, char c, size_t from, size_t to) {
  if (from >= to) {
    return std::string_view::npos;
  }
  const void* hit = std::memchr(s.data() + from, c, to - from);
  return hit != nullptr ? static_cast<size_t>(static_cast<const char*>(hit) - s.data())
                        : std::string_view::npos;
}

// Canonical lowercase name if `name` is an element whose content is raw
// text up to its end tag, empty otherwise.
std::string_view RawTextElementFor(std::string_view name) {
  if (IEquals(name, "script")) {
    return "script";
  }
  if (IEquals(name, "style")) {
    return "style";
  }
  if (IEquals(name, "xmp")) {
    return "xmp";
  }
  if (IEquals(name, "listing")) {
    return "listing";
  }
  return {};
}

// WHATWG terminator after an end-tag or double-escape name: whitespace,
// '/', or '>'.
bool IsTagNameTerminator(char c) { return IsAsciiSpace(c) || c == '/' || c == '>'; }

}  // namespace

Tokenizer::Tokenizer(std::string_view input) : input_(input) {}

char Tokenizer::Peek(size_t ahead) const {
  return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
}

char Tokenizer::Take() {
  const char c = input_[pos_++];
  if (c == '\n' || (c == '\r' && Peek() != '\n')) {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Tokenizer::TakeN(size_t n) { AdvanceTo(std::min(pos_ + n, input_.size())); }

void Tokenizer::AdvanceTo(size_t end) {
  // Short runs (tag names, attribute separators) are cheaper byte-wise than
  // paying two memchr setups; long runs win big from the batched scan.
  constexpr size_t kShortRun = 32;
  if (end - pos_ <= kShortRun) {
    for (size_t i = pos_; i < end; ++i) {
      const char c = input_[i];
      if (c == '\n' ||
          (c == '\r' && (i + 1 >= input_.size() || input_[i + 1] != '\n'))) {
        ++line_;
        column_ = 1;
      } else {
        ++column_;
      }
    }
    pos_ = end;
    return;
  }
  constexpr size_t npos = std::string_view::npos;
  size_t next_lf = FindByte(input_, '\n', pos_, end);
  size_t next_cr = FindByte(input_, '\r', pos_, end);
  size_t last_reset = npos;  // Last byte that reset the column to 1.
  while (next_lf != npos || next_cr != npos) {
    if (next_lf < next_cr) {
      ++line_;
      last_reset = next_lf;
      next_lf = FindByte(input_, '\n', next_lf + 1, end);
    } else {
      // '\r' advances the line only when not followed by '\n' (Take()'s
      // CRLF rule). The lookahead deliberately reads past `end` — it must
      // match Peek(), which sees the full input.
      if (next_cr + 1 >= input_.size() || input_[next_cr + 1] != '\n') {
        ++line_;
        last_reset = next_cr;
      }
      next_cr = FindByte(input_, '\r', next_cr + 1, end);
    }
  }
  if (last_reset != npos) {
    column_ = static_cast<std::uint32_t>(end - last_reset);
  } else {
    column_ += static_cast<std::uint32_t>(end - pos_);
  }
  pos_ = end;
}

void Tokenizer::ApplyScan(const ScanResult& r) {
  line_ += r.newlines;
  if (r.last_reset != std::string_view::npos) {
    column_ = static_cast<std::uint32_t>(r.stop - r.last_reset);
  } else {
    column_ += static_cast<std::uint32_t>(r.stop - pos_);
  }
  pos_ = r.stop;
}

bool Tokenizer::LookingAt(std::string_view s) const {
  return input_.substr(pos_).starts_with(s);
}

bool Tokenizer::LookingAtIgnoreCase(std::string_view s) const {
  if (pos_ + s.size() > input_.size()) {
    return false;
  }
  return IEquals(input_.substr(pos_, s.size()), s);
}

bool Tokenizer::IsAppropriateEndTag(size_t i, std::string_view lower_element) const {
  // Caller guarantees input_[i] == '<'.
  if (i + 1 >= input_.size() || input_[i + 1] != '/') {
    return false;
  }
  if (i + 2 + lower_element.size() > input_.size()) {
    return false;
  }
  if (!IEquals(input_.substr(i + 2, lower_element.size()), lower_element)) {
    return false;
  }
  const size_t after = i + 2 + lower_element.size();
  return after >= input_.size() || IsTagNameTerminator(input_[after]);
}

bool Tokenizer::IsDoubleEscapeOpen(size_t i) const {
  // Caller guarantees input_[i] == '<'.
  constexpr std::string_view kScript = "script";
  if (i + 1 + kScript.size() > input_.size()) {
    return false;
  }
  if (!IEquals(input_.substr(i + 1, kScript.size()), kScript)) {
    return false;
  }
  const size_t after = i + 1 + kScript.size();
  return after >= input_.size() || IsTagNameTerminator(input_[after]);
}

void Tokenizer::CheckUtf8(Token* out, bool has_high) {
  if (!has_high) {
    return;
  }
  SourceLocation where;
  if (!ValidateUtf8(out->text, out->location, &where)) {
    out->invalid_utf8 = true;
    out->invalid_utf8_at = where;
  }
}

bool Tokenizer::Next(Token* out) {
  if (AtEnd()) {
    return false;
  }
  out->Reset();
  out->location = location();

  if (plaintext_mode_) {
    LexPlaintext(out);
    return true;
  }

  if (!raw_text_element_.empty()) {
    const size_t start = pos_;
    LexRawText(out);
    if (pos_ > start) {
      return true;
    }
    // Zero-length raw content: fall through to lex the end tag normally.
    out->Reset();
    out->location = location();
  }

  if (Peek() == '<') {
    return LexMarkup(out), true;
  }
  LexText(out);
  return true;
}

void Tokenizer::LexText(Token* out) {
  // A text run ends only at '<' or EOF; '&', NUL and non-ASCII bytes are
  // ordinary text. One ScanRun pass finds the boundary, counts the
  // newlines, and collects the content facts.
  out->kind = TokenKind::kText;
  const ScanResult r = ScanRun(input_, pos_, input_.size(), '<', '<');
  out->text = input_.substr(pos_, r.stop - pos_);
  out->has_amp = r.has_amp;
  out->has_nul = r.has_nul;
  CheckUtf8(out, r.has_high);
  ApplyScan(r);
}

void Tokenizer::LexPlaintext(Token* out) {
  // PLAINTEXT swallows the rest of the file; '<' is ordinary content.
  const size_t start = pos_;
  bool has_amp = false;
  bool has_nul = false;
  bool has_high = false;
  while (pos_ < input_.size()) {
    const ScanResult r = ScanRun(input_, pos_, input_.size(), '<', '<');
    has_amp |= r.has_amp;
    has_nul |= r.has_nul;
    has_high |= r.has_high;
    ApplyScan(r);
    if (!AtEnd()) {
      Take();  // The '<' itself.
    }
  }
  out->kind = TokenKind::kText;
  out->raw_text = true;
  out->text = input_.substr(start);
  out->has_amp = has_amp;
  out->has_nul = has_nul;
  CheckUtf8(out, has_high);
}

void Tokenizer::LexRawText(Token* out) {
  // Raw text runs to the element's appropriate end tag ("</name" followed
  // by whitespace, '/', '>' or EOF — "</namex" stays content). SCRIPT
  // additionally implements the WHATWG escaped / double-escaped states so
  // commented-out scripts keep their inner "</script>" as content:
  //
  //   state 0 (script data):     "<!--" -> 1;   "</script" TERM ends element
  //   state 1 (escaped):         "<script" TERM -> 2; "-->" -> 0;
  //                              "</script" TERM still ends the element
  //   state 2 (double-escaped):  "</script" TERM -> 1 (text stays content);
  //                              "-->" -> 0
  //
  // Only '<' (and '-' for script) can change state, so the scan hops
  // between those stop bytes word-at-a-time and handles the few bytes at
  // each candidate position exactly.
  const std::string_view element = raw_text_element_;
  const bool is_script = element == "script";
  const char stop2 = is_script ? '-' : '<';
  const size_t start = pos_;
  bool has_amp = false;
  bool has_nul = false;
  bool has_high = false;
  int state = 0;
  while (pos_ < input_.size()) {
    const ScanResult r = ScanRun(input_, pos_, input_.size(), '<', stop2);
    has_amp |= r.has_amp;
    has_nul |= r.has_nul;
    has_high |= r.has_high;
    ApplyScan(r);
    if (AtEnd()) {
      break;
    }
    if (Peek() == '<') {
      if (IsAppropriateEndTag(pos_, element)) {
        if (state == 2) {
          // "</script" in double-escaped data returns to the escaped
          // state; the bytes stay content.
          AdvanceNoNewline(pos_ + 2 + element.size());
          state = 1;
          continue;
        }
        break;
      }
      if (is_script) {
        if (state == 0 && LookingAt("<!--")) {
          AdvanceNoNewline(pos_ + 4);
          state = 1;
          continue;
        }
        if (state == 1 && IsDoubleEscapeOpen(pos_)) {
          AdvanceNoNewline(pos_ + 7);  // "<script"
          state = 2;
          continue;
        }
      }
      Take();  // A '<' that opens nothing: ordinary raw content.
      continue;
    }
    // Script only: ScanRun stopped at '-'.
    if (state != 0 && LookingAt("-->")) {
      AdvanceNoNewline(pos_ + 3);
      state = 0;
      continue;
    }
    Take();
  }
  raw_text_element_ = {};
  out->kind = TokenKind::kText;
  out->raw_text = true;
  out->text = input_.substr(start, pos_ - start);
  out->has_amp = has_amp;
  out->has_nul = has_nul;
  CheckUtf8(out, has_high);
}

bool Tokenizer::LexMarkup(Token* out) {
  // Invariant: Peek() == '<'.
  const char c1 = Peek(1);
  if (c1 == '/' && IsNameStart(Peek(2))) {
    LexTag(out, /*is_end_tag=*/true);
    return true;
  }
  if (IsNameStart(c1)) {
    LexTag(out, /*is_end_tag=*/false);
    return true;
  }
  if (c1 == '!') {
    if (LookingAt("<!--")) {
      LexComment(out);
    } else {
      LexDoctypeOrDeclaration(out);
    }
    return true;
  }
  if (c1 == '?') {
    LexProcessing(out);
    return true;
  }
  // A '<' that opens nothing: stray (weblint's "unexpected-open").
  out->kind = TokenKind::kStrayLt;
  Take();
  return true;
}

void Tokenizer::LexComment(Token* out) {
  out->kind = TokenKind::kComment;
  TakeN(4);  // "<!--"
  const size_t start = pos_;
  const SourceLocation text_base = location();
  size_t text_end = input_.size();
  bool closed = false;
  bool has_high = false;
  // Only '-' (possible "--" close) and '<' (possible nested "<!--") can
  // change state; the scan hops between them word-at-a-time.
  while (!AtEnd()) {
    const ScanResult r = ScanRun(input_, pos_, input_.size(), '-', '<');
    has_high |= r.has_high;
    ApplyScan(r);
    if (AtEnd()) {
      break;
    }
    if (LookingAt("<!--")) {
      out->nested_comment = true;
      TakeN(4);
      continue;
    }
    if (LookingAt("--")) {
      // SGML comment close is "--" (+ optional whitespace) then ">".
      size_t j = pos_ + 2;
      while (j < input_.size() && IsAsciiSpace(input_[j])) {
        ++j;
      }
      if (j < input_.size() && input_[j] == '>') {
        text_end = pos_;
        out->comment_whitespace_close = (j != pos_ + 2);
        TakeN(j + 1 - pos_);
        closed = true;
        break;
      }
    }
    Take();
  }
  if (!closed) {
    out->unterminated_comment = true;
    text_end = input_.size();
  }
  out->text = input_.substr(start, text_end - start);
  if (has_high) {
    SourceLocation where;
    if (!ValidateUtf8(out->text, text_base, &where)) {
      out->invalid_utf8 = true;
      out->invalid_utf8_at = where;
    }
  }
}

void Tokenizer::LexDoctypeOrDeclaration(Token* out) {
  TakeN(2);  // "<!"
  const bool is_doctype = LookingAtIgnoreCase("doctype");
  out->kind = is_doctype ? TokenKind::kDoctype : TokenKind::kDeclaration;
  if (is_doctype) {
    TakeN(7);
  }
  // Consume up to '>' with awareness of quoted strings (DTD identifiers).
  const size_t start = pos_;
  char quote = '\0';
  while (!AtEnd()) {
    const char c = Peek();
    if (quote != '\0') {
      if (c == quote) {
        quote = '\0';
      }
      Take();
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      Take();
      continue;
    }
    if (c == '>') {
      break;
    }
    Take();
  }
  out->text = Trim(input_.substr(start, pos_ - start));
  if (!AtEnd()) {
    Take();  // '>'
  } else {
    out->unterminated_tag = true;
  }
}

void Tokenizer::LexProcessing(Token* out) {
  out->kind = TokenKind::kProcessing;
  TakeN(2);  // "<?"
  const size_t gt = FindByte(input_, '>', pos_, input_.size());
  const size_t end = gt == std::string_view::npos ? input_.size() : gt;
  out->text = input_.substr(pos_, end - pos_);
  AdvanceTo(end);
  if (!AtEnd()) {
    Take();
  } else {
    out->unterminated_tag = true;
  }
}

void Tokenizer::LexTag(Token* out, bool is_end_tag) {
  out->kind = is_end_tag ? TokenKind::kEndTag : TokenKind::kStartTag;
  Take();  // '<'
  const size_t raw_start = pos_;
  if (is_end_tag) {
    Take();  // '/'
  }
  size_t name_end = pos_;
  while (name_end < input_.size() && IsNameChar(input_[name_end])) {
    ++name_end;
  }
  out->name = input_.substr(pos_, name_end - pos_);
  AdvanceNoNewline(name_end);  // Name chars exclude whitespace.

  LexAttributes(out);

  // Raw tag text, as written, for diagnostics. pos_ is just past '>' (or at
  // EOF); back up over the '>' if we consumed one.
  size_t raw_end = pos_;
  if (!out->unterminated_tag && !out->closed_by_lt && raw_end > raw_start) {
    --raw_end;  // The '>' itself.
  }
  out->raw = input_.substr(raw_start, raw_end - raw_start);

  // Quote-parity heuristic (the paper's odd-quotes message counts quotes in
  // the tag text). Only '"' is counted: apostrophes appear legitimately in
  // double-quoted prose values.
  size_t dquotes = 0;
  for (const char c : out->raw) {
    if (c == '"') {
      ++dquotes;
    }
  }
  if (dquotes % 2 != 0) {
    out->odd_quotes = true;
  }

  if (!is_end_tag && !out->net_slash) {
    const std::string_view raw_element = RawTextElementFor(out->name);
    if (!raw_element.empty()) {
      raw_text_element_ = raw_element;
    } else if (IEquals(out->name, "plaintext")) {
      plaintext_mode_ = true;
    }
  }
}

void Tokenizer::LexAttributes(Token* out) {
  while (true) {
    SkipSpaceRun();
    if (AtEnd()) {
      out->unterminated_tag = true;
      return;
    }
    const char c = Peek();
    if (c == '>') {
      Take();
      return;
    }
    if (c == '/') {
      // NET-style or XML-style slash: <BR/> or <EM/ — weblint's
      // spurious-slash territory. It is not an attribute.
      out->net_slash = true;
      Take();
      continue;
    }
    if (c == '<') {
      // A new tag is opening inside this one; assume the '>' was forgotten.
      out->closed_by_lt = true;
      return;
    }

    Attribute attr;
    attr.location = location();
    // Attribute name: up to whitespace, '=', '>', or '<' (table-driven run
    // scan).
    size_t name_end = pos_;
    while (name_end < input_.size() && !HasCharClass(input_[name_end], kCharAttrNameEnd)) {
      ++name_end;
    }
    attr.name = input_.substr(pos_, name_end - pos_);
    AdvanceNoNewline(name_end);  // Terminators include all whitespace.
    SkipSpaceRun();
    if (!AtEnd() && Peek() == '=') {
      Take();
      SkipSpaceRun();
      attr.has_value = true;
      if (!AtEnd() && (Peek() == '"' || Peek() == '\'')) {
        const char quote = Take();
        attr.quote = quote == '"' ? QuoteStyle::kDouble : QuoteStyle::kSingle;
        attr.value = LexQuotedValue(quote, &attr);
      } else {
        attr.quote = QuoteStyle::kNone;
        size_t value_end = pos_;
        while (value_end < input_.size() &&
               !HasCharClass(input_[value_end], kCharUnquotedValueEnd)) {
          ++value_end;
        }
        attr.value = input_.substr(pos_, value_end - pos_);
        AdvanceNoNewline(value_end);  // Terminators include all whitespace.
      }
    }
    if (!attr.name.empty() || attr.has_value) {
      out->attributes.push_back(attr);
    }
  }
}

void Tokenizer::SkipSpaceRun() {
  size_t end = pos_;
  while (end < input_.size() && HasCharClass(input_[end], kCharSpace)) {
    ++end;
  }
  if (end != pos_) {
    AdvanceTo(end);
  }
}

std::string_view Tokenizer::LexQuotedValue(char quote, Attribute* attr) {
  // Bounded lookahead for the closing quote. The search aborts at '<' (a new
  // tag opening almost certainly means the quote ran away) or after a fixed
  // window. Legitimate values may contain '>' and newlines, so neither stops
  // the search.
  const size_t limit = std::min(input_.size(), pos_ + kMaxQuoteLookahead);
  const ScanResult r = ScanRun(input_, pos_, limit, quote, '<');
  if (r.stop < limit && input_[r.stop] == quote) {
    const std::string_view value = input_.substr(pos_, r.stop - pos_);
    ApplyScan(r);
    Take();  // Closing quote.
    return value;
  }

  // Recovery: treat the value as unquoted — it ends at whitespace or '>'.
  // The speculative scan above is discarded; pos_ never moved.
  attr->unterminated_quote = true;
  size_t end = pos_;
  while (end < input_.size() && !HasCharClass(input_[end], kCharUnquotedValueEnd)) {
    ++end;
  }
  const std::string_view value = input_.substr(pos_, end - pos_);
  AdvanceTo(end);
  return value;
}

std::vector<Token> TokenizeAll(std::string_view input) {
  Tokenizer tokenizer(input);
  std::vector<Token> tokens;
  Token token;
  while (tokenizer.Next(&token)) {
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace weblint
