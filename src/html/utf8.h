// Streaming UTF-8 validation via Hoehrmann's table-driven DFA, plus the
// small encoder the entity decoder needs.
//
// The decoder is the classic one-lookup-per-byte automaton: a 256-entry
// class table folds each byte into one of 12 character classes, and a
// transition table maps (state, class) -> state. kUtf8Accept means "at a
// code-point boundary"; kUtf8Reject is reached on the first byte that can
// neither continue nor begin a well-formed sequence. The tables encode the
// full WHATWG/RFC 3629 definition: overlong forms (C0/C1 leads, E0 80-9F,
// F0 80-8F), surrogates (ED A0-BF) and code points above U+10FFFF (F4 90+,
// F5-FF) all reject — they never merely decode to the wrong scalar.
//
// Validation is flag-only (weblint reports malformation, it does not
// transcode), so the tokenizer needs just "is this token's text valid, and
// if not, where does the first bad sequence start?". Columns in the answer
// count code points, not bytes — the whole reason to decode rather than
// merely classify.
#ifndef WEBLINT_HTML_UTF8_H_
#define WEBLINT_HTML_UTF8_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/source_location.h"

namespace weblint {

inline constexpr std::uint32_t kUtf8Accept = 0;
inline constexpr std::uint32_t kUtf8Reject = 12;

// Byte -> character class. 00-7F:0  80-8F:1  90-9F:9  A0-BF:7  C0-C1:8
// C2-DF:2  E0:10  E1-EC,EE-EF:3  ED:4  F0:11  F1-F3:6  F4:5  F5-FF:8.
inline constexpr std::uint8_t kUtf8ClassTable[256] = {
    // clang-format off
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 00-0F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 10-1F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 20-2F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 30-3F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 40-4F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 50-5F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 60-6F
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // 70-7F
    1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,  // 80-8F
    9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9,  // 90-9F
    7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7,  // A0-AF
    7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7,  // B0-BF
    8, 8, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2,  // C0-CF
    2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2,  // D0-DF
   10, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 4, 3, 3,  // E0-EF
   11, 6, 6, 6, 5, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8,  // F0-FF
    // clang-format on
};

// (state, class) -> state. States are multiples of 12: 0 accept, 12 reject,
// 24/36 expect one/two continuation bytes, 48 E0-restricted, 60
// ED-restricted, 72 F0-restricted, 84 F1-F3, 96 F4-restricted.
inline constexpr std::uint8_t kUtf8Transition[108] = {
    // clang-format off
     0, 12, 24, 36, 60, 96, 84, 12, 12, 12, 48, 72,  // 0:  accept
    12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12,  // 12: reject (sticky)
    12,  0, 12, 12, 12, 12, 12,  0, 12,  0, 12, 12,  // 24: 1 continuation left
    12, 24, 12, 12, 12, 12, 12, 24, 12, 24, 12, 12,  // 36: 2 continuations left
    12, 12, 12, 12, 12, 12, 12, 24, 12, 12, 12, 12,  // 48: after E0 (A0-BF only)
    12, 24, 12, 12, 12, 12, 12, 12, 12, 24, 12, 12,  // 60: after ED (80-9F only)
    12, 12, 12, 12, 12, 12, 12, 36, 12, 36, 12, 12,  // 72: after F0 (90-BF only)
    12, 36, 12, 12, 12, 12, 12, 36, 12, 36, 12, 12,  // 84: after F1-F3 (80-BF)
    12, 36, 12, 12, 12, 12, 12, 12, 12, 12, 12, 12,  // 96: after F4 (80-8F only)
    // clang-format on
};

// Feeds one byte; updates *code_point (valid only when the return value is
// kUtf8Accept) and returns the next state.
inline std::uint32_t Utf8Step(std::uint32_t state, std::uint8_t byte, std::uint32_t* code_point) {
  const std::uint32_t type = kUtf8ClassTable[byte];
  *code_point = state != kUtf8Accept ? (byte & 0x3Fu) | (*code_point << 6)
                                     : (0xFFu >> type) & byte;
  return kUtf8Transition[state + type];
}

// Validates `text` as UTF-8 (NUL and all code points are fine; only
// malformed byte sequences fail). Returns true if valid. On failure sets
// *error_at to the position of the first byte of the first invalid
// sequence. `base` is the location of text[0]; lines advance on '\n' and on
// '\r' not followed by '\n' (matching the tokenizer), and columns count
// code points since the start of the line (or since `base` on its line).
inline bool ValidateUtf8(std::string_view text, SourceLocation base, SourceLocation* error_at) {
  std::uint32_t state = kUtf8Accept;
  std::uint32_t code_point = 0;
  std::uint32_t line = base.line;
  std::uint32_t column = base.column;
  SourceLocation sequence_start{line, column};
  for (size_t i = 0; i < text.size(); ++i) {
    if (state == kUtf8Accept) {
      sequence_start = SourceLocation{line, column};
    }
    state = Utf8Step(state, static_cast<std::uint8_t>(text[i]), &code_point);
    if (state == kUtf8Reject) {
      *error_at = sequence_start;
      return false;
    }
    if (state == kUtf8Accept) {
      if (code_point == '\n' ||
          (code_point == '\r' && (i + 1 >= text.size() || text[i + 1] != '\n'))) {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  }
  if (state != kUtf8Accept) {
    // Truncated sequence at end of text.
    *error_at = sequence_start;
    return false;
  }
  return true;
}

// Appends the UTF-8 encoding of `code_point` (must be a Unicode scalar
// value; callers remap invalid references to U+FFFD first).
inline void AppendUtf8(std::uint32_t code_point, std::string* out) {
  if (code_point < 0x80) {
    out->push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else if (code_point < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

}  // namespace weblint

#endif  // WEBLINT_HTML_UTF8_H_
