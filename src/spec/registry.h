// Registry of composed HTML specs.
//
// Every spec is composed of a base DTD table plus the Netscape and Microsoft
// extension overlays; the extension entries are tagged with their Origin so
// the extension-markup / extension-attribute checks can decide whether to
// warn (the user enables an extension set with `weblint -x netscape`,
// paper §4.5), while still being able to check the extension's attributes.
#ifndef WEBLINT_SPEC_REGISTRY_H_
#define WEBLINT_SPEC_REGISTRY_H_

#include <string_view>
#include <vector>

#include "spec/spec.h"

namespace weblint {

// Returns the composed spec for `id` ("html40" or "html32"), or nullptr for
// an unknown id. Specs are built once and cached for the process lifetime.
const HtmlSpec* FindSpec(std::string_view id);

// The default spec ("By default Weblint will check against HTML 4.0").
const HtmlSpec& DefaultSpec();

// Ids accepted by FindSpec, for --help output.
std::vector<std::string_view> AvailableSpecIds();

}  // namespace weblint

#endif  // WEBLINT_SPEC_REGISTRY_H_
