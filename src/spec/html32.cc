// The HTML 3.2 (Wilbur, W3C REC 14 Jan 1997) table. Smaller than HTML 4.0:
// no frames, no style-sheet attributes beyond what 3.2 reserved, no
// table-section elements, no BUTTON/FIELDSET/OPTGROUP, no intrinsic events.
#include "spec/html32.h"

#include "spec/patterns.h"
#include "spec/spec.h"

namespace weblint {

namespace {

// HTML 3.2 has no class/style/events; most elements take no attributes at
// all beyond what is listed explicitly.
void DefineStructure(SpecBuilder& b) {
  b.Element("html").End(EndTag::kOptional).OnceOnly().Attr("version");
  b.Element("head").End(EndTag::kOptional).Placed(Placement::kTop).OnceOnly();
  b.Element("body")
      .End(EndTag::kOptional)
      .Placed(Placement::kTop)
      .OnceOnly()
      .Attr("background")
      .Attr("bgcolor", kColorPattern)
      .Attr("text", kColorPattern)
      .Attr("link", kColorPattern)
      .Attr("vlink", kColorPattern)
      .Attr("alink", kColorPattern);
  b.Element("title").End(EndTag::kRequired).Placed(Placement::kHead).OnceOnly();
  b.Element("base").End(EndTag::kForbidden).Placed(Placement::kHead).RequiredAttr("href");
  b.Element("meta")
      .End(EndTag::kForbidden)
      .Placed(Placement::kHead)
      .RequiredAttr("content")
      .Attr("name")
      .Attr("http-equiv");
  b.Element("link")
      .End(EndTag::kForbidden)
      .Placed(Placement::kHead)
      .Attr("href")
      .Attr("rel")
      .Attr("rev")
      .Attr("title");
  b.Element("isindex").End(EndTag::kForbidden).Attr("prompt");
  // 3.2 reserved SCRIPT and STYLE for future versions; they are known
  // elements whose content is ignored.
  b.Element("script").End(EndTag::kRequired);
  b.Element("style").End(EndTag::kRequired);
}

void DefineBlocks(SpecBuilder& b) {
  for (const char* h : {"h1", "h2", "h3", "h4", "h5", "h6"}) {
    b.Element(h).End(EndTag::kRequired).Block().Attr("align", kAlignLRCPattern);
  }
  b.Element("address").End(EndTag::kRequired).Block();
  b.Element("p").End(EndTag::kOptional).Block().ClosedBy({"p"}).ClosedByBlock().Attr(
      "align", kAlignLRCPattern);
  b.Element("div").End(EndTag::kRequired).Block().Attr("align", kAlignLRCPattern);
  b.Element("center").End(EndTag::kRequired).Block();
  b.Element("hr")
      .End(EndTag::kForbidden)
      .Block()
      .Attr("align", kAlignLRCPattern)
      .Attr("size", kNumberPattern)
      .Attr("width", kLengthPattern);
  b.Element("hr").FlagAttr("noshade");
  b.Element("br").End(EndTag::kForbidden).Inline().Attr("clear", kBrClearPattern);
  b.Element("pre").End(EndTag::kRequired).Block().PreserveWhitespace().Attr("width",
                                                                            kNumberPattern);
  b.Element("blockquote").End(EndTag::kRequired).Block();
  b.Element("listing").End(EndTag::kRequired).Block().PreserveWhitespace().Deprecated("pre");
  b.Element("xmp").End(EndTag::kRequired).Block().PreserveWhitespace().Deprecated("pre");
  b.Element("plaintext").End(EndTag::kForbidden).Block().Deprecated("pre");
}

void DefineLists(SpecBuilder& b) {
  b.Element("ul")
      .End(EndTag::kRequired)
      .Block()
      .Attr("type", kUlTypePattern)
      .FlagAttr("compact");
  b.Element("ol")
      .End(EndTag::kRequired)
      .Block()
      .Attr("type", kOlTypePattern)
      .Attr("start", kNumberPattern)
      .FlagAttr("compact");
  b.Element("li")
      .End(EndTag::kOptional)
      .Context({"ul", "ol", "menu", "dir"}, /*implied=*/true)
      .ClosedBy({"li"})
      .Attr("type", kLiTypePattern)
      .Attr("value", kNumberPattern);
  b.Element("dl").End(EndTag::kRequired).Block().FlagAttr("compact");
  b.Element("dt").End(EndTag::kOptional).Context({"dl"}, true).ClosedBy({"dt", "dd"});
  b.Element("dd").End(EndTag::kOptional).Context({"dl"}, true).ClosedBy({"dt", "dd"});
  b.Element("dir").End(EndTag::kRequired).Block().FlagAttr("compact");
  b.Element("menu").End(EndTag::kRequired).Block().FlagAttr("compact");
}

void DefineText(SpecBuilder& b) {
  for (const char* name : {"em", "strong", "dfn", "code", "samp", "kbd", "var", "cite", "sub",
                           "sup", "tt", "i", "b", "u", "strike", "big", "small"}) {
    b.Element(name).End(EndTag::kRequired).Inline();
  }
  b.Element("font").End(EndTag::kRequired).Inline().Attr("size").Attr("color", kColorPattern);
  b.Element("basefont").End(EndTag::kForbidden).RequiredAttr("size");
  b.Element("a")
      .End(EndTag::kRequired)
      .Inline()
      .NoSelfNest()
      .Attr("href")
      .Attr("name")
      .Attr("rel")
      .Attr("rev")
      .Attr("title");
  b.Element("img")
      .End(EndTag::kForbidden)
      .Inline()
      .RequiredAttr("src")
      .Attr("alt")
      .Attr("align", kImgAlignPattern)
      .Attr("height", kLengthPattern)
      .Attr("width", kLengthPattern)
      .Attr("border", kLengthPattern)
      .Attr("hspace", kNumberPattern)
      .Attr("vspace", kNumberPattern)
      .Attr("usemap")
      .FlagAttr("ismap");
  b.Element("map").End(EndTag::kRequired).RequiredAttr("name");
  b.Element("area")
      .End(EndTag::kForbidden)
      .Context({"map"})
      .Attr("shape", kShapePattern)
      .Attr("coords")
      .Attr("href")
      .FlagAttr("nohref")
      .Attr("alt");
  b.Element("applet")
      .End(EndTag::kRequired)
      .Inline()
      .RequiredAttr("width", kLengthPattern)
      .RequiredAttr("height", kLengthPattern)
      .Attr("code")
      .Attr("codebase")
      .Attr("alt")
      .Attr("name")
      .Attr("align", kImgAlignPattern)
      .Attr("hspace", kNumberPattern)
      .Attr("vspace", kNumberPattern);
  b.Element("param").End(EndTag::kForbidden).Context({"applet"}).RequiredAttr("name").Attr(
      "value");
}

void DefineTablesAndForms(SpecBuilder& b) {
  b.Element("table")
      .End(EndTag::kRequired)
      .Block()
      .Attr("align", kAlignLRCPattern)
      .Attr("width", kLengthPattern)
      .Attr("border", kNumberPattern)
      .Attr("cellspacing", kLengthPattern)
      .Attr("cellpadding", kLengthPattern);
  b.Element("caption").End(EndTag::kRequired).Context({"table"}).Attr("align", "top|bottom");
  b.Element("tr")
      .End(EndTag::kOptional)
      .Context({"table"}, /*implied=*/true)
      .ClosedBy({"tr"})
      .Attr("align", kAlignLRCPattern)
      .Attr("valign", kValignPattern);
  for (const char* cell : {"td", "th"}) {
    b.Element(cell)
        .End(EndTag::kOptional)
        .Context({"tr"}, /*implied=*/true)
        .ClosedBy({"td", "th", "tr"})
        .Attr("rowspan", kNumberPattern)
        .Attr("colspan", kNumberPattern)
        .Attr("align", kAlignLRCPattern)
        .Attr("valign", kValignPattern)
        .Attr("width", kNumberPattern)
        .Attr("height", kNumberPattern)
        .FlagAttr("nowrap");
  }
  b.Element("form")
      .End(EndTag::kRequired)
      .Block()
      .NoSelfNest()
      .RequiredAttr("action")
      .Attr("method", kMethodPattern)
      .Attr("enctype");
  b.Element("input")
      .End(EndTag::kForbidden)
      .Inline()
      .Context({"form"})
      .Attr("type", kInputTypePattern)
      .Attr("name")
      .Attr("value")
      .FlagAttr("checked")
      .Attr("size")
      .Attr("maxlength", kNumberPattern)
      .Attr("src")
      .Attr("align", kImgAlignPattern);
  b.Element("select")
      .End(EndTag::kRequired)
      .Inline()
      .Context({"form"})
      .RequiredAttr("name")
      .Attr("size", kNumberPattern)
      .FlagAttr("multiple");
  b.Element("option")
      .End(EndTag::kOptional)
      .Context({"select"}, /*implied=*/true)
      .ClosedBy({"option"})
      .FlagAttr("selected")
      .Attr("value");
  b.Element("textarea")
      .End(EndTag::kRequired)
      .Inline()
      .Context({"form"})
      .RequiredAttr("rows", kNumberPattern)
      .RequiredAttr("cols", kNumberPattern)
      .Attr("name");
}

}  // namespace

void DefineHtml32(HtmlSpec* spec) {
  SpecBuilder b(spec);
  DefineStructure(b);
  DefineBlocks(b);
  DefineLists(b);
  DefineText(b);
  DefineTablesAndForms(b);
}

}  // namespace weblint
