// HTML 3.2 table definition (paper §5.5: "This makes it easier to update
// support for different versions of HTML").
#ifndef WEBLINT_SPEC_HTML32_H_
#define WEBLINT_SPEC_HTML32_H_

#include "spec/spec.h"

namespace weblint {

// Populates `spec` with the HTML 3.2 (Wilbur) element and attribute tables.
void DefineHtml32(HtmlSpec* spec);

}  // namespace weblint

#endif  // WEBLINT_SPEC_HTML32_H_
