// Shared attribute-value patterns for the HTML version tables (paper §5.5:
// "legal values for attributes (expressed as regular expressions)").
#ifndef WEBLINT_SPEC_PATTERNS_H_
#define WEBLINT_SPEC_PATTERNS_H_

namespace weblint {

// Colours: #RRGGBB, #RGB, or one of the 16 HTML 4.0 colour names (plus the
// common "grey" spelling). The paper's example flags BGCOLOR="fffff".
inline constexpr char kColorPattern[] =
    "#[0-9a-f]{6}|#[0-9a-f]{3}|aqua|black|blue|fuchsia|gray|grey|green|lime|maroon|navy|olive|"
    "purple|red|silver|teal|white|yellow";

inline constexpr char kNumberPattern[] = "[0-9]+";
inline constexpr char kLengthPattern[] = "[0-9]+%?";                 // Pixels or percentage.
inline constexpr char kMultiLengthPattern[] = "[0-9]+%?|[0-9]*\\*";  // Pixels, %, or i*.
// Comma-separated MultiLength list (FRAMESET ROWS/COLS).
inline constexpr char kMultiLengthListPattern[] =
    "([0-9]+%?|[0-9]*\\*)(\\s*,\\s*([0-9]+%?|[0-9]*\\*))*";

inline constexpr char kAlignLRCPattern[] = "left|center|right";
inline constexpr char kAlignLRCJPattern[] = "left|center|right|justify";
inline constexpr char kCellHAlignPattern[] = "left|center|right|justify|char";
inline constexpr char kValignPattern[] = "top|middle|bottom|baseline";
inline constexpr char kImgAlignPattern[] = "top|middle|bottom|left|right";
inline constexpr char kCaptionAlignPattern[] = "top|bottom|left|right";
inline constexpr char kBrClearPattern[] = "left|all|right|none";
inline constexpr char kMethodPattern[] = "get|post";
inline constexpr char kShapePattern[] = "rect|circle|poly|default";
inline constexpr char kScrollingPattern[] = "yes|no|auto";
inline constexpr char kFrameBorderPattern[] = "0|1";
inline constexpr char kInputTypePattern[] =
    "text|password|checkbox|radio|submit|reset|file|hidden|image|button";
inline constexpr char kButtonTypePattern[] = "button|submit|reset";
inline constexpr char kScopePattern[] = "row|col|rowgroup|colgroup";
inline constexpr char kTableFramePattern[] = "void|above|below|hsides|lhs|rhs|vsides|box|border";
inline constexpr char kTableRulesPattern[] = "none|groups|rows|cols|all";
inline constexpr char kValueTypePattern[] = "data|ref|object";
inline constexpr char kDirPattern[] = "ltr|rtl";
inline constexpr char kUlTypePattern[] = "disc|square|circle";
inline constexpr char kOlTypePattern[] = "1|a|A|i|I";
inline constexpr char kLiTypePattern[] = "disc|square|circle|1|a|A|i|I";

}  // namespace weblint

#endif  // WEBLINT_SPEC_PATTERNS_H_
