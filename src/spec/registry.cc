#include "spec/registry.h"

#include "spec/extensions.h"
#include "spec/html32.h"
#include "spec/html40.h"
#include "util/strings.h"

namespace weblint {

namespace {

HtmlSpec BuildHtml40() {
  HtmlSpec spec("html40", "HTML 4.0");
  DefineHtml40(&spec);
  ApplyNetscapeExtensions(&spec);
  ApplyMicrosoftExtensions(&spec);
  return spec;
}

HtmlSpec BuildHtml32() {
  HtmlSpec spec("html32", "HTML 3.2");
  DefineHtml32(&spec);
  ApplyNetscapeExtensions(&spec);
  ApplyMicrosoftExtensions(&spec);
  return spec;
}

}  // namespace

const HtmlSpec* FindSpec(std::string_view id) {
  static const HtmlSpec html40 = BuildHtml40();
  static const HtmlSpec html32 = BuildHtml32();
  if (IEquals(id, "html40") || IEquals(id, "html4") || IEquals(id, "html4.0")) {
    return &html40;
  }
  if (IEquals(id, "html32") || IEquals(id, "html3.2")) {
    return &html32;
  }
  return nullptr;
}

const HtmlSpec& DefaultSpec() { return *FindSpec("html40"); }

std::vector<std::string_view> AvailableSpecIds() { return {"html40", "html32"}; }

}  // namespace weblint
