// HTML 4.0 table definition (paper §5.5).
#ifndef WEBLINT_SPEC_HTML40_H_
#define WEBLINT_SPEC_HTML40_H_

#include "spec/spec.h"

namespace weblint {

// Populates `spec` with the HTML 4.0 element and attribute tables.
void DefineHtml40(HtmlSpec* spec);

}  // namespace weblint

#endif  // WEBLINT_SPEC_HTML40_H_
