// The HTML 4.0 table (paper §5.5: "By default Weblint will check against
// HTML 4.0, which is defined in the module Weblint::HTML40").
//
// Grouping and attribute sets follow the HTML 4.0 specification (W3C REC,
// 18 Dec 1997), transitional flavour — weblint accepted transitional markup
// and reported deprecation separately (deprecated-element /
// deprecated-attribute), rather than rejecting it as a strict DTD would.
#include "spec/html40.h"

#include "spec/patterns.h"
#include "spec/spec.h"

namespace weblint {

namespace {

// Block-level elements close an open <P>; list used for closed_by sets too.
void DefineStructural(SpecBuilder& b) {
  b.Element("html").End(EndTag::kOptional).OnceOnly().Attr("version");
  b.Element("head")
      .End(EndTag::kOptional)
      .Placed(Placement::kTop)
      .OnceOnly()
      .Attr("profile")
      .Attr("lang")
      .Attr("dir", kDirPattern);
  b.Element("body")
      .End(EndTag::kOptional)
      .Placed(Placement::kTop)
      .OnceOnly()
      .CommonAttrs()
      .Attr("onload")
      .Attr("onunload")
      .Attr("background")
      .Attr("bgcolor", kColorPattern)
      .Attr("text", kColorPattern)
      .Attr("link", kColorPattern)
      .Attr("vlink", kColorPattern)
      .Attr("alink", kColorPattern);
  b.Element("frameset")
      .End(EndTag::kRequired)
      .Placed(Placement::kTop)
      .Attr("rows", kMultiLengthListPattern)
      .Attr("cols", kMultiLengthListPattern)
      .Attr("onload")
      .Attr("onunload")
      .Attr("id")
      .Attr("class")
      .Attr("style")
      .Attr("title");
  b.Element("frame")
      .End(EndTag::kForbidden)
      .Context({"frameset"})
      .Attr("src")
      .Attr("name")
      .Attr("longdesc")
      .Attr("frameborder", kFrameBorderPattern)
      .Attr("marginwidth", kNumberPattern)
      .Attr("marginheight", kNumberPattern)
      .FlagAttr("noresize")
      .Attr("scrolling", kScrollingPattern)
      .Attr("id")
      .Attr("class")
      .Attr("style")
      .Attr("title");
  b.Element("noframes").End(EndTag::kRequired).Block().CommonAttrs();
  b.Element("iframe")
      .End(EndTag::kRequired)
      .Inline()
      .Attr("src")
      .Attr("name")
      .Attr("longdesc")
      .Attr("width", kLengthPattern)
      .Attr("height", kLengthPattern)
      .Attr("frameborder", kFrameBorderPattern)
      .Attr("marginwidth", kNumberPattern)
      .Attr("marginheight", kNumberPattern)
      .Attr("scrolling", kScrollingPattern)
      .DeprecatedAttr("align", kImgAlignPattern)
      .Attr("id")
      .Attr("class")
      .Attr("style")
      .Attr("title");
}

void DefineHead(SpecBuilder& b) {
  b.Element("title")
      .End(EndTag::kRequired)
      .Placed(Placement::kHead)
      .OnceOnly()
      .Attr("lang")
      .Attr("dir", kDirPattern);
  b.Element("base")
      .End(EndTag::kForbidden)
      .Placed(Placement::kHead)
      .Attr("href")
      .Attr("target");
  b.Element("meta")
      .End(EndTag::kForbidden)
      .Placed(Placement::kHead)
      .RequiredAttr("content")
      .Attr("name")
      .Attr("http-equiv")
      .Attr("scheme")
      .Attr("lang")
      .Attr("dir", kDirPattern);
  b.Element("link")
      .End(EndTag::kForbidden)
      .Placed(Placement::kHead)
      .CommonAttrs()
      .Attr("href")
      .Attr("rel")
      .Attr("rev")
      .Attr("type")
      .Attr("media")
      .Attr("charset")
      .Attr("hreflang")
      .Attr("target");
  b.Element("style")
      .End(EndTag::kRequired)
      .Placed(Placement::kHead)
      .RequiredAttr("type")
      .Attr("media")
      .Attr("title")
      .Attr("lang")
      .Attr("dir", kDirPattern);
  b.Element("script")
      .End(EndTag::kRequired)
      .RequiredAttr("type")
      .Attr("src")
      .Attr("charset")
      .FlagAttr("defer")
      .Attr("event")
      .Attr("for")
      .DeprecatedAttr("language");
  b.Element("noscript").End(EndTag::kRequired).Block().CommonAttrs();
  b.Element("isindex")
      .End(EndTag::kForbidden)
      .Deprecated("input")
      .Attr("prompt")
      .Attr("id")
      .Attr("class")
      .Attr("style")
      .Attr("title")
      .Attr("lang")
      .Attr("dir", kDirPattern);
}

void DefineBlocks(SpecBuilder& b) {
  for (const char* h : {"h1", "h2", "h3", "h4", "h5", "h6"}) {
    b.Element(h).End(EndTag::kRequired).Block().CommonAttrs().DeprecatedAttr("align",
                                                                             kAlignLRCJPattern);
  }
  b.Element("address").End(EndTag::kRequired).Block().CommonAttrs();
  b.Element("p")
      .End(EndTag::kOptional)
      .Block()
      .ClosedBy({"p"})
      .ClosedByBlock()
      .CommonAttrs()
      .DeprecatedAttr("align", kAlignLRCJPattern);
  b.Element("div").End(EndTag::kRequired).Block().CommonAttrs().DeprecatedAttr("align",
                                                                               kAlignLRCJPattern);
  b.Element("center").End(EndTag::kRequired).Block().Deprecated("div").CommonAttrs();
  b.Element("span").End(EndTag::kRequired).Inline().CommonAttrs();
  b.Element("hr")
      .End(EndTag::kForbidden)
      .Block()
      .CommonAttrs()
      .DeprecatedAttr("align", kAlignLRCPattern)
      .DeprecatedAttr("size", kNumberPattern)
      .DeprecatedAttr("width", kLengthPattern);
  // HR NOSHADE is a boolean attribute.
  b.Element("hr").FlagAttr("noshade");
  b.Element("br")
      .End(EndTag::kForbidden)
      .Inline()
      .Attr("id")
      .Attr("class")
      .Attr("style")
      .Attr("title")
      .DeprecatedAttr("clear", kBrClearPattern);
  b.Element("pre")
      .End(EndTag::kRequired)
      .Block()
      .PreserveWhitespace()
      .CommonAttrs()
      .DeprecatedAttr("width", kNumberPattern);
  b.Element("blockquote").End(EndTag::kRequired).Block().CommonAttrs().Attr("cite");
  b.Element("q").End(EndTag::kRequired).Inline().CommonAttrs().Attr("cite");
  b.Element("ins").End(EndTag::kRequired).CommonAttrs().Attr("cite").Attr("datetime");
  b.Element("del").End(EndTag::kRequired).CommonAttrs().Attr("cite").Attr("datetime");
  b.Element("bdo")
      .End(EndTag::kRequired)
      .Inline()
      .RequiredAttr("dir", kDirPattern)
      .Attr("lang")
      .Attr("id")
      .Attr("class")
      .Attr("style")
      .Attr("title");
  // Obsolete elements weblint still recognises so it can steer users to the
  // replacement (paper §4.3: "Use of deprecated markup, such as the
  // <LISTING> element, in place of which you should use the <PRE> element").
  b.Element("listing").End(EndTag::kRequired).Block().PreserveWhitespace().Deprecated("pre");
  b.Element("xmp").End(EndTag::kRequired).Block().PreserveWhitespace().Deprecated("pre");
  b.Element("plaintext").End(EndTag::kForbidden).Block().Deprecated("pre");
}

void DefineLists(SpecBuilder& b) {
  b.Element("ul")
      .End(EndTag::kRequired)
      .Block()
      .CommonAttrs()
      .DeprecatedAttr("type", kUlTypePattern)
      .FlagAttr("compact");
  b.Element("ol")
      .End(EndTag::kRequired)
      .Block()
      .CommonAttrs()
      .DeprecatedAttr("type", kOlTypePattern)
      .DeprecatedAttr("start", kNumberPattern)
      .FlagAttr("compact");
  b.Element("li")
      .End(EndTag::kOptional)
      .Context({"ul", "ol", "menu", "dir"}, /*implied=*/true)
      .ClosedBy({"li"})
      .CommonAttrs()
      .DeprecatedAttr("type", kLiTypePattern)
      .DeprecatedAttr("value", kNumberPattern);
  b.Element("dl").End(EndTag::kRequired).Block().CommonAttrs().FlagAttr("compact");
  b.Element("dt")
      .End(EndTag::kOptional)
      .Context({"dl"}, /*implied=*/true)
      .ClosedBy({"dt", "dd"})
      .CommonAttrs();
  b.Element("dd")
      .End(EndTag::kOptional)
      .Context({"dl"}, /*implied=*/true)
      .ClosedBy({"dt", "dd"})
      .CommonAttrs();
  b.Element("dir").End(EndTag::kRequired).Block().Deprecated("ul").CommonAttrs().FlagAttr(
      "compact");
  b.Element("menu").End(EndTag::kRequired).Block().Deprecated("ul").CommonAttrs().FlagAttr(
      "compact");
}

void DefineText(SpecBuilder& b) {
  for (const char* name : {"em", "strong", "dfn", "code", "samp", "kbd", "var", "cite", "abbr",
                           "acronym", "sub", "sup", "tt", "i", "b", "big", "small"}) {
    b.Element(name).End(EndTag::kRequired).Inline().CommonAttrs();
  }
  for (const char* name : {"u", "s", "strike"}) {
    b.Element(name).End(EndTag::kRequired).Inline().Deprecated().CommonAttrs();
  }
  b.Element("font")
      .End(EndTag::kRequired)
      .Inline()
      .Deprecated()
      .Attr("size")
      .Attr("color", kColorPattern)
      .Attr("face")
      .Attr("id")
      .Attr("class")
      .Attr("style")
      .Attr("title")
      .Attr("lang")
      .Attr("dir", kDirPattern);
  b.Element("basefont")
      .End(EndTag::kForbidden)
      .Deprecated()
      .RequiredAttr("size")
      .Attr("color", kColorPattern)
      .Attr("face")
      .Attr("id");
}

void DefineLinksAndObjects(SpecBuilder& b) {
  b.Element("a")
      .End(EndTag::kRequired)
      .Inline()
      .NoSelfNest()
      .CommonAttrs()
      .Attr("href")
      .Attr("name")
      .Attr("target")
      .Attr("rel")
      .Attr("rev")
      .Attr("charset")
      .Attr("type")
      .Attr("hreflang")
      .Attr("shape", kShapePattern)
      .Attr("coords")
      .Attr("tabindex", kNumberPattern)
      .Attr("accesskey")
      .Attr("onfocus")
      .Attr("onblur");
  b.Element("img")
      .End(EndTag::kForbidden)
      .Inline()
      .CommonAttrs()
      .RequiredAttr("src")
      .Attr("alt")
      .Attr("longdesc")
      .Attr("name")
      .Attr("width", kLengthPattern)
      .Attr("height", kLengthPattern)
      .Attr("usemap")
      .FlagAttr("ismap")
      .DeprecatedAttr("align", kImgAlignPattern)
      .DeprecatedAttr("border", kLengthPattern)
      .DeprecatedAttr("hspace", kNumberPattern)
      .DeprecatedAttr("vspace", kNumberPattern);
  b.Element("map").End(EndTag::kRequired).CommonAttrs().RequiredAttr("name");
  b.Element("area")
      .End(EndTag::kForbidden)
      .Context({"map"})
      .CommonAttrs()
      .Attr("shape", kShapePattern)
      .Attr("coords")
      .Attr("href")
      .FlagAttr("nohref")
      .RequiredAttr("alt")
      .Attr("tabindex", kNumberPattern)
      .Attr("accesskey")
      .Attr("target")
      .Attr("onfocus")
      .Attr("onblur");
  b.Element("object")
      .End(EndTag::kRequired)
      .Inline()
      .CommonAttrs()
      .Attr("classid")
      .Attr("codebase")
      .Attr("data")
      .Attr("type")
      .Attr("codetype")
      .Attr("archive")
      .Attr("standby")
      .Attr("height", kLengthPattern)
      .Attr("width", kLengthPattern)
      .Attr("usemap")
      .Attr("name")
      .Attr("tabindex", kNumberPattern)
      .FlagAttr("declare")
      .DeprecatedAttr("align", kImgAlignPattern)
      .DeprecatedAttr("border", kLengthPattern)
      .DeprecatedAttr("hspace", kNumberPattern)
      .DeprecatedAttr("vspace", kNumberPattern);
  b.Element("param")
      .End(EndTag::kForbidden)
      .Context({"object", "applet"})
      .RequiredAttr("name")
      .Attr("value")
      .Attr("valuetype", kValueTypePattern)
      .Attr("type")
      .Attr("id");
  b.Element("applet")
      .End(EndTag::kRequired)
      .Inline()
      .Deprecated("object")
      .RequiredAttr("width", kLengthPattern)
      .RequiredAttr("height", kLengthPattern)
      .Attr("code")
      .Attr("codebase")
      .Attr("object")
      .Attr("archive")
      .Attr("alt")
      .Attr("name")
      .Attr("align", kImgAlignPattern)
      .Attr("hspace", kNumberPattern)
      .Attr("vspace", kNumberPattern)
      .Attr("id")
      .Attr("class")
      .Attr("style")
      .Attr("title");
}

void DefineTables(SpecBuilder& b) {
  b.Element("table")
      .End(EndTag::kRequired)
      .Block()
      .CommonAttrs()
      .Attr("summary")
      .Attr("width", kLengthPattern)
      .Attr("border", kNumberPattern)
      .Attr("frame", kTableFramePattern)
      .Attr("rules", kTableRulesPattern)
      .Attr("cellspacing", kLengthPattern)
      .Attr("cellpadding", kLengthPattern)
      .DeprecatedAttr("align", kAlignLRCPattern)
      .DeprecatedAttr("bgcolor", kColorPattern);
  b.Element("caption")
      .End(EndTag::kRequired)
      .Context({"table"})
      .CommonAttrs()
      .DeprecatedAttr("align", kCaptionAlignPattern);
  auto cell_align = [&b]() {
    b.Attr("align", kCellHAlignPattern).Attr("char").Attr("charoff").Attr("valign",
                                                                          kValignPattern);
  };
  b.Element("colgroup")
      .End(EndTag::kOptional)
      .Context({"table"})
      .ClosedBy({"colgroup", "thead", "tbody", "tfoot", "tr"})
      .CommonAttrs()
      .Attr("span", kNumberPattern)
      .Attr("width", kMultiLengthPattern);
  cell_align();
  b.Element("col")
      .End(EndTag::kForbidden)
      .Context({"table", "colgroup"})
      .CommonAttrs()
      .Attr("span", kNumberPattern)
      .Attr("width", kMultiLengthPattern);
  cell_align();
  for (const char* sect : {"thead", "tbody", "tfoot"}) {
    b.Element(sect)
        .End(EndTag::kOptional)
        .Context({"table"})
        .ClosedBy({"thead", "tbody", "tfoot"})
        .CommonAttrs();
    cell_align();
  }
  b.Element("tr")
      .End(EndTag::kOptional)
      .Context({"table", "thead", "tbody", "tfoot"}, /*implied=*/true)
      .ClosedBy({"tr", "thead", "tbody", "tfoot"})
      .CommonAttrs()
      .DeprecatedAttr("bgcolor", kColorPattern);
  cell_align();
  for (const char* cell : {"td", "th"}) {
    b.Element(cell)
        .End(EndTag::kOptional)
        .Context({"tr"}, /*implied=*/true)
        .ClosedBy({"td", "th", "tr", "thead", "tbody", "tfoot"})
        .CommonAttrs()
        .Attr("abbr")
        .Attr("axis")
        .Attr("headers")
        .Attr("scope", kScopePattern)
        .Attr("rowspan", kNumberPattern)
        .Attr("colspan", kNumberPattern)
        .FlagAttr("nowrap")
        .DeprecatedAttr("bgcolor", kColorPattern)
        .DeprecatedAttr("width", kLengthPattern)
        .DeprecatedAttr("height", kLengthPattern);
    cell_align();
  }
}

void DefineForms(SpecBuilder& b) {
  b.Element("form")
      .End(EndTag::kRequired)
      .Block()
      .NoSelfNest()
      .CommonAttrs()
      .RequiredAttr("action")
      .Attr("method", kMethodPattern)
      .Attr("enctype")
      .Attr("accept")
      .Attr("accept-charset")
      .Attr("name")
      .Attr("target")
      .Attr("onsubmit")
      .Attr("onreset");
  b.Element("input")
      .End(EndTag::kForbidden)
      .Inline()
      .Context({"form"})
      .CommonAttrs()
      .Attr("type", kInputTypePattern)
      .Attr("name")
      .Attr("value")
      .FlagAttr("checked")
      .FlagAttr("disabled")
      .FlagAttr("readonly")
      .Attr("size")
      .Attr("maxlength", kNumberPattern)
      .Attr("src")
      .Attr("alt")
      .Attr("usemap")
      .FlagAttr("ismap")
      .Attr("tabindex", kNumberPattern)
      .Attr("accesskey")
      .Attr("accept")
      .Attr("onfocus")
      .Attr("onblur")
      .Attr("onselect")
      .Attr("onchange")
      .DeprecatedAttr("align", kImgAlignPattern);
  b.Element("select")
      .End(EndTag::kRequired)
      .Inline()
      .Context({"form"})
      .CommonAttrs()
      .Attr("name")
      .Attr("size", kNumberPattern)
      .FlagAttr("multiple")
      .FlagAttr("disabled")
      .Attr("tabindex", kNumberPattern)
      .Attr("onfocus")
      .Attr("onblur")
      .Attr("onchange");
  b.Element("optgroup")
      .End(EndTag::kRequired)
      .Context({"select"})
      .CommonAttrs()
      .RequiredAttr("label")
      .FlagAttr("disabled");
  b.Element("option")
      .End(EndTag::kOptional)
      .Context({"select", "optgroup"}, /*implied=*/true)
      .ClosedBy({"option", "optgroup"})
      .CommonAttrs()
      .FlagAttr("selected")
      .FlagAttr("disabled")
      .Attr("label")
      .Attr("value");
  b.Element("textarea")
      .End(EndTag::kRequired)
      .Inline()
      .Context({"form"})
      .CommonAttrs()
      .RequiredAttr("rows", kNumberPattern)
      .RequiredAttr("cols", kNumberPattern)
      .Attr("name")
      .FlagAttr("disabled")
      .FlagAttr("readonly")
      .Attr("tabindex", kNumberPattern)
      .Attr("accesskey")
      .Attr("onfocus")
      .Attr("onblur")
      .Attr("onselect")
      .Attr("onchange");
  b.Element("button")
      .End(EndTag::kRequired)
      .Inline()
      .NoSelfNest()
      .Context({"form"})
      .CommonAttrs()
      .Attr("name")
      .Attr("value")
      .Attr("type", kButtonTypePattern)
      .FlagAttr("disabled")
      .Attr("tabindex", kNumberPattern)
      .Attr("accesskey")
      .Attr("onfocus")
      .Attr("onblur");
  b.Element("label")
      .End(EndTag::kRequired)
      .Inline()
      .NoSelfNest()
      .CommonAttrs()
      .Attr("for")
      .Attr("accesskey")
      .Attr("onfocus")
      .Attr("onblur");
  b.Element("fieldset").End(EndTag::kRequired).Block().Context({"form"}).CommonAttrs();
  b.Element("legend")
      .End(EndTag::kRequired)
      .Context({"fieldset"})
      .CommonAttrs()
      .Attr("accesskey")
      .DeprecatedAttr("align", kCaptionAlignPattern);
}

}  // namespace

void DefineHtml40(HtmlSpec* spec) {
  SpecBuilder b(spec);
  DefineStructural(b);
  DefineHead(b);
  DefineBlocks(b);
  DefineLists(b);
  DefineText(b);
  DefineLinksAndObjects(b);
  DefineTables(b);
  DefineForms(b);
}

}  // namespace weblint
