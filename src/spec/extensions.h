// Vendor extension overlays (paper §5.5: "Other modules define the
// non-standard extensions supported by Microsoft (Internet Explorer) and
// Netscape (Navigator)").
//
// Extension elements and attributes are merged into a base spec tagged with
// their Origin; the extension-markup / extension-attribute checks fire for
// them unless the user enabled that extension set (weblint -x netscape).
#ifndef WEBLINT_SPEC_EXTENSIONS_H_
#define WEBLINT_SPEC_EXTENSIONS_H_

#include "spec/spec.h"

namespace weblint {

// Adds Netscape Navigator extensions (BLINK, LAYER, MULTICOL, SPACER, NOBR,
// WBR, EMBED, KEYGEN, SERVER, plus attribute extensions) to `spec`.
void ApplyNetscapeExtensions(HtmlSpec* spec);

// Adds Microsoft Internet Explorer extensions (MARQUEE, BGSOUND, COMMENT,
// plus attribute extensions) to `spec`.
void ApplyMicrosoftExtensions(HtmlSpec* spec);

}  // namespace weblint

#endif  // WEBLINT_SPEC_EXTENSIONS_H_
