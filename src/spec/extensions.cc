#include "spec/extensions.h"

#include "spec/patterns.h"

namespace weblint {

void ApplyNetscapeExtensions(HtmlSpec* spec) {
  SpecBuilder b(spec);
  b.From(Origin::kNetscape);
  b.Element("blink").End(EndTag::kRequired).Inline();
  b.Element("nobr").End(EndTag::kRequired).Inline();
  b.Element("wbr").End(EndTag::kForbidden).Inline();
  b.Element("multicol")
      .End(EndTag::kRequired)
      .Block()
      .RequiredAttr("cols", kNumberPattern)
      .Attr("gutter", kNumberPattern)
      .Attr("width", kLengthPattern);
  b.Element("spacer")
      .End(EndTag::kForbidden)
      .Inline()
      .Attr("type", "horizontal|vertical|block")
      .Attr("size", kNumberPattern)
      .Attr("width", kNumberPattern)
      .Attr("height", kNumberPattern)
      .Attr("align", kImgAlignPattern);
  for (const char* layer : {"layer", "ilayer"}) {
    b.Element(layer)
        .End(EndTag::kRequired)
        .Attr("id")
        .Attr("left", kNumberPattern)
        .Attr("top", kNumberPattern)
        .Attr("pagex", kNumberPattern)
        .Attr("pagey", kNumberPattern)
        .Attr("src")
        .Attr("z-index", kNumberPattern)
        .Attr("above")
        .Attr("below")
        .Attr("width", kLengthPattern)
        .Attr("height", kLengthPattern)
        .Attr("clip")
        .Attr("visibility", "show|hide|inherit")
        .Attr("bgcolor", kColorPattern)
        .Attr("background")
        .Attr("onmouseover")
        .Attr("onmouseout")
        .Attr("onfocus")
        .Attr("onblur")
        .Attr("onload");
  }
  b.Element("nolayer").End(EndTag::kRequired);
  b.Element("embed")
      .End(EndTag::kForbidden)
      .Inline()
      .RequiredAttr("src")
      .Attr("width", kLengthPattern)
      .Attr("height", kLengthPattern)
      .Attr("type")
      .Attr("pluginspage")
      .Attr("name")
      .Attr("palette")
      .FlagAttr("hidden")
      .Attr("align", kImgAlignPattern);
  b.Element("noembed").End(EndTag::kRequired);
  b.Element("keygen")
      .End(EndTag::kForbidden)
      .Inline()
      .RequiredAttr("name")
      .Attr("challenge");
  b.Element("server").End(EndTag::kRequired);

  // Attribute extensions on standard elements.
  b.Element("body")
      .Attr("marginwidth", kNumberPattern)
      .Attr("marginheight", kNumberPattern);
  b.Element("img").Attr("lowsrc");
  b.Element("frameset")
      .Attr("border", kNumberPattern)
      .Attr("bordercolor", kColorPattern)
      .Attr("frameborder", "yes|no|0|1");
  b.Element("frame").Attr("bordercolor", kColorPattern);
  b.Element("hr").Attr("color", kColorPattern);
}

void ApplyMicrosoftExtensions(HtmlSpec* spec) {
  SpecBuilder b(spec);
  b.From(Origin::kMicrosoft);
  b.Element("marquee")
      .End(EndTag::kRequired)
      .Inline()
      .Attr("behavior", "scroll|slide|alternate")
      .Attr("bgcolor", kColorPattern)
      .Attr("direction", "left|right|up|down")
      .Attr("height", kLengthPattern)
      .Attr("width", kLengthPattern)
      .Attr("hspace", kNumberPattern)
      .Attr("vspace", kNumberPattern)
      .Attr("loop")
      .Attr("scrollamount", kNumberPattern)
      .Attr("scrolldelay", kNumberPattern);
  b.Element("bgsound")
      .End(EndTag::kForbidden)
      .RequiredAttr("src")
      .Attr("loop")
      .Attr("balance")
      .Attr("volume");
  b.Element("comment").End(EndTag::kRequired);

  // Attribute extensions on standard elements.
  b.Element("body")
      .Attr("leftmargin", kNumberPattern)
      .Attr("topmargin", kNumberPattern)
      .Attr("rightmargin", kNumberPattern)
      .Attr("bottommargin", kNumberPattern);
  b.Element("table")
      .Attr("bordercolor", kColorPattern)
      .Attr("bordercolorlight", kColorPattern)
      .Attr("bordercolordark", kColorPattern);
  b.Element("img")
      .Attr("dynsrc")
      .FlagAttr("controls")
      .Attr("loop")
      .Attr("start", "fileopen|mouseover");
}

}  // namespace weblint
