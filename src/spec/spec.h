// HTML version modules (paper §5.5): "These modules encapsulate the
// information which is needed by weblint when checking against a specific
// version of HTML. ... The HTML modules are basically sets of tables which
// are used to drive the operation of the Weblint module."
//
// Each HtmlSpec holds, per element:
//   * valid elements and whether they are containers (end-tag rule),
//   * valid attributes and legal values for attributes, expressed as
//     regular expressions (util/pattern.h),
//   * legal context for elements (ancestor requirements, implied
//     containers, auto-close relationships).
//
// Extension elements/attributes (Netscape, Microsoft) live in the same
// table tagged with their origin, mirroring weblint's extension modules:
// whether they produce extension-markup warnings is a configuration matter.
#ifndef WEBLINT_SPEC_SPEC_H_
#define WEBLINT_SPEC_SPEC_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/pattern.h"
#include "util/strings.h"

namespace weblint {

// SGML end-tag rule for an element.
enum class EndTag {
  kRequired,   // Container; </X> must appear (A, TITLE, TABLE, ...).
  kOptional,   // Container; </X> may be omitted (P, LI, TD, ...).
  kForbidden,  // Empty element; </X> is an error (IMG, BR, HR, ...).
};

// Where an element definition came from.
enum class Origin {
  kStandard,   // The HTML DTD this spec models.
  kNetscape,   // Netscape Navigator extension.
  kMicrosoft,  // Microsoft Internet Explorer extension.
};

// Coarse structural placement, powering head-element / body-element checks.
enum class Placement {
  kAnywhere,  // No constraint beyond legal_contexts.
  kHead,      // Only inside HEAD (TITLE, BASE, ISINDEX, META, LINK, STYLE).
  kBody,      // Only inside BODY / FRAMESET content.
  kTop,       // Direct structural children of HTML (HEAD, BODY, FRAMESET).
};

struct AttributeInfo {
  std::string name;  // Lowercase.
  bool required = false;
  // Legal-value pattern; an empty source means any value is legal.
  std::string pattern_source;
  Pattern pattern;
  // True if the attribute is a boolean/standalone attribute (COMPACT,
  // ISMAP, CHECKED): giving it no value is correct.
  bool value_optional = false;
  bool deprecated = false;
  Origin origin = Origin::kStandard;

  bool HasPattern() const { return !pattern_source.empty(); }
};

struct ElementInfo {
  std::string name;  // Lowercase.
  EndTag end_tag = EndTag::kRequired;
  Placement placement = Placement::kAnywhere;
  Origin origin = Origin::kStandard;

  bool once_only = false;        // TITLE, HEAD, BODY, HTML, ...
  bool is_block = false;         // Block-level (terminates an open P).
  bool is_inline = false;        // Text-level.
  bool no_self_nest = false;     // May not appear inside itself (A, FORM).
  bool preserve_whitespace = false;  // PRE and friends.
  bool deprecated = false;
  std::string replacement;       // Suggested element for deprecated ones.

  // If non-empty, one of these must be an open ancestor. When violated:
  // if `context_implied` the diagnostic is implied-element (LI outside a
  // list "implies" UL); otherwise required-context (INPUT outside FORM).
  std::vector<std::string> legal_contexts;
  bool context_implied = false;

  // Start tags that implicitly close this element when it is open with an
  // optional end tag (LI closed by the next LI, ...).
  std::vector<std::string> closed_by;
  // Any block-level start tag implicitly closes this element (P).
  bool closed_by_block = false;

  std::map<std::string, AttributeInfo, ILess> attributes;

  bool IsContainer() const { return end_tag != EndTag::kForbidden; }
  const AttributeInfo* FindAttribute(std::string_view attr_name) const;
};

class HtmlSpec {
 public:
  HtmlSpec(std::string id, std::string display_name)
      : id_(std::move(id)), display_name_(std::move(display_name)) {}

  const std::string& id() const { return id_; }
  const std::string& display_name() const { return display_name_; }

  // Case-insensitive element lookup; nullptr when unknown.
  const ElementInfo* Find(std::string_view element_name) const;
  bool Knows(std::string_view element_name) const { return Find(element_name) != nullptr; }

  size_t ElementCount() const { return elements_.size(); }
  const std::map<std::string, ElementInfo, ILess>& elements() const { return elements_; }

  // Closest known element name within edit distance 2 of `name` (for the
  // paper's <BLOCKQOUTE> suggestion); empty if nothing is close.
  std::string SuggestElement(std::string_view name) const;

 private:
  friend class SpecBuilder;
  std::string id_;
  std::string display_name_;
  std::map<std::string, ElementInfo, ILess> elements_;
};

// Fluent builder used by the per-version table files (html40.cc, ...).
class SpecBuilder {
 public:
  explicit SpecBuilder(HtmlSpec* spec) : spec_(*spec) {}

  // Starts (or reopens, for extension overlays) an element definition and
  // makes it current. Defaults: required end tag, anywhere, standard.
  SpecBuilder& Element(std::string_view name);

  SpecBuilder& End(EndTag rule);
  SpecBuilder& Placed(Placement placement);
  SpecBuilder& From(Origin origin);
  SpecBuilder& OnceOnly();
  SpecBuilder& Block();
  SpecBuilder& Inline();
  SpecBuilder& NoSelfNest();
  SpecBuilder& PreserveWhitespace();
  SpecBuilder& Deprecated(std::string_view replacement = {});
  // Context requirement; `implied` selects implied-element over
  // required-context when violated.
  SpecBuilder& Context(std::vector<std::string> ancestors, bool implied = false);
  SpecBuilder& ClosedBy(std::vector<std::string> starts);
  SpecBuilder& ClosedByBlock();

  // Adds an attribute to the current element. Empty pattern = any value.
  SpecBuilder& Attr(std::string_view name, std::string_view pattern = {});
  SpecBuilder& RequiredAttr(std::string_view name, std::string_view pattern = {});
  // Boolean attribute (no value expected).
  SpecBuilder& FlagAttr(std::string_view name);
  SpecBuilder& DeprecatedAttr(std::string_view name, std::string_view pattern = {});

  // Adds the HTML 4.0 core (id/class/style/title), i18n (lang/dir), and
  // event attributes to the current element.
  SpecBuilder& CommonAttrs();
  // Just core + i18n, for elements that take no event attributes.
  SpecBuilder& CoreAttrs();

 private:
  AttributeInfo& AddAttr(std::string_view name, std::string_view pattern);
  HtmlSpec& spec_;
  ElementInfo* current_ = nullptr;
  Origin current_origin_ = Origin::kStandard;
};

}  // namespace weblint

#endif  // WEBLINT_SPEC_SPEC_H_
