#include "spec/spec.h"

#include "util/edit_distance.h"

namespace weblint {

const AttributeInfo* ElementInfo::FindAttribute(std::string_view attr_name) const {
  const auto it = attributes.find(std::string(attr_name));
  return it == attributes.end() ? nullptr : &it->second;
}

const ElementInfo* HtmlSpec::Find(std::string_view element_name) const {
  const auto it = elements_.find(std::string(element_name));
  return it == elements_.end() ? nullptr : &it->second;
}

std::string HtmlSpec::SuggestElement(std::string_view name) const {
  // Names of one or two characters are too short to correct usefully.
  if (name.size() < 3) {
    return {};
  }
  std::string best;
  int best_distance = 3;  // Accept distance 1 or 2 only.
  for (const auto& [key, info] : elements_) {
    const int d = BoundedEditDistance(name, key, best_distance - 1);
    if (d < best_distance) {
      best_distance = d;
      best = key;
    }
  }
  return best;
}

SpecBuilder& SpecBuilder::Element(std::string_view name) {
  const std::string key = AsciiLower(name);
  auto [it, inserted] = spec_.elements_.try_emplace(key);
  if (inserted) {
    it->second.name = key;
    it->second.origin = current_origin_;
  }
  current_ = &it->second;
  return *this;
}

SpecBuilder& SpecBuilder::End(EndTag rule) {
  current_->end_tag = rule;
  return *this;
}

SpecBuilder& SpecBuilder::Placed(Placement placement) {
  current_->placement = placement;
  return *this;
}

SpecBuilder& SpecBuilder::From(Origin origin) {
  // Affects elements and attributes defined from here on. Reopened elements
  // keep their original origin; only newly added attributes pick this up —
  // which is exactly what an attribute-extension overlay needs.
  current_origin_ = origin;
  return *this;
}

SpecBuilder& SpecBuilder::OnceOnly() {
  current_->once_only = true;
  return *this;
}

SpecBuilder& SpecBuilder::Block() {
  current_->is_block = true;
  return *this;
}

SpecBuilder& SpecBuilder::Inline() {
  current_->is_inline = true;
  return *this;
}

SpecBuilder& SpecBuilder::NoSelfNest() {
  current_->no_self_nest = true;
  return *this;
}

SpecBuilder& SpecBuilder::PreserveWhitespace() {
  current_->preserve_whitespace = true;
  return *this;
}

SpecBuilder& SpecBuilder::Deprecated(std::string_view replacement) {
  current_->deprecated = true;
  current_->replacement = AsciiLower(replacement);
  return *this;
}

SpecBuilder& SpecBuilder::Context(std::vector<std::string> ancestors, bool implied) {
  current_->legal_contexts = std::move(ancestors);
  current_->context_implied = implied;
  return *this;
}

SpecBuilder& SpecBuilder::ClosedBy(std::vector<std::string> starts) {
  current_->closed_by = std::move(starts);
  return *this;
}

SpecBuilder& SpecBuilder::ClosedByBlock() {
  current_->closed_by_block = true;
  return *this;
}

AttributeInfo& SpecBuilder::AddAttr(std::string_view name, std::string_view pattern) {
  const std::string key = AsciiLower(name);
  AttributeInfo& attr = current_->attributes[key];
  attr.name = key;
  attr.origin = current_origin_;
  if (!pattern.empty()) {
    attr.pattern_source = std::string(pattern);
    attr.pattern = Pattern::Compile(pattern);
  }
  return attr;
}

SpecBuilder& SpecBuilder::Attr(std::string_view name, std::string_view pattern) {
  AddAttr(name, pattern);
  return *this;
}

SpecBuilder& SpecBuilder::RequiredAttr(std::string_view name, std::string_view pattern) {
  AddAttr(name, pattern).required = true;
  return *this;
}

SpecBuilder& SpecBuilder::FlagAttr(std::string_view name) {
  AddAttr(name, {}).value_optional = true;
  return *this;
}

SpecBuilder& SpecBuilder::DeprecatedAttr(std::string_view name, std::string_view pattern) {
  AddAttr(name, pattern).deprecated = true;
  return *this;
}

SpecBuilder& SpecBuilder::CoreAttrs() {
  Attr("id");
  Attr("class");
  Attr("style");
  Attr("title");
  Attr("lang");
  Attr("dir", "ltr|rtl");
  return *this;
}

SpecBuilder& SpecBuilder::CommonAttrs() {
  CoreAttrs();
  for (const char* event :
       {"onclick", "ondblclick", "onmousedown", "onmouseup", "onmouseover", "onmousemove",
        "onmouseout", "onkeypress", "onkeydown", "onkeyup"}) {
    Attr(event);
  }
  return *this;
}

}  // namespace weblint
