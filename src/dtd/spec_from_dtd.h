// Generates weblint HTML modules and test-suite cases from a parsed DTD —
// the two halves of the paper's §6.1 item "Driving weblint with a DTD:
// generating the HTML modules used by weblint, and test-cases for the
// test-suite."
#ifndef WEBLINT_DTD_SPEC_FROM_DTD_H_
#define WEBLINT_DTD_SPEC_FROM_DTD_H_

#include <string>
#include <vector>

#include "dtd/dtd_parser.h"
#include "spec/spec.h"
#include "util/result.h"

namespace weblint {

// Builds an HtmlSpec from `dtd`:
//   * end-tag rule from EMPTY / the end-omission flag,
//   * attributes with #REQUIRED flags,
//   * enumerated attribute groups compiled to legal-value patterns,
//   * inline/block classification inferred from the %inline/%block
//     parameter entities when the DTD defines them.
// Knowledge a DTD cannot express (deprecation, vendor origin, style
// contexts — paper §5.5) is absent from the generated spec.
Result<HtmlSpec> SpecFromDtd(const DtdDocument& dtd, std::string id, std::string display_name);

// A generated conformance case: `html` is a complete document; when
// `expect_message` is non-empty, linting must produce it; when empty, the
// document must lint clean.
struct GeneratedCase {
  std::string description;
  std::string html;
  std::string expect_message;
};

// Generates test cases from a spec, one bundle per element:
//   * a minimal valid use (expects no diagnostics from the relevant checks),
//   * </X> for every EMPTY element (expects illegal-closing),
//   * an unclosed instance of every required-end container
//     (expects unclosed-element),
//   * a missing-required-attribute case per required attribute
//     (expects required-attribute).
std::vector<GeneratedCase> GenerateTestCases(const HtmlSpec& spec);

// The bundled HTML 4.0 (transitional subset) DTD used by tests and the
// dtd2spec demonstration.
std::string_view BundledHtml40Dtd();

}  // namespace weblint

#endif  // WEBLINT_DTD_SPEC_FROM_DTD_H_
