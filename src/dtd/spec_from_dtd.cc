#include "dtd/spec_from_dtd.h"

#include <set>

#include "util/strings.h"

namespace weblint {

namespace {

// Escapes pattern metacharacters in a DTD enum token (tokens are name
// characters in practice; belt and braces).
std::string EscapeForPattern(std::string_view token) {
  std::string out;
  for (char c : token) {
    if (!IsAsciiAlnum(c) && c != '-' && c != '_') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

// Names listed by a parameter entity like %inline; / %block; (a '|'
// separated group, possibly with nested parens from prior expansion).
std::set<std::string, ILess> EntityNameSet(const DtdDocument& dtd, std::string_view entity) {
  std::set<std::string, ILess> names;
  const auto it = dtd.parameter_entities.find(std::string(entity));
  if (it == dtd.parameter_entities.end()) {
    return names;
  }
  std::string cleaned = it->second;
  for (char& c : cleaned) {
    if (c == '(' || c == ')' || c == '#') {
      c = ' ';
    }
  }
  for (std::string_view part : Split(cleaned, '|')) {
    const std::string_view name = Trim(part);
    if (!name.empty() && name.find(' ') == std::string_view::npos) {
      names.insert(AsciiLower(name));
    }
  }
  return names;
}

}  // namespace

Result<HtmlSpec> SpecFromDtd(const DtdDocument& dtd, std::string id, std::string display_name) {
  if (dtd.elements.empty()) {
    return Fail("DTD defines no elements");
  }
  HtmlSpec spec(std::move(id), std::move(display_name));
  SpecBuilder builder(&spec);

  const std::set<std::string, ILess> inline_set = EntityNameSet(dtd, "inline");
  const std::set<std::string, ILess> block_set = EntityNameSet(dtd, "block");

  for (const auto& [name, element] : dtd.elements) {
    builder.Element(name);
    if (element.empty) {
      builder.End(EndTag::kForbidden);
    } else if (element.omit_end) {
      builder.End(EndTag::kOptional);
    } else {
      builder.End(EndTag::kRequired);
    }
    if (inline_set.contains(name)) {
      builder.Inline();
    }
    if (block_set.contains(name)) {
      builder.Block();
    }

    const auto attrs = dtd.attributes.find(name);
    if (attrs == dtd.attributes.end()) {
      continue;
    }
    for (const auto& [attr_name, attr] : attrs->second) {
      std::string pattern;
      if (!attr.enum_values.empty()) {
        std::vector<std::string> escaped;
        escaped.reserve(attr.enum_values.size());
        for (const std::string& value : attr.enum_values) {
          escaped.push_back(EscapeForPattern(value));
        }
        pattern = Join(escaped, "|");
      } else if (attr.declared_type == "number") {
        pattern = "[0-9]+";
      }
      if (attr.required) {
        builder.RequiredAttr(attr_name, pattern);
      } else {
        builder.Attr(attr_name, pattern);
      }
    }
  }
  return spec;
}

namespace {

// Elements whose structural role keeps them out of the generic body-context
// harness.
bool SkipForGeneration(std::string_view name) {
  static constexpr std::string_view kSkip[] = {
      "html", "head", "body", "title", "frameset", "frame", "noframes", "plaintext",
  };
  for (std::string_view skip : kSkip) {
    if (name == skip) {
      return true;
    }
  }
  return false;
}

// A value satisfying `attr`'s pattern (or a plausible one when unconstrained).
std::string SampleValue(const AttributeInfo& attr) {
  if (attr.HasPattern()) {
    static constexpr std::string_view kCandidates[] = {
        "2",   "10",   "ltr",  "get",     "rect", "text", "1",
        "50%", "auto", "data", "#ffffff", "left", "top",  "x",
    };
    for (std::string_view candidate : kCandidates) {
      if (attr.pattern.Matches(candidate)) {
        return std::string(candidate);
      }
    }
    return "x";
  }
  // Plausible values for common unconstrained attributes.
  if (attr.name == "action") {
    return "query.cgi";
  }
  if (attr.name == "src") {
    return "x.gif";
  }
  if (attr.name == "href") {
    return "x.html";
  }
  if (attr.name == "type") {
    return "text/css";
  }
  if (attr.name == "content") {
    return "c";
  }
  return "x";
}

// Start tag for `info` with all required attributes present; `omit` (if
// non-empty) names one required attribute to leave out.
std::string StartTag(const ElementInfo& info, std::string_view omit = {}) {
  std::string tag = "<" + AsciiUpper(info.name);
  for (const auto& [name, attr] : info.attributes) {
    if (!attr.required || IEquals(name, omit)) {
      continue;
    }
    tag += StrFormat(" %s=\"%s\"", AsciiUpper(name), SampleValue(attr));
  }
  tag += ">";
  return tag;
}

// Wraps `content` in the element's required context chain (<TD> needs a
// <TR> needs a <TABLE>...), then in the document skeleton.
std::string WrapInContext(const HtmlSpec& spec, const ElementInfo& info, std::string content,
                          int depth = 0) {
  if (depth > 6 || info.legal_contexts.empty()) {
    return content;
  }
  const ElementInfo* context = spec.Find(info.legal_contexts.front());
  if (context == nullptr) {
    return content;
  }
  std::string wrapped = StartTag(*context) + content;
  if (context->end_tag != EndTag::kForbidden) {
    wrapped += "</" + AsciiUpper(context->name) + ">";
  }
  return WrapInContext(spec, *context, std::move(wrapped), depth + 1);
}

std::string Document(const HtmlSpec& spec, const ElementInfo& info, std::string_view use) {
  std::string html = "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0 Transitional//EN\">\n";
  html += "<HTML>\n<HEAD>\n<TITLE>generated case</TITLE>\n";
  const bool in_head = info.placement == Placement::kHead;
  if (in_head) {
    html += WrapInContext(spec, info, std::string(use));
    html += "\n";
  }
  html += "</HEAD>\n<BODY>\n<P>before</P>\n";
  if (!in_head) {
    html += WrapInContext(spec, info, std::string(use));
    html += "\n";
  }
  html += "</BODY>\n</HTML>\n";
  return html;
}

}  // namespace

std::vector<GeneratedCase> GenerateTestCases(const HtmlSpec& spec) {
  std::vector<GeneratedCase> cases;
  for (const auto& [name, info] : spec.elements()) {
    if (SkipForGeneration(name)) {
      continue;
    }
    const std::string upper = AsciiUpper(name);

    // Minimal valid use.
    std::string valid_use = StartTag(info);
    if (info.end_tag != EndTag::kForbidden) {
      valid_use += "content</" + upper + ">";
    }
    cases.push_back(GeneratedCase{"valid <" + upper + ">",
                                  Document(spec, info, valid_use), ""});

    if (info.end_tag == EndTag::kForbidden) {
      cases.push_back(GeneratedCase{"closing tag for EMPTY <" + upper + ">",
                                    Document(spec, info, StartTag(info) + "</" + upper + ">"),
                                    "illegal-closing"});
    }
    if (info.end_tag == EndTag::kRequired) {
      cases.push_back(GeneratedCase{"unclosed <" + upper + ">",
                                    Document(spec, info, StartTag(info) + "content"),
                                    "unclosed-element"});
    }
    for (const auto& [attr_name, attr] : info.attributes) {
      if (!attr.required) {
        continue;
      }
      std::string use = StartTag(info, attr_name);
      if (info.end_tag != EndTag::kForbidden) {
        use += "content</" + upper + ">";
      }
      cases.push_back(GeneratedCase{
          "missing required " + AsciiUpper(attr_name) + " on <" + upper + ">",
          Document(spec, info, use), "required-attribute"});
    }
  }
  return cases;
}

}  // namespace weblint
