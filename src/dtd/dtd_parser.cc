#include "dtd/dtd_parser.h"

namespace weblint {

namespace {

constexpr int kMaxEntityDepth = 16;

bool IsDtdNameChar(char c) { return IsAsciiAlnum(c) || c == '-' || c == '.' || c == '_'; }

// Expands %name; references using the entities collected so far.
Result<std::string> ExpandEntities(std::string_view text,
                                   const std::map<std::string, std::string>& entities,
                                   int depth) {
  if (depth > kMaxEntityDepth) {
    return Fail("parameter entity nesting too deep (circular reference?)");
  }
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%' || i + 1 >= text.size() || !IsAsciiAlpha(text[i + 1])) {
      out.push_back(text[i]);
      continue;
    }
    size_t j = i + 1;
    while (j < text.size() && IsDtdNameChar(text[j])) {
      ++j;
    }
    const std::string name = AsciiLower(text.substr(i + 1, j - i - 1));
    const auto it = entities.find(name);
    if (it == entities.end()) {
      return Fail("undefined parameter entity: %" + name + ";");
    }
    auto expanded = ExpandEntities(it->second, entities, depth + 1);
    if (!expanded.ok()) {
      return expanded.status();
    }
    out += *expanded;
    if (j < text.size() && text[j] == ';') {
      ++j;
    }
    i = j - 1;
  }
  return out;
}

// Splits a declaration body into whitespace-separated tokens, keeping
// (...) groups and "..." literals as single tokens.
std::vector<std::string> TokenizeDecl(std::string_view body) {
  std::vector<std::string> tokens;
  size_t i = 0;
  const size_t n = body.size();
  while (i < n) {
    if (IsAsciiSpace(body[i])) {
      ++i;
      continue;
    }
    // Comment inside a declaration: -- ... --
    if (body[i] == '-' && i + 1 < n && body[i + 1] == '-') {
      const size_t end = body.find("--", i + 2);
      i = end == std::string_view::npos ? n : end + 2;
      continue;
    }
    // +(...) / -(...) inclusion and exclusion modifiers are one token.
    const bool signed_group =
        (body[i] == '+' || body[i] == '-') && i + 1 < n && body[i + 1] == '(';
    if (body[i] == '(' || signed_group) {
      int depth = 0;
      const size_t start = i;
      if (signed_group) {
        ++i;
      }
      while (i < n) {
        if (body[i] == '(') {
          ++depth;
        } else if (body[i] == ')') {
          --depth;
          if (depth == 0) {
            ++i;
            break;
          }
        }
        ++i;
      }
      // Trailing occurrence indicator: (…)* (…)+ (…)?
      if (i < n && (body[i] == '*' || body[i] == '+' || body[i] == '?')) {
        ++i;
      }
      tokens.emplace_back(body.substr(start, i - start));
      continue;
    }
    if (body[i] == '"' || body[i] == '\'') {
      const char quote = body[i];
      const size_t start = i++;
      while (i < n && body[i] != quote) {
        ++i;
      }
      ++i;  // Closing quote (or past end).
      tokens.emplace_back(body.substr(start, std::min(i, n) - start));
      continue;
    }
    const size_t start = i;
    while (i < n && !IsAsciiSpace(body[i]) && body[i] != '(') {
      ++i;
    }
    tokens.emplace_back(body.substr(start, i - start));
  }
  return tokens;
}

// Extracts the names from "NAME" or "(A|B|C)" (entity-expanded).
std::vector<std::string> NameGroup(std::string_view token) {
  std::vector<std::string> names;
  std::string_view inner = token;
  if (!inner.empty() && inner.front() == '(') {
    inner.remove_prefix(1);
    if (!inner.empty() && inner.back() == ')') {
      inner.remove_suffix(1);
    }
  }
  for (std::string_view part : Split(inner, '|')) {
    const std::string_view name = Trim(part);
    if (!name.empty()) {
      names.push_back(AsciiLower(name));
    }
  }
  return names;
}

Status ParseElementDecl(const std::vector<std::string>& tokens, DtdDocument* doc) {
  // tokens: name-or-group, omission x2 (optional in some DTDs), content,
  // then +(...) / -(...) modifiers.
  if (tokens.size() < 2) {
    return Fail("ELEMENT declaration too short");
  }
  DtdElement proto;
  size_t i = 0;
  const std::vector<std::string> names = NameGroup(tokens[i++]);
  if (names.empty()) {
    return Fail("ELEMENT declaration has no element name");
  }

  // Omission flags: two single-character tokens, '-' or 'O'.
  auto is_omission = [](const std::string& t) {
    return t.size() == 1 && (t[0] == '-' || t[0] == 'O' || t[0] == 'o');
  };
  if (i + 1 < tokens.size() && is_omission(tokens[i]) && is_omission(tokens[i + 1])) {
    proto.omit_start = tokens[i][0] != '-';
    proto.omit_end = tokens[i + 1][0] != '-';
    i += 2;
  }
  if (i >= tokens.size()) {
    return Fail("ELEMENT declaration for " + names[0] + " has no content model");
  }

  const std::string& content = tokens[i++];
  if (IEquals(content, "EMPTY")) {
    proto.empty = true;
  } else if (IEquals(content, "CDATA")) {
    proto.cdata = true;
  } else {
    proto.content_model = content;
  }

  for (; i < tokens.size(); ++i) {
    const std::string& mod = tokens[i];
    if (mod.size() > 1 && (mod[0] == '+' || mod[0] == '-')) {
      auto& target = mod[0] == '+' ? proto.inclusions : proto.exclusions;
      for (const std::string& name : NameGroup(std::string_view(mod).substr(1))) {
        target.push_back(name);
      }
    }
  }

  for (const std::string& name : names) {
    DtdElement element = proto;
    element.name = name;
    doc->elements[name] = std::move(element);
  }
  return Status::Ok();
}

Status ParseAttlistDecl(const std::vector<std::string>& tokens, DtdDocument* doc) {
  if (tokens.size() < 4) {
    return Fail("ATTLIST declaration too short");
  }
  const std::vector<std::string> names = NameGroup(tokens[0]);
  if (names.empty()) {
    return Fail("ATTLIST declaration has no element name");
  }
  // Remaining tokens come in (name, type, default) triples; #FIXED adds a
  // fourth (the fixed literal).
  size_t i = 1;
  while (i < tokens.size()) {
    if (tokens.size() - i < 3) {
      return Fail("incomplete attribute definition in ATTLIST for " + names[0]);
    }
    DtdAttribute attr;
    attr.name = AsciiLower(tokens[i]);
    const std::string& type = tokens[i + 1];
    if (!type.empty() && type.front() == '(') {
      attr.declared_type = "enum";
      attr.enum_values = NameGroup(type);
    } else {
      attr.declared_type = AsciiLower(type);
    }
    const std::string& dflt = tokens[i + 2];
    i += 3;
    if (IEquals(dflt, "#REQUIRED")) {
      attr.required = true;
    } else if (IEquals(dflt, "#IMPLIED")) {
      // Optional, no default.
    } else if (IEquals(dflt, "#FIXED")) {
      attr.fixed = true;
      if (i < tokens.size()) {
        attr.default_value = tokens[i++];
      }
    } else {
      attr.default_value = dflt;
    }
    if (!attr.default_value.empty() && attr.default_value.front() == '"') {
      attr.default_value =
          attr.default_value.substr(1, attr.default_value.size() - 2);
    }
    for (const std::string& element : names) {
      doc->attributes[element][attr.name] = attr;
    }
  }
  return Status::Ok();
}

}  // namespace

Result<DtdDocument> ParseDtd(std::string_view text) {
  DtdDocument doc;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    if (text[i] != '<') {
      ++i;
      continue;
    }
    if (text.substr(i).starts_with("<!--")) {
      const size_t end = text.find("-->", i + 4);
      i = end == std::string_view::npos ? n : end + 3;
      continue;
    }
    if (!text.substr(i).starts_with("<!")) {
      ++i;
      continue;
    }
    // Find the matching '>' (respecting quoted literals).
    size_t j = i + 2;
    char quote = '\0';
    while (j < n) {
      const char c = text[j];
      if (quote != '\0') {
        if (c == quote) {
          quote = '\0';
        }
      } else if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '>') {
        break;
      }
      ++j;
    }
    if (j >= n) {
      return Fail("unterminated declaration at end of DTD");
    }
    const std::string_view decl = text.substr(i + 2, j - i - 2);
    i = j + 1;

    const std::vector<std::string_view> head = SplitWhitespace(decl);
    if (head.empty()) {
      continue;
    }
    const std::string_view keyword = head[0];
    const std::string_view body = Trim(decl.substr(decl.find(keyword) + keyword.size()));

    if (IEquals(keyword, "ENTITY")) {
      // <!ENTITY % name "value">
      const auto parts = SplitWhitespace(body);
      if (parts.size() < 3 || parts[0] != "%") {
        continue;  // General entities are not needed for table generation.
      }
      const std::string name = AsciiLower(parts[1]);
      const size_t open = body.find_first_of("\"'");
      if (open == std::string_view::npos) {
        return Fail("ENTITY " + name + " has no replacement literal");
      }
      const char q = body[open];
      const size_t close = body.find(q, open + 1);
      if (close == std::string_view::npos) {
        return Fail("ENTITY " + name + " literal is unterminated");
      }
      auto expanded = ExpandEntities(body.substr(open + 1, close - open - 1),
                                     doc.parameter_entities, 0);
      if (!expanded.ok()) {
        return expanded.status();
      }
      doc.parameter_entities[name] = *expanded;
      continue;
    }

    auto expanded = ExpandEntities(body, doc.parameter_entities, 0);
    if (!expanded.ok()) {
      return expanded.status();
    }
    const std::vector<std::string> tokens = TokenizeDecl(*expanded);

    if (IEquals(keyword, "ELEMENT")) {
      if (Status s = ParseElementDecl(tokens, &doc); !s.ok()) {
        return s;
      }
    } else if (IEquals(keyword, "ATTLIST")) {
      if (Status s = ParseAttlistDecl(tokens, &doc); !s.ok()) {
        return s;
      }
    }
    // DOCTYPE, NOTATION, etc. are ignored.
  }
  return doc;
}

}  // namespace weblint
