// A bundled subset of the HTML 4.0 transitional DTD (W3C, 18 Dec 1997),
// lightly abridged: the element and attribute declarations the dtd2spec
// generator demonstrates against. The syntax is faithful SGML so the parser
// is exercised on the real thing: parameter entities, name groups, omission
// flags, inclusions/exclusions, enumerated attribute groups, #REQUIRED.
#include "dtd/spec_from_dtd.h"

namespace weblint {

namespace {

constexpr char kHtml40Dtd[] = R"DTD(
<!-- HTML 4.0 transitional, abridged for weblint++'s dtd2spec generator -->

<!ENTITY % URI "CDATA"    -- a Uniform Resource Identifier -->
<!ENTITY % Text "CDATA">
<!ENTITY % Color "CDATA"  -- #RRGGBB or colour name -->
<!ENTITY % Length "CDATA" -- nn for pixels or nn% -->
<!ENTITY % Pixels "NUMBER">

<!ENTITY % heading "H1|H2|H3|H4|H5|H6">
<!ENTITY % list "UL | OL | DIR | MENU">
<!ENTITY % fontstyle "TT | I | B | U | S | STRIKE | BIG | SMALL">
<!ENTITY % phrase "EM | STRONG | DFN | CODE | SAMP | KBD | VAR | CITE">
<!ENTITY % special "A | IMG | BR | MAP | Q | SUB | SUP | SPAN | FONT">
<!ENTITY % formctrl "INPUT | SELECT | TEXTAREA">
<!ENTITY % inline "#PCDATA | %fontstyle; | %phrase; | %special; | %formctrl;">
<!ENTITY % block
   "P | %heading; | %list; | PRE | DL | DIV | CENTER | BLOCKQUOTE | FORM | HR | TABLE | ADDRESS">
<!ENTITY % flow "%block; | %inline;">

<!ENTITY % coreattrs
  "id     ID      #IMPLIED
   class  CDATA   #IMPLIED
   style  CDATA   #IMPLIED
   title  %Text;  #IMPLIED">

<!ELEMENT (%fontstyle;|%phrase;) - - (%inline;)*>
<!ATTLIST (%fontstyle;|%phrase;) %coreattrs;>

<!ELEMENT (SUB|SUP|SPAN|Q) - - (%inline;)*>
<!ATTLIST (SUB|SUP|SPAN|Q) %coreattrs;>

<!ELEMENT FONT - - (%inline;)*>
<!ATTLIST FONT
  size   CDATA    #IMPLIED
  color  %Color;  #IMPLIED
  face   CDATA    #IMPLIED
  >

<!ELEMENT BR - O EMPTY>
<!ATTLIST BR
  clear  (left|all|right|none)  none
  >

<!ELEMENT (%heading;) - - (%inline;)*>
<!ATTLIST (%heading;)
  %coreattrs;
  align  (left|center|right|justify)  #IMPLIED
  >

<!ELEMENT P - O (%inline;)*>
<!ATTLIST P
  %coreattrs;
  align  (left|center|right|justify)  #IMPLIED
  >

<!ELEMENT (DIV|CENTER|ADDRESS) - - (%flow;)*>
<!ATTLIST (DIV|CENTER|ADDRESS) %coreattrs;>

<!ELEMENT BLOCKQUOTE - - (%flow;)*>
<!ATTLIST BLOCKQUOTE
  %coreattrs;
  cite  %URI;  #IMPLIED
  >

<!ELEMENT PRE - - (%inline;)* -(IMG|BIG|SMALL|SUB|SUP|FONT)>
<!ATTLIST PRE
  %coreattrs;
  width  NUMBER  #IMPLIED
  >

<!ELEMENT HR - O EMPTY>
<!ATTLIST HR
  %coreattrs;
  align    (left|center|right)  #IMPLIED
  noshade  (noshade)            #IMPLIED
  size     %Pixels;             #IMPLIED
  width    %Length;             #IMPLIED
  >

<!ELEMENT (UL|OL|DIR|MENU) - - (LI)+>
<!ATTLIST (UL|OL|DIR|MENU) %coreattrs;>
<!ELEMENT LI - O (%flow;)*>
<!ATTLIST LI %coreattrs;>

<!ELEMENT DL - - (DT|DD)+>
<!ATTLIST DL %coreattrs;>
<!ELEMENT (DT|DD) - O (%flow;)*>
<!ATTLIST (DT|DD) %coreattrs;>

<!ELEMENT A - - (%inline;)* -(A)>
<!ATTLIST A
  %coreattrs;
  href    %URI;   #IMPLIED
  name    CDATA   #IMPLIED
  target  CDATA   #IMPLIED
  rel     CDATA   #IMPLIED
  rev     CDATA   #IMPLIED
  >

<!ELEMENT IMG - O EMPTY>
<!ATTLIST IMG
  %coreattrs;
  src     %URI;    #REQUIRED
  alt     %Text;   #IMPLIED
  align   (top|middle|bottom|left|right)  #IMPLIED
  height  %Length; #IMPLIED
  width   %Length; #IMPLIED
  border  %Length; #IMPLIED
  ismap   (ismap)  #IMPLIED
  usemap  %URI;    #IMPLIED
  >

<!ELEMENT MAP - - (AREA)+>
<!ATTLIST MAP
  %coreattrs;
  name  CDATA  #REQUIRED
  >

<!ELEMENT AREA - O EMPTY>
<!ATTLIST AREA
  %coreattrs;
  shape   (rect|circle|poly|default)  rect
  coords  CDATA  #IMPLIED
  href    %URI;  #IMPLIED
  nohref  (nohref)  #IMPLIED
  alt     %Text;    #REQUIRED
  >

<!ELEMENT TABLE - - (CAPTION?, TR+)>
<!ATTLIST TABLE
  %coreattrs;
  summary      %Text;   #IMPLIED
  width        %Length; #IMPLIED
  border       NUMBER   #IMPLIED
  cellspacing  %Length; #IMPLIED
  cellpadding  %Length; #IMPLIED
  align        (left|center|right)  #IMPLIED
  bgcolor      %Color;  #IMPLIED
  >
<!ELEMENT CAPTION - - (%inline;)*>
<!ATTLIST CAPTION
  %coreattrs;
  align  (top|bottom|left|right)  #IMPLIED
  >
<!ELEMENT TR - O (TD|TH)+>
<!ATTLIST TR
  %coreattrs;
  align   (left|center|right|justify|char)  #IMPLIED
  valign  (top|middle|bottom|baseline)      #IMPLIED
  bgcolor %Color;  #IMPLIED
  >
<!ELEMENT (TD|TH) - O (%flow;)*>
<!ATTLIST (TD|TH)
  %coreattrs;
  rowspan  NUMBER  1
  colspan  NUMBER  1
  align    (left|center|right|justify|char)  #IMPLIED
  valign   (top|middle|bottom|baseline)      #IMPLIED
  nowrap   (nowrap)  #IMPLIED
  bgcolor  %Color;   #IMPLIED
  >

<!ELEMENT FORM - - (%flow;)* -(FORM)>
<!ATTLIST FORM
  %coreattrs;
  action   %URI;       #REQUIRED
  method   (get|post)  get
  enctype  CDATA       "application/x-www-form-urlencoded"
  target   CDATA       #IMPLIED
  >

<!ELEMENT INPUT - O EMPTY>
<!ATTLIST INPUT
  %coreattrs;
  type  (text|password|checkbox|radio|submit|reset|file|hidden|image|button)  text
  name      CDATA    #IMPLIED
  value     CDATA    #IMPLIED
  checked   (checked)  #IMPLIED
  size      CDATA    #IMPLIED
  maxlength NUMBER   #IMPLIED
  src       %URI;    #IMPLIED
  alt       CDATA    #IMPLIED
  >

<!ELEMENT SELECT - - (OPTION+)>
<!ATTLIST SELECT
  %coreattrs;
  name      CDATA      #IMPLIED
  size      NUMBER     #IMPLIED
  multiple  (multiple) #IMPLIED
  >
<!ELEMENT OPTION - O (#PCDATA)>
<!ATTLIST OPTION
  %coreattrs;
  selected  (selected)  #IMPLIED
  value     CDATA       #IMPLIED
  >

<!ELEMENT TEXTAREA - - (#PCDATA)>
<!ATTLIST TEXTAREA
  %coreattrs;
  name  CDATA   #IMPLIED
  rows  NUMBER  #REQUIRED
  cols  NUMBER  #REQUIRED
  >
)DTD";

}  // namespace

std::string_view BundledHtml40Dtd() { return kHtml40Dtd; }

}  // namespace weblint
