// An SGML DTD parser (paper §6.1: "Driving weblint with a DTD: generating
// the HTML modules used by weblint, and test-cases for the test-suite. ...
// At the moment the tables are not generated from DTDs, though this is
// something I plan to investigate further.")
//
// Parses the subset of SGML declaration syntax the HTML DTDs use:
//
//   <!ENTITY % name "replacement text">          parameter entities
//   %name;                                       references (expanded)
//   <!ELEMENT name - O (content) +(inc) -(exc)>  element declarations,
//   <!ELEMENT (A|B) - - EMPTY>                   incl. name groups
//   <!ATTLIST name  attr CDATA #REQUIRED ...>    attribute declarations
//   <!-- ... -->  and  -- ... -- comments
//
// The parser extracts what weblint's tables need: tag-omission flags,
// EMPTY/CDATA content, declared attributes with enumerated value groups and
// #REQUIRED flags. (Some of weblint's knowledge — deprecation, vendor
// origin, style context — "cannot be automatically inferred from DTDs",
// §5.5, and stays in the hand-written tables.)
#ifndef WEBLINT_DTD_DTD_PARSER_H_
#define WEBLINT_DTD_DTD_PARSER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/strings.h"

namespace weblint {

struct DtdElement {
  std::string name;  // Lowercase.
  bool omit_start = false;
  bool omit_end = false;
  bool empty = false;            // Declared EMPTY.
  bool cdata = false;            // Declared CDATA content (SCRIPT/STYLE).
  std::string content_model;     // Raw model text, entities expanded.
  std::vector<std::string> inclusions;  // +(...) names, lowercase.
  std::vector<std::string> exclusions;  // -(...) names, lowercase.
};

struct DtdAttribute {
  std::string name;  // Lowercase.
  std::string declared_type;             // "cdata", "name", "number", "id", ...
  std::vector<std::string> enum_values;  // Non-empty for (a|b|c) groups.
  bool required = false;                 // #REQUIRED.
  bool fixed = false;                    // #FIXED.
  std::string default_value;             // Literal default, if given.
};

struct DtdDocument {
  std::map<std::string, DtdElement, ILess> elements;
  // element -> attribute -> declaration.
  std::map<std::string, std::map<std::string, DtdAttribute, ILess>, ILess> attributes;
  std::map<std::string, std::string> parameter_entities;
};

// Parses `text`. Fails on malformed declarations (with the offending
// declaration quoted) or unresolvable parameter entities.
Result<DtdDocument> ParseDtd(std::string_view text);

}  // namespace weblint

#endif  // WEBLINT_DTD_DTD_PARSER_H_
