#include "cache/lint_cache.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "cache/report_serdes.h"
#include "telemetry/log.h"
#include "util/digest.h"
#include "util/file_io.h"
#include "util/strings.h"

namespace weblint {

namespace {

// The index file names the store format. Entries themselves carry a magic
// and payload digest (report_serdes), so the index exists to (a) mark the
// directory as a weblint cache and (b) let a future format break all old
// entries at once by bumping the version.
constexpr std::string_view kIndexName = "index";
constexpr std::string_view kIndexContent = "weblint-cache 1\n";
constexpr std::string_view kEntryExtension = ".wlc";

std::string HexUint64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer, 16);
}

}  // namespace

std::string CacheKey::Hex() const {
  return HexUint64(content_digest) + "-" + HexUint64(config_fingerprint) + "-" +
         HexUint64(spec_digest);
}

CacheKey MakeLintCacheKey(std::string_view name, std::string_view content,
                          std::uint64_t config_fingerprint, std::string_view spec_id) {
  CacheKey key;
  // The document body goes through the bulk hash (it dominates digest time
  // on warm runs); the name is framed separately so (name, content) pairs
  // cannot collide by concatenation.
  key.content_digest =
      Digest64().AddString(name).AddUint64(HashBytesBulk(content)).Finish();
  key.config_fingerprint = config_fingerprint;
  key.spec_digest = Digest64().AddString(spec_id).Finish();
  return key;
}

void ReplayReport(const LintReport& report, Emitter& emitter) {
  emitter.BeginDocument(report.name);
  for (const Diagnostic& diagnostic : report.diagnostics) {
    emitter.Emit(diagnostic);
  }
  emitter.EndDocument();
}

std::string FormatCacheStats(const CacheStats& stats) {
  return StrFormat(
      "lint cache: %d hit(s) (%d from disk), %d miss(es), %d store(s) "
      "(%d to disk), %d eviction(s), %d corrupt disk entr(ies)\n",
      stats.hits, stats.disk_hits, stats.misses, stats.stores, stats.disk_stores,
      stats.evictions, stats.disk_corrupt);
}

LintResultCache::LintResultCache(Options options)
    : options_(std::move(options)),
      per_shard_capacity_(options_.capacity / kShards > 0 ? options_.capacity / kShards : 1) {
  MetricsRegistry* metrics = options_.metrics;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  counters_.hits = metrics->GetCounter("weblint_cache_hits_total");
  counters_.misses = metrics->GetCounter("weblint_cache_misses_total");
  counters_.stores = metrics->GetCounter("weblint_cache_stores_total");
  counters_.evictions = metrics->GetCounter("weblint_cache_evictions_total");
  counters_.disk_hits = metrics->GetCounter("weblint_cache_disk_hits_total");
  counters_.disk_stores = metrics->GetCounter("weblint_cache_disk_stores_total");
  counters_.disk_corrupt = metrics->GetCounter("weblint_cache_disk_corrupt_total");
  memory_entries_ = metrics->GetGauge("weblint_cache_memory_entries");
  if (!options_.directory.empty()) {
    OpenDiskStore();
  }
}

std::shared_ptr<const LintReport> LintResultCache::Lookup(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (const auto it = shard.index.find(key); it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      counters_.hits->Increment();
      return it->second->report;
    }
  }
  if (disk_enabled_) {
    if (auto report = DiskLookup(key); report != nullptr) {
      StoreInMemory(key, report);  // Promote so the next hit skips the disk.
      counters_.hits->Increment();
      counters_.disk_hits->Increment();
      return report;
    }
  }
  counters_.misses->Increment();
  return nullptr;
}

void LintResultCache::Store(const CacheKey& key, const LintReport& report) {
  auto shared = std::make_shared<const LintReport>(report);
  if (StoreInMemory(key, shared)) {
    counters_.stores->Increment();
  }
  if (disk_enabled_) {
    DiskStore(key, report);
  }
}

bool LintResultCache::StoreInMemory(const CacheKey& key,
                                    std::shared_ptr<const LintReport> report) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    it->second->report = std::move(report);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return false;
  }
  shard.lru.push_front(Entry{key, std::move(report)});
  shard.index.emplace(key, shard.lru.begin());
  memory_entries_->Add(1);
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    counters_.evictions->Increment();
    memory_entries_->Add(-1);
  }
  return true;
}

CacheStats LintResultCache::stats() const {
  // A snapshot view over the registry counters: --cache-stats and /metrics
  // render the same cells.
  CacheStats out;
  out.hits = counters_.hits->Value();
  out.misses = counters_.misses->Value();
  out.stores = counters_.stores->Value();
  out.evictions = counters_.evictions->Value();
  out.disk_hits = counters_.disk_hits->Value();
  out.disk_stores = counters_.disk_stores->Value();
  out.disk_corrupt = counters_.disk_corrupt->Value();
  return out;
}

size_t LintResultCache::MemoryEntryCount() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<Shard&>(shard).mu);
    n += shard.lru.size();
  }
  return n;
}

void LintResultCache::OpenDiskStore() {
  // Any failure here leaves the cache memory-only: the disk tier is an
  // optimisation, never a reason to refuse to lint.
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    return;
  }
  const std::string index_path = PathJoin(options_.directory, kIndexName);
  auto existing = ReadFile(index_path);
  if (!existing.ok() || *existing != kIndexContent) {
    // Absent, unreadable, or from a different store version: stamp ours.
    // Old-format entries are rejected individually by their magic/version
    // on read and overwritten on the next store.
    if (!WriteFile(index_path, kIndexContent).ok()) {
      return;
    }
  }
  disk_enabled_ = true;
}

std::string LintResultCache::EntryPath(const CacheKey& key) const {
  return PathJoin(options_.directory, key.Hex() + std::string(kEntryExtension));
}

std::shared_ptr<const LintReport> LintResultCache::DiskLookup(const CacheKey& key) {
  const std::string path = EntryPath(key);
  auto bytes = ReadFile(path);
  if (!bytes.ok()) {
    return nullptr;  // Not on disk: a plain miss.
  }
  auto report = DeserializeLintReport(*bytes);
  if (!report.has_value()) {
    // Truncated / torn / stale-format entry. Drop it so the slot is clean
    // for the re-store; failure to remove is itself ignorable.
    counters_.disk_corrupt->Increment();
    WEBLINT_LOG(kWarn, "cache", "disk-entry-corrupt", {{"path", path}});
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return nullptr;
  }
  return std::make_shared<const LintReport>(*std::move(report));
}

void LintResultCache::DiskStore(const CacheKey& key, const LintReport& report) {
  // Write-then-rename so concurrent readers (another weblint process over
  // the same --cache-dir) never observe a half-written entry.
  const std::string path = EntryPath(key);
  const std::string temp =
      path + ".tmp" + std::to_string(::getpid()) + "." +
      std::to_string(temp_counter_.fetch_add(1, std::memory_order_relaxed));
  if (!WriteFile(temp, SerializeLintReport(report)).ok()) {
    return;
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::filesystem::remove(temp, ec);
    return;
  }
  counters_.disk_stores->Increment();
}

}  // namespace weblint
