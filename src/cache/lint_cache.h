// Content-addressed lint-result cache (two tiers).
//
// Weblint is invoked repeatedly over the same pages: `-R` site sweeps from
// crontab, the poacher robot re-crawling a site, and gateway users checking
// the same popular URLs over and over (paper §3.4/§4.5). Almost all of that
// repeat traffic re-lints bytes that have not changed. This cache keys a
// finished LintReport on
//
//   (digest of document name + bytes, Config::Fingerprint(), spec id)
//
// so an entry can only hit when re-linting would provably produce the same
// report: same bytes, same display name, same enabled messages and options,
// same HTML version. Changing any of them — editing one page, flipping one
// -e/-d switch, selecting html32 — misses exactly the affected entries.
//
// Tiers:
//  * In-memory: a sharded LRU (mutex per shard). Lookups and stores from
//    concurrent lint workers of the work-stealing pool contend only on
//    their key's shard.
//  * On-disk (optional, --cache-dir): one file per entry plus a versioned
//    index file, surviving process restarts. The disk tier is
//    corruption-tolerant by contract: a missing, truncated, torn, or
//    wrong-version entry is a miss, never an error.
//
// Determinism contract: a replayed hit is byte-identical to a fresh lint —
// the stored report carries everything the emitters are fed (name,
// diagnostics in emission order), and replay drives BeginDocument /
// Emit* / EndDocument exactly like the engine does.
#ifndef WEBLINT_CACHE_LINT_CACHE_H_
#define WEBLINT_CACHE_LINT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/report.h"
#include "telemetry/metrics.h"

namespace weblint {

// The content address of one lint result.
struct CacheKey {
  std::uint64_t content_digest = 0;      // Document name + bytes.
  std::uint64_t config_fingerprint = 0;  // Config::Fingerprint().
  std::uint64_t spec_digest = 0;         // Digest of the spec/HTML-version id.

  friend bool operator==(const CacheKey&, const CacheKey&) = default;

  // Stable filename stem for the disk tier ("0123456789abcdef-...").
  std::string Hex() const;
};

// Derives the key for one document. `name` is the display name (path, URL,
// "pasted HTML") — part of the address because it is embedded in the
// report's diagnostics.
CacheKey MakeLintCacheKey(std::string_view name, std::string_view content,
                          std::uint64_t config_fingerprint, std::string_view spec_id);

// Monotonic counters, printed under --cache-stats and asserted by tests.
struct CacheStats {
  std::uint64_t hits = 0;          // Served from memory or disk.
  std::uint64_t misses = 0;        // Neither tier had the entry.
  std::uint64_t stores = 0;        // New entries inserted in memory.
  std::uint64_t evictions = 0;     // LRU entries dropped from memory.
  std::uint64_t disk_hits = 0;     // Hits satisfied by the disk tier.
  std::uint64_t disk_stores = 0;   // Entries written to disk.
  std::uint64_t disk_corrupt = 0;  // Unreadable disk entries (treated as misses).
};

// One line per counter, for --cache-stats output.
std::string FormatCacheStats(const CacheStats& stats);

// Streams a cached report through `emitter` with the exact BeginDocument /
// Emit / EndDocument sequence a fresh lint of the same document produces —
// the replay half of the determinism contract.
void ReplayReport(const LintReport& report, Emitter& emitter);

class LintResultCache {
 public:
  struct Options {
    // Total in-memory entries across all shards (minimum one per shard).
    size_t capacity = 4096;
    // Persistent tier directory; empty = memory only. Created if absent.
    std::string directory;
    // Registry the cache's weblint_cache_* counters live in. Null gives the
    // cache a private registry: per-instance stats() stay exact (tests),
    // while tools and the gateway pass their process registry so one scrape
    // sees every tier's traffic.
    MetricsRegistry* metrics = nullptr;
  };

  explicit LintResultCache(Options options);

  LintResultCache(const LintResultCache&) = delete;
  LintResultCache& operator=(const LintResultCache&) = delete;

  // Returns the cached report, or nullptr on miss. The returned report is
  // shared and immutable; callers copy if they need to mutate.
  std::shared_ptr<const LintReport> Lookup(const CacheKey& key);

  // Inserts (or refreshes) an entry in both tiers.
  void Store(const CacheKey& key, const LintReport& report);

  CacheStats stats() const;

  size_t MemoryEntryCount() const;
  const std::string& directory() const { return options_.directory; }

 private:
  // Sixteen shards keeps pool-wide contention negligible while staying
  // cheap to construct for short-lived Weblint instances.
  static constexpr size_t kShards = 16;

  struct Entry {
    CacheKey key;
    std::shared_ptr<const LintReport> report;
  };

  struct KeyHash {
    size_t operator()(const CacheKey& key) const {
      // Components are already FNV-mixed; combining with xor-rotate is enough.
      return static_cast<size_t>(key.content_digest ^
                                 (key.config_fingerprint << 1 | key.config_fingerprint >> 63) ^
                                 (key.spec_digest << 2 | key.spec_digest >> 62));
    }
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // Front = most recent.
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index;
  };

  Shard& ShardFor(const CacheKey& key) {
    return shards_[KeyHash{}(key) % kShards];
  }

  // Inserts into the memory tier only; returns false if the key was
  // already present (refreshed, not stored).
  bool StoreInMemory(const CacheKey& key, std::shared_ptr<const LintReport> report);

  void OpenDiskStore();
  std::shared_ptr<const LintReport> DiskLookup(const CacheKey& key);
  void DiskStore(const CacheKey& key, const LintReport& report);
  std::string EntryPath(const CacheKey& key) const;

  Options options_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_{kShards};
  bool disk_enabled_ = false;
  std::atomic<std::uint64_t> temp_counter_{0};

  // Counters are registry-backed (the one code path behind --cache-stats,
  // --metrics and the gateway's /metrics). owned_metrics_ backs them when
  // no shared registry was supplied.
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  struct {
    Counter* hits;
    Counter* misses;
    Counter* stores;
    Counter* evictions;
    Counter* disk_hits;
    Counter* disk_stores;
    Counter* disk_corrupt;
  } counters_{};
  Gauge* memory_entries_ = nullptr;
};

}  // namespace weblint

#endif  // WEBLINT_CACHE_LINT_CACHE_H_
