#include "cache/report_serdes.h"

#include <cstring>

#include "util/digest.h"

namespace weblint {

namespace {

// "WLRC" + version; the payload digest after the header detects truncation
// and bit rot without trusting any length field inside the payload.
constexpr char kMagic[4] = {'W', 'L', 'R', 'C'};
constexpr size_t kHeaderSize = sizeof(kMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t);

void PutUint32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutUint64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutString(std::string& out, std::string_view s) {
  PutUint32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void PutLocation(std::string& out, const SourceLocation& location) {
  PutUint32(out, location.line);
  PutUint32(out, location.column);
}

// Bounds-checked reader over the payload. Every Get* reports failure via
// ok(); callers bail out on the first false.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  std::uint32_t GetUint32() {
    std::uint32_t value = 0;
    if (!Take(sizeof(value))) {
      return 0;
    }
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(bytes_[pos_ - 4 + i]))
               << (8 * i);
    }
    return value;
  }

  std::string GetString() {
    const std::uint32_t length = GetUint32();
    if (!Take(length)) {
      return std::string();
    }
    return std::string(bytes_.substr(pos_ - length, length));
  }

  SourceLocation GetLocation() {
    SourceLocation location;
    location.line = GetUint32();
    location.column = GetUint32();
    return location;
  }

  bool GetBool() {
    if (!Take(1)) {
      return false;
    }
    return bytes_[pos_ - 1] != 0;
  }

 private:
  bool Take(size_t n) {
    if (!ok_ || n > bytes_.size() - pos_) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

std::optional<Category> CategoryFromByte(std::uint32_t value) {
  switch (value) {
    case 0:
      return Category::kError;
    case 1:
      return Category::kWarning;
    case 2:
      return Category::kStyle;
    default:
      return std::nullopt;
  }
}

}  // namespace

std::string SerializeLintReport(const LintReport& report) {
  std::string payload;
  PutString(payload, report.name);
  PutUint32(payload, report.lines);
  PutUint64(payload, report.tokens);

  PutUint32(payload, static_cast<std::uint32_t>(report.diagnostics.size()));
  for (const Diagnostic& d : report.diagnostics) {
    PutString(payload, d.message_id);
    PutUint32(payload, static_cast<std::uint32_t>(d.category));
    PutString(payload, d.file);
    PutLocation(payload, d.location);
    PutString(payload, d.message);
  }

  PutUint32(payload, static_cast<std::uint32_t>(report.links.size()));
  for (const LinkRef& link : report.links) {
    PutString(payload, link.element);
    PutString(payload, link.url);
    PutLocation(payload, link.location);
    payload.push_back(link.is_resource ? 1 : 0);
  }

  PutUint32(payload, static_cast<std::uint32_t>(report.anchors.size()));
  for (const AnchorDef& anchor : report.anchors) {
    PutString(payload, anchor.name);
    PutLocation(payload, anchor.location);
  }

  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  PutUint32(out, kReportSerdesVersion);
  PutUint64(out, HashBytes(payload));
  out.append(payload);
  return out;
}

std::optional<LintReport> DeserializeLintReport(std::string_view bytes) {
  if (bytes.size() < kHeaderSize ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  ByteReader header(bytes.substr(sizeof(kMagic), kHeaderSize - sizeof(kMagic)));
  const std::uint32_t version = header.GetUint32();
  std::uint64_t expected_digest = header.GetUint32();
  expected_digest |= static_cast<std::uint64_t>(header.GetUint32()) << 32;
  if (!header.ok() || version != kReportSerdesVersion) {
    return std::nullopt;
  }
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (HashBytes(payload) != expected_digest) {
    return std::nullopt;
  }

  ByteReader reader(payload);
  LintReport report;
  report.name = reader.GetString();
  report.lines = reader.GetUint32();
  report.tokens = reader.GetUint32();
  report.tokens |= static_cast<std::uint64_t>(reader.GetUint32()) << 32;

  const std::uint32_t diagnostic_count = reader.GetUint32();
  for (std::uint32_t i = 0; reader.ok() && i < diagnostic_count; ++i) {
    Diagnostic d;
    d.message_id = reader.GetString();
    const auto category = CategoryFromByte(reader.GetUint32());
    if (!category.has_value()) {
      return std::nullopt;
    }
    d.category = *category;
    d.file = reader.GetString();
    d.location = reader.GetLocation();
    d.message = reader.GetString();
    report.diagnostics.push_back(std::move(d));
  }

  const std::uint32_t link_count = reader.GetUint32();
  for (std::uint32_t i = 0; reader.ok() && i < link_count; ++i) {
    LinkRef link;
    link.element = reader.GetString();
    link.url = reader.GetString();
    link.location = reader.GetLocation();
    link.is_resource = reader.GetBool();
    report.links.push_back(std::move(link));
  }

  const std::uint32_t anchor_count = reader.GetUint32();
  for (std::uint32_t i = 0; reader.ok() && i < anchor_count; ++i) {
    AnchorDef anchor;
    anchor.name = reader.GetString();
    anchor.location = reader.GetLocation();
    report.anchors.push_back(std::move(anchor));
  }

  if (!reader.ok() || !reader.AtEnd()) {
    return std::nullopt;
  }
  return report;
}

}  // namespace weblint
