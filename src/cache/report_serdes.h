// Binary serialization of LintReport for the persistent lint cache.
//
// The format is deliberately dumb: a fixed magic + version, a digest of the
// payload, then length-prefixed little-endian fields. Robustness matters
// more than compactness — a cache entry read back from disk may be
// truncated, torn, or from an older binary, and every such case must come
// back as "no entry" (std::nullopt), never as a crash or a garbage report.
#ifndef WEBLINT_CACHE_REPORT_SERDES_H_
#define WEBLINT_CACHE_REPORT_SERDES_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/report.h"

namespace weblint {

// Bump whenever the byte layout or the meaning of any serialized field
// changes; old entries then deserialize as nullopt and get re-linted.
inline constexpr std::uint32_t kReportSerdesVersion = 2;

// Serializes `report` (every field that CheckFile/CheckString produce:
// name, diagnostics, links, anchors, line and token counts).
std::string SerializeLintReport(const LintReport& report);

// Parses bytes produced by SerializeLintReport. Returns nullopt for any
// malformed input: wrong magic, version mismatch, payload digest mismatch,
// truncation, or out-of-range lengths.
std::optional<LintReport> DeserializeLintReport(std::string_view bytes);

}  // namespace weblint

#endif  // WEBLINT_CACHE_REPORT_SERDES_H_
