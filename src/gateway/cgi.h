// CGI request parsing for the weblint gateway (paper §3.4: "These are
// usually forms which let you enter a URL or snippet of HTML").
#ifndef WEBLINT_GATEWAY_CGI_H_
#define WEBLINT_GATEWAY_CGI_H_

#include <map>
#include <string>
#include <string_view>

#include "net/http_wire.h"
#include "util/result.h"

namespace weblint {

// A parsed CGI form submission. Repeated fields keep the last value (the
// gateway form has no repeated fields).
struct CgiRequest {
  std::string method = "GET";
  std::map<std::string, std::string> params;

  std::string_view Param(std::string_view name) const {
    const auto it = params.find(std::string(name));
    return it == params.end() ? std::string_view() : std::string_view(it->second);
  }
  bool Has(std::string_view name) const { return params.contains(std::string(name)); }
};

// Parses application/x-www-form-urlencoded content ("a=1&b=two+words").
std::map<std::string, std::string> ParseFormUrlEncoded(std::string_view body);

// Builds a CgiRequest from the CGI environment convention:
// REQUEST_METHOD, QUERY_STRING, and (for POST) the request body.
// Content-type handling (deliberate): any type naming
// x-www-form-urlencoded is accepted regardless of case or parameters
// ("; charset=UTF-8"); a POST with no CONTENT_TYPE at all is leniently
// parsed as a form (old clients omit it); any other explicit type
// (multipart/form-data, text/plain, ...) fails.
Result<CgiRequest> ParseCgiRequest(const std::map<std::string, std::string>& env,
                                   std::string_view post_body);

// Builds a CgiRequest from a parsed HTTP wire request — the standalone
// gateway server path (no CGI environment involved). GET parameters come
// from the query string; POST bodies must be form-urlencoded.
Result<CgiRequest> CgiRequestFromHttp(const HttpRequest& request);

}  // namespace weblint

#endif  // WEBLINT_GATEWAY_CGI_H_
