#include "gateway/tenant.h"

#include <cmath>

#include "util/strings.h"

namespace weblint {

namespace {

HttpResponse PlainResponse(int status, std::string_view reason, std::string_view body) {
  HttpResponse response;
  response.status = status;
  response.reason = std::string(reason);
  response.headers["content-type"] = "text/plain";
  response.body = std::string(body);
  return response;
}

Status ApplyWarningIds(Config* config, const std::vector<std::string>& ids, bool enable,
                       const std::string& tenant_name) {
  for (const std::string& id : ids) {
    Status s = enable ? config->warnings.Enable(id) : config->warnings.Disable(id);
    if (!s.ok()) {
      return Fail("tenant " + tenant_name + ": " + s.message());
    }
  }
  return Status::Ok();
}

std::vector<std::string> SplitIds(std::string_view value) {
  std::vector<std::string> ids;
  for (std::string_view id : Split(value, ',')) {
    if (!Trim(id).empty()) {
      ids.emplace_back(Trim(id));
    }
  }
  return ids;
}

}  // namespace

Result<std::vector<TenantSpec>> ParseTenantsFile(std::string_view text) {
  std::vector<TenantSpec> specs;
  size_t line_number = 0;
  for (std::string_view line : Split(text, '\n')) {
    ++line_number;
    line = Trim(line);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    TenantSpec spec;
    for (std::string_view token : SplitWhitespace(line)) {
      const size_t eq = token.find('=');
      if (eq == std::string_view::npos) {
        return Fail(StrFormat("tenants file line %d: expected field=value, got '%s'",
                              line_number, token));
      }
      const std::string_view field = token.substr(0, eq);
      const std::string_view value = token.substr(eq + 1);
      bool numeric_ok = true;
      if (field == "key") {
        spec.key = std::string(value);
      } else if (field == "name") {
        spec.name = std::string(value);
      } else if (field == "rate") {
        numeric_ok = ParseUint(value, &spec.rate_per_sec);
      } else if (field == "burst") {
        numeric_ok = ParseUint(value, &spec.burst);
      } else if (field == "concurrency") {
        numeric_ok = ParseUint(value, &spec.max_concurrency);
      } else if (field == "priority") {
        numeric_ok = ParseUint(value, &spec.priority);
      } else if (field == "enable") {
        spec.enable_ids = SplitIds(value);
      } else if (field == "disable") {
        spec.disable_ids = SplitIds(value);
      } else {
        return Fail(StrFormat("tenants file line %d: unknown field '%s'", line_number, field));
      }
      if (!numeric_ok) {
        return Fail(StrFormat("tenants file line %d: bad number in '%s'", line_number, token));
      }
    }
    if (spec.key.empty()) {
      return Fail(StrFormat("tenants file line %d: missing key=", line_number));
    }
    for (const TenantSpec& existing : specs) {
      if (existing.key == spec.key) {
        return Fail(StrFormat("tenants file line %d: duplicate key '%s'", line_number, spec.key));
      }
    }
    if (spec.name.empty()) {
      spec.name = spec.key == "*" ? "anonymous" : spec.key;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

TokenBucket::TokenBucket(std::uint32_t rate_per_sec, std::uint32_t burst)
    : rate_per_sec_(rate_per_sec),
      burst_(burst > 0 ? burst : rate_per_sec),
      tokens_(burst_ > 0 ? burst_ : 0) {}

bool TokenBucket::TryAcquire(std::uint64_t now_us, std::uint32_t* retry_after_s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!primed_) {
    primed_ = true;
    last_us_ = now_us;
  }
  if (now_us > last_us_ && rate_per_sec_ > 0) {
    const double elapsed_s = static_cast<double>(now_us - last_us_) / 1e6;
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_per_sec_);
  }
  last_us_ = now_us;
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  if (retry_after_s != nullptr) {
    // Whole seconds until one token accrues, rounded up, at least 1 — an
    // unlimited-rate bucket never refuses, so rate_per_sec_ > 0 here.
    const double deficit = 1.0 - tokens_;
    const double wait_s = rate_per_sec_ > 0 ? deficit / rate_per_sec_ : 1.0;
    *retry_after_s = static_cast<std::uint32_t>(std::ceil(std::max(wait_s, 1.0)));
  }
  return false;
}

AdmissionController::AdmissionController(const Histogram* latency, std::uint32_t slo_p95_ms,
                                         MetricsRegistry* registry)
    : latency_(latency), slo_us_(static_cast<std::uint64_t>(slo_p95_ms) * 1000) {
  if (registry != nullptr) {
    p95_gauge_ = registry->GetGauge("weblint_gateway_slo_p95_us");
    shed_priority_gauge_ = registry->GetGauge("weblint_gateway_slo_shed_priority");
    shed_priority_gauge_->Set(-1);
    shed_counter_ = registry->GetCounter("weblint_gateway_slo_shed_total");
  }
}

bool AdmissionController::Admit(std::uint32_t priority) {
  if (latency_ == nullptr || slo_us_ == 0) {
    return true;
  }
  const HistogramSnapshot snapshot = latency_->Snapshot();
  std::uint64_t p95 = 0;
  int shed_max = -1;  // Highest priority currently being shed.
  if (snapshot.count >= kMinSamples) {
    p95 = snapshot.Quantile(0.95);
    if (p95 > 2 * slo_us_) {
      shed_max = 2;
    } else if (2 * p95 > 3 * slo_us_) {  // p95 > 1.5x SLO.
      shed_max = 1;
    } else if (p95 > slo_us_) {
      shed_max = 0;
    }
  }
  last_p95_us_.store(p95);
  if (p95_gauge_ != nullptr) {
    p95_gauge_->Set(static_cast<std::int64_t>(p95));
  }
  if (shed_priority_gauge_ != nullptr) {
    shed_priority_gauge_->Set(shed_max);
  }
  const bool admit = static_cast<std::int64_t>(priority) > shed_max;
  if (!admit && shed_counter_ != nullptr) {
    shed_counter_->Increment();
  }
  return admit;
}

Result<std::unique_ptr<TenantRegistry>> TenantRegistry::Create(
    const Config& base, const std::vector<TenantSpec>& specs, UrlFetcher* fetcher,
    const GatewayOptions& options, MetricsRegistry* metrics, Clock* metrics_clock) {
  auto registry = std::unique_ptr<TenantRegistry>(new TenantRegistry());
  auto build = [&](const TenantSpec& spec) -> Status {
    Config config = base;
    if (Status s = ApplyWarningIds(&config, spec.enable_ids, /*enable=*/true, spec.name);
        !s.ok()) {
      return s;
    }
    if (Status s = ApplyWarningIds(&config, spec.disable_ids, /*enable=*/false, spec.name);
        !s.ok()) {
      return s;
    }
    auto tenant = std::make_unique<Tenant>();
    tenant->spec = spec;
    if (tenant->spec.name.empty()) {
      tenant->spec.name = spec.key == "*" ? "anonymous" : spec.key;
    }
    tenant->lint = std::make_unique<Weblint>(config);
    if (metrics != nullptr) {
      tenant->lint->EnableMetrics(metrics, metrics_clock);
      const std::string& name = tenant->spec.name;
      tenant->requests =
          metrics->GetCounter("weblint_gateway_tenant_requests_total", "tenant", name);
      tenant->throttled =
          metrics->GetCounter("weblint_gateway_tenant_throttled_total", "tenant", name);
      tenant->shed = metrics->GetCounter("weblint_gateway_tenant_shed_total", "tenant", name);
      tenant->latency = metrics->GetHistogram("weblint_gateway_tenant_micros", "tenant", name);
    }
    tenant->gateway = std::make_unique<Gateway>(*tenant->lint, fetcher, options);
    if (spec.rate_per_sec > 0) {
      tenant->bucket = std::make_unique<TokenBucket>(spec.rate_per_sec, spec.burst);
    }
    Tenant* raw = tenant.get();
    if (!registry->tenants_.emplace(spec.key, std::move(tenant)).second) {
      return Fail("duplicate tenant key '" + spec.key + "'");
    }
    if (spec.key == "*") {
      registry->anonymous_ = raw;
    }
    return Status::Ok();
  };
  for (const TenantSpec& spec : specs) {
    if (Status s = build(spec); !s.ok()) {
      return s;
    }
  }
  if (registry->anonymous_ == nullptr) {
    TenantSpec anonymous;
    anonymous.key = "*";
    anonymous.name = "anonymous";
    if (Status s = build(anonymous); !s.ok()) {
      return s;
    }
  }
  return registry;
}

TenantRegistry::Tenant* TenantRegistry::Resolve(std::string_view api_key) {
  if (api_key.empty()) {
    return anonymous_;
  }
  const auto it = tenants_.find(api_key);
  return it == tenants_.end() ? nullptr : it->second.get();
}

TenantService::TenantService(const Gateway* fallback, TenantRegistry* tenants,
                             AdmissionController* admission, Clock* clock)
    : TenantService(fallback, tenants, admission, clock, Options()) {}

TenantService::TenantService(const Gateway* fallback, TenantRegistry* tenants,
                             AdmissionController* admission, Clock* clock, Options options)
    : fallback_(fallback),
      tenants_(tenants),
      admission_(admission),
      clock_(clock != nullptr ? clock : Clock::System()),
      options_(std::move(options)) {}

HttpResponse TenantService::Handle(const HttpRequest& request) const {
  TenantRegistry::Tenant* tenant = nullptr;
  if (tenants_ != nullptr) {
    tenant = tenants_->Resolve(request.Header(options_.api_key_header));
    if (tenant == nullptr) {
      return PlainResponse(401, "Unauthorized", "unknown API key\n");
    }
    if (tenant->requests != nullptr) {
      tenant->requests->Increment();
    }
  }
  // Admission first: when the whole service is over its latency SLO, a
  // request that would be within quota is still shed if its priority is on
  // the chopping block — quota is per tenant, the SLO is global.
  const std::uint32_t priority = tenant != nullptr ? tenant->spec.priority : 0;
  if (admission_ != nullptr && !admission_->Admit(priority)) {
    if (tenant != nullptr && tenant->shed != nullptr) {
      tenant->shed->Increment();
    }
    HttpResponse response =
        PlainResponse(503, "Service Unavailable", "gateway over latency SLO; retry shortly\n");
    response.headers["retry-after"] = "1";
    return response;
  }
  if (tenant != nullptr && tenant->bucket != nullptr) {
    std::uint32_t retry_after_s = 1;
    if (!tenant->bucket->TryAcquire(clock_->NowMicros(), &retry_after_s)) {
      if (tenant->throttled != nullptr) {
        tenant->throttled->Increment();
      }
      HttpResponse response =
          PlainResponse(429, "Too Many Requests", "tenant rate limit exceeded; retry later\n");
      response.headers["retry-after"] = std::to_string(retry_after_s);
      return response;
    }
  }
  bool slot_taken = false;
  if (tenant != nullptr && tenant->spec.max_concurrency > 0) {
    if (tenant->inflight.fetch_add(1) >= tenant->spec.max_concurrency) {
      tenant->inflight.fetch_sub(1);
      if (tenant->throttled != nullptr) {
        tenant->throttled->Increment();
      }
      HttpResponse response = PlainResponse(429, "Too Many Requests",
                                            "tenant concurrency limit exceeded; retry shortly\n");
      response.headers["retry-after"] = "1";
      return response;
    }
    slot_taken = true;
  }
  const std::uint64_t begin_us = clock_->NowMicros();
  const Gateway* gateway = tenant != nullptr ? tenant->gateway.get() : fallback_;
  HttpResponse response = gateway->HandleHttp(request);
  if (tenant != nullptr && tenant->latency != nullptr) {
    // Dispatch time. A streamed response's producer runs later, on the
    // serving path — its cost lands in the server's own latency series.
    tenant->latency->Record(clock_->NowMicros() - begin_us);
  }
  if (slot_taken) {
    tenant->inflight.fetch_sub(1);
  }
  return response;
}

}  // namespace weblint
