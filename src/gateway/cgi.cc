#include "gateway/cgi.h"

#include "util/strings.h"
#include "util/url.h"

namespace weblint {

std::map<std::string, std::string> ParseFormUrlEncoded(std::string_view body) {
  std::map<std::string, std::string> params;
  for (std::string_view pair : Split(body, '&')) {
    if (pair.empty()) {
      continue;
    }
    const size_t eq = pair.find('=');
    const std::string_view key = eq == std::string_view::npos ? pair : pair.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view() : pair.substr(eq + 1);
    params[UrlDecode(key, /*plus_as_space=*/true)] = UrlDecode(value, /*plus_as_space=*/true);
  }
  return params;
}

Result<CgiRequest> ParseCgiRequest(const std::map<std::string, std::string>& env,
                                   std::string_view post_body) {
  CgiRequest request;
  if (const auto it = env.find("REQUEST_METHOD"); it != env.end()) {
    request.method = AsciiUpper(it->second);
  }
  if (const auto it = env.find("QUERY_STRING"); it != env.end()) {
    request.params = ParseFormUrlEncoded(it->second);
  }
  if (request.method == "POST") {
    std::string content_type;
    if (const auto it = env.find("CONTENT_TYPE"); it != env.end()) {
      content_type = it->second;
    }
    if (!content_type.empty() && !IContains(content_type, "x-www-form-urlencoded")) {
      return Fail("unsupported content type: " + content_type);
    }
    for (auto& [key, value] : ParseFormUrlEncoded(post_body)) {
      request.params[key] = value;  // POST fields override query fields.
    }
  }
  return request;
}

Result<CgiRequest> CgiRequestFromHttp(const HttpRequest& http) {
  CgiRequest request;
  request.method = AsciiUpper(http.method);
  request.params = ParseFormUrlEncoded(http.Query());
  if (request.method == "POST") {
    const std::string_view content_type = http.Header("content-type");
    if (!content_type.empty() && !IContains(content_type, "x-www-form-urlencoded")) {
      return Fail("unsupported content type: " + std::string(content_type));
    }
    for (auto& [key, value] : ParseFormUrlEncoded(http.body)) {
      request.params[key] = value;
    }
  }
  return request;
}

}  // namespace weblint
