// Multi-tenant serving for the gateway: per-tenant configuration keyed on
// an API key, token-bucket quotas on the injected clock, and SLO-aware
// admission control driven by the live request-latency histogram.
//
// Motivation (ROADMAP "multi-tenant gateway service"): one engine serving
// many differently-configured validation profiles — each tenant gets its
// own Config (and therefore its own Config::Fingerprint and cache
// identity), its own rate/concurrency budget, and its own metric labels,
// while the SLO controller sheds the lowest-priority traffic first when the
// whole service runs hot.
#ifndef WEBLINT_GATEWAY_TENANT_H_
#define WEBLINT_GATEWAY_TENANT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/linter.h"
#include "gateway/gateway.h"
#include "telemetry/metrics.h"
#include "util/clock.h"
#include "util/result.h"

namespace weblint {

// One tenant's declaration, parsed from --tenants-file. One tenant per
// line, '#' comments and blank lines ignored, fields are space-separated
// key=value pairs:
//
//   key=alpha-key name=alpha rate=5 burst=10 concurrency=4 priority=2
//       enable=bad-link disable=upper-case,mailto-link   (all on one line)
//
// `key` is required and must be unique; the key "*" configures the
// anonymous tenant (requests carrying no API key), which otherwise defaults
// to unlimited quota at priority 0.
struct TenantSpec {
  std::string key;        // API-key header value ("*" = anonymous).
  std::string name;       // Metric label value; defaults to the key.
  std::uint32_t rate_per_sec = 0;    // Token refill rate; 0 = unlimited.
  std::uint32_t burst = 0;           // Bucket capacity; 0 = same as rate.
  std::uint32_t max_concurrency = 0;  // In-flight request cap; 0 = unlimited.
  std::uint32_t priority = 0;  // Higher survives admission shedding longer.
  std::vector<std::string> enable_ids;   // Warning ids enabled on top of base.
  std::vector<std::string> disable_ids;  // Warning ids disabled from base.
};

Result<std::vector<TenantSpec>> ParseTenantsFile(std::string_view text);

// A token bucket on caller-supplied time: `now_us` comes from the injected
// Clock, so a FakeClock test controls refill exactly. Thread-safe.
class TokenBucket {
 public:
  TokenBucket(std::uint32_t rate_per_sec, std::uint32_t burst);

  // Takes one token if available. On refusal, *retry_after_s (when
  // non-null) is set to the whole seconds until one token accrues (>= 1) —
  // the value for the 429's Retry-After header.
  bool TryAcquire(std::uint64_t now_us, std::uint32_t* retry_after_s);

 private:
  const double rate_per_sec_;
  const double burst_;
  std::mutex mu_;
  double tokens_;
  std::uint64_t last_us_ = 0;
  bool primed_ = false;
};

// SLO-aware admission control: reads the live request-latency histogram
// (weblint_http_request_micros — the serving layer records every handler
// call into it) and sheds the lowest-priority work when the interpolated
// p95 exceeds the target. Decisions depend only on histogram contents,
// never wall time, so they are deterministic under FakeClock.
//
// Shedding is graduated: at p95 <= SLO everything is admitted; past the
// SLO, priority 0 is shed; past 1.5x, priorities <= 1; past 2x,
// priorities <= 2. Higher priorities are always admitted — the controller
// degrades, it never blackholes.
class AdmissionController {
 public:
  // `latency` is the live histogram to read. When `registry` is non-null
  // the controller publishes weblint_gateway_slo_p95_us and
  // weblint_gateway_slo_shed_priority gauges (visible on /statusz) and the
  // weblint_gateway_slo_shed_total counter.
  AdmissionController(const Histogram* latency, std::uint32_t slo_p95_ms,
                      MetricsRegistry* registry);

  // True when work at `priority` may run now. Updates the published gauges
  // as a side effect; refusals bump the shed counter.
  bool Admit(std::uint32_t priority);

  // The p95 computed by the most recent Admit() (microseconds).
  std::uint64_t last_p95_us() const { return last_p95_us_.load(); }
  std::uint64_t slo_us() const { return slo_us_; }

  // Below this many recorded requests the controller admits everything: a
  // handful of cold-start samples must not trip the shedder.
  static constexpr std::uint64_t kMinSamples = 32;

 private:
  const Histogram* const latency_;
  const std::uint64_t slo_us_;
  std::atomic<std::uint64_t> last_p95_us_{0};
  Gauge* p95_gauge_ = nullptr;
  Gauge* shed_priority_gauge_ = nullptr;  // -1 = not shedding.
  Counter* shed_counter_ = nullptr;
};

// The tenant registry: immutable after construction (each tenant's Weblint,
// Gateway, and metric series are built up front), so per-request resolution
// is a read-only map lookup — safe from every worker thread with no lock.
class TenantRegistry {
 public:
  struct Tenant {
    TenantSpec spec;
    std::unique_ptr<Weblint> lint;      // The tenant's configured engine.
    std::unique_ptr<Gateway> gateway;   // Serves with that engine.
    std::unique_ptr<TokenBucket> bucket;  // Null = unlimited rate.
    std::atomic<std::uint32_t> inflight{0};
    Counter* requests = nullptr;   // weblint_gateway_tenant_requests_total
    Counter* throttled = nullptr;  // ..._throttled_total (429s)
    Counter* shed = nullptr;       // ..._shed_total (SLO 503s)
    Histogram* latency = nullptr;  // ..._micros (dispatch time)
  };

  // Builds one Tenant per spec: the base config plus the spec's
  // enable/disable deltas (a bad warning id fails construction), a Gateway
  // over the shared fetcher/options, and per-tenant labelled metric series
  // when `metrics` is non-null. An anonymous tenant always exists —
  // configured by a "*" spec or defaulted to unlimited priority-0.
  static Result<std::unique_ptr<TenantRegistry>> Create(
      const Config& base, const std::vector<TenantSpec>& specs, UrlFetcher* fetcher,
      const GatewayOptions& options, MetricsRegistry* metrics, Clock* metrics_clock);

  // Maps an API key to its tenant: empty key = the anonymous tenant,
  // unknown key = nullptr (the service answers 401).
  Tenant* Resolve(std::string_view api_key);
  Tenant* anonymous() { return anonymous_; }
  size_t size() const { return tenants_.size(); }

 private:
  TenantRegistry() = default;
  std::map<std::string, std::unique_ptr<Tenant>, std::less<>> tenants_;
  Tenant* anonymous_ = nullptr;
};

// The handler the multi-tenant server installs: resolve the tenant from the
// API-key header, run SLO admission, charge the token bucket and the
// concurrency cap, then serve through the tenant's own Gateway. Every layer
// is optional — a null registry serves everyone through `fallback`, a null
// admission controller never sheds — so the plain single-tenant server is
// the degenerate configuration of this one.
class TenantService {
 public:
  struct Options {
    // Header carrying the API key (matched case-insensitively, like every
    // header name).
    std::string api_key_header = "x-weblint-api-key";
  };

  TenantService(const Gateway* fallback, TenantRegistry* tenants,
                AdmissionController* admission, Clock* clock);
  TenantService(const Gateway* fallback, TenantRegistry* tenants,
                AdmissionController* admission, Clock* clock, Options options);

  // Thread-safe: called concurrently from server workers.
  HttpResponse Handle(const HttpRequest& request) const;

 private:
  const Gateway* const fallback_;
  TenantRegistry* const tenants_;
  AdmissionController* const admission_;
  Clock* const clock_;
  const Options options_;
};

}  // namespace weblint

#endif  // WEBLINT_GATEWAY_TENANT_H_
